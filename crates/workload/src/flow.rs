//! Flows, flow-size distributions and arrival processes.

use rackfabric_sim::rng::DetRng;
use rackfabric_sim::time::{SimDuration, SimTime};
use rackfabric_sim::units::Bytes;
use rackfabric_topo::NodeId;
use serde::{Deserialize, Serialize};

/// Identifier of a workload flow (distinct from the switch-layer `FlowId`
/// only in that this one is assigned by the generator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WorkloadFlowId(pub u64);

/// One transfer the workload asks the fabric to carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flow {
    /// Generator-assigned id.
    pub id: WorkloadFlowId,
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Total bytes to transfer.
    pub size: Bytes,
    /// When the flow becomes ready to send.
    pub start_at: SimTime,
}

impl Flow {
    /// Number of MTU-sized packets (1500 B) needed to carry the flow.
    pub fn packet_count(&self, mtu: Bytes) -> u64 {
        self.size.as_u64().div_ceil(mtu.as_u64()).max(1)
    }
}

/// Flow-size distributions observed in data-centre measurement studies,
/// parameterised to rack-scale transfers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FlowSizeDistribution {
    /// Every flow has the same size.
    Fixed(Bytes),
    /// Uniform between the two bounds.
    Uniform(Bytes, Bytes),
    /// Bounded Pareto (heavy tailed, "mice and elephants").
    Pareto {
        /// Tail exponent (1.1–1.6 typical).
        shape: f64,
        /// Minimum flow size.
        min: Bytes,
        /// Maximum flow size.
        max: Bytes,
    },
    /// Log-normal in bytes.
    LogNormal {
        /// Mean of the underlying normal (of ln bytes).
        mu: f64,
        /// Sigma of the underlying normal.
        sigma: f64,
    },
    /// A two-point mix of small RPC-like flows and large bulk flows.
    MiceAndElephants {
        /// Size of a mouse flow.
        mouse: Bytes,
        /// Size of an elephant flow.
        elephant: Bytes,
        /// Probability a flow is an elephant.
        elephant_fraction: f64,
    },
}

impl FlowSizeDistribution {
    /// Draws one flow size.
    pub fn sample(&self, rng: &mut DetRng) -> Bytes {
        match *self {
            FlowSizeDistribution::Fixed(b) => b,
            FlowSizeDistribution::Uniform(lo, hi) => {
                if hi <= lo {
                    lo
                } else {
                    Bytes::new(rng.range_u64(lo.as_u64()..hi.as_u64() + 1))
                }
            }
            FlowSizeDistribution::Pareto { shape, min, max } => Bytes::new(
                rng.pareto(shape, min.as_u64() as f64, max.as_u64() as f64)
                    .round() as u64,
            ),
            FlowSizeDistribution::LogNormal { mu, sigma } => {
                Bytes::new(rng.lognormal(mu, sigma).round().max(1.0) as u64)
            }
            FlowSizeDistribution::MiceAndElephants {
                mouse,
                elephant,
                elephant_fraction,
            } => {
                if rng.chance(elephant_fraction) {
                    elephant
                } else {
                    mouse
                }
            }
        }
    }

    /// The mean flow size (exact where closed form exists, otherwise a large
    /// sample average), used to convert a target load into an arrival rate.
    pub fn mean_bytes(&self, rng: &mut DetRng) -> f64 {
        match *self {
            FlowSizeDistribution::Fixed(b) => b.as_u64() as f64,
            FlowSizeDistribution::Uniform(lo, hi) => (lo.as_u64() + hi.as_u64()) as f64 / 2.0,
            FlowSizeDistribution::MiceAndElephants {
                mouse,
                elephant,
                elephant_fraction,
            } => {
                mouse.as_u64() as f64 * (1.0 - elephant_fraction)
                    + elephant.as_u64() as f64 * elephant_fraction
            }
            _ => {
                let n = 10_000;
                (0..n)
                    .map(|_| self.sample(rng).as_u64() as f64)
                    .sum::<f64>()
                    / n as f64
            }
        }
    }
}

/// When flows arrive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Every flow starts at the same instant (barrier workloads).
    AllAtOnce(SimTime),
    /// Poisson arrivals with the given mean inter-arrival time, starting at
    /// the given instant.
    Poisson {
        /// Mean time between consecutive flow arrivals.
        mean_interarrival: SimDuration,
        /// First arrival is at or after this instant.
        start: SimTime,
    },
    /// Deterministic arrivals at a fixed period.
    Periodic {
        /// Interval between flows.
        period: SimDuration,
        /// First arrival.
        start: SimTime,
    },
}

impl ArrivalProcess {
    /// Generates the first `count` arrival instants.
    pub fn arrivals(&self, count: usize, rng: &mut DetRng) -> Vec<SimTime> {
        match *self {
            ArrivalProcess::AllAtOnce(t) => vec![t; count],
            ArrivalProcess::Periodic { period, start } => {
                (0..count as u64).map(|i| start + period * i).collect()
            }
            ArrivalProcess::Poisson {
                mean_interarrival,
                start,
            } => {
                let mut t = start;
                let mean_ps = mean_interarrival.as_picos() as f64;
                (0..count)
                    .map(|_| {
                        let gap = rng.exponential(mean_ps);
                        t += SimDuration::from_picos(gap.round().max(1.0) as u64);
                        t
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_count_rounds_up() {
        let f = Flow {
            id: WorkloadFlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            size: Bytes::new(3001),
            start_at: SimTime::ZERO,
        };
        assert_eq!(f.packet_count(Bytes::new(1500)), 3);
        let tiny = Flow {
            size: Bytes::new(10),
            ..f
        };
        assert_eq!(tiny.packet_count(Bytes::new(1500)), 1);
    }

    #[test]
    fn fixed_and_uniform_sizes() {
        let mut rng = DetRng::new(1);
        let d = FlowSizeDistribution::Fixed(Bytes::from_kib(64));
        assert_eq!(d.sample(&mut rng), Bytes::from_kib(64));
        let u = FlowSizeDistribution::Uniform(Bytes::new(100), Bytes::new(200));
        for _ in 0..1000 {
            let s = u.sample(&mut rng).as_u64();
            assert!((100..=200).contains(&s));
        }
    }

    #[test]
    fn pareto_is_heavy_tailed_within_bounds() {
        let mut rng = DetRng::new(2);
        let d = FlowSizeDistribution::Pareto {
            shape: 1.2,
            min: Bytes::new(1_000),
            max: Bytes::from_mib(100),
        };
        let samples: Vec<u64> = (0..5000).map(|_| d.sample(&mut rng).as_u64()).collect();
        assert!(samples
            .iter()
            .all(|&s| (1_000..=100 * 1024 * 1024).contains(&s)));
        let small = samples.iter().filter(|&&s| s < 10_000).count();
        assert!(small > samples.len() / 2, "most Pareto flows are mice");
    }

    #[test]
    fn mice_and_elephants_mean() {
        let mut rng = DetRng::new(3);
        let d = FlowSizeDistribution::MiceAndElephants {
            mouse: Bytes::new(2_000),
            elephant: Bytes::from_mib(1),
            elephant_fraction: 0.1,
        };
        let mean = d.mean_bytes(&mut rng);
        let expected = 2000.0 * 0.9 + (1024.0 * 1024.0) * 0.1;
        assert!((mean - expected).abs() < 1.0);
    }

    #[test]
    fn arrival_processes_have_expected_shape() {
        let mut rng = DetRng::new(4);
        let all = ArrivalProcess::AllAtOnce(SimTime::from_micros(5)).arrivals(4, &mut rng);
        assert!(all.iter().all(|&t| t == SimTime::from_micros(5)));

        let per = ArrivalProcess::Periodic {
            period: SimDuration::from_micros(2),
            start: SimTime::ZERO,
        }
        .arrivals(3, &mut rng);
        assert_eq!(
            per,
            vec![
                SimTime::ZERO,
                SimTime::from_micros(2),
                SimTime::from_micros(4)
            ]
        );

        let poisson = ArrivalProcess::Poisson {
            mean_interarrival: SimDuration::from_micros(10),
            start: SimTime::ZERO,
        }
        .arrivals(2000, &mut rng);
        assert_eq!(poisson.len(), 2000);
        assert!(
            poisson.windows(2).all(|w| w[0] <= w[1]),
            "arrivals are ordered"
        );
        // Mean inter-arrival ~10 us.
        let total = poisson.last().unwrap().as_micros_f64();
        let mean = total / 2000.0;
        assert!(
            (8.0..12.0).contains(&mean),
            "mean inter-arrival was {mean} us"
        );
    }
}
