//! # rackfabric-workload
//!
//! Traffic generators for the rack-scale fabric experiments.
//!
//! The paper motivates the architecture with distributed rack-scale
//! applications — its running example is a MapReduce operation whose reducers
//! wait on every mapper, so "the slowest link pulls down the performance of
//! an entire system". This crate generates that workload and the other
//! standard rack patterns used in the evaluation:
//!
//! * [`flow`] — flow descriptors, flow-size distributions, Poisson arrival
//!   processes.
//! * [`generators`] — MapReduce shuffle (all-to-all with a barrier), incast,
//!   permutation, uniform random, Zipf hotspot, and disaggregated-storage
//!   (NVMe-style read/write) traffic, plus trace record/replay.

pub mod flow;
pub mod generators;

pub use flow::{ArrivalProcess, Flow, FlowSizeDistribution, WorkloadFlowId};
pub use generators::{
    HotspotWorkload, IncastWorkload, MapReduceShuffle, PermutationWorkload, StorageWorkload,
    TrafficPattern, UniformWorkload, Workload,
};
