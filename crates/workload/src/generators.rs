//! Workload generators.
//!
//! Each generator produces a list of [`Flow`]s. The MapReduce shuffle is the
//! paper's motivating example: every mapper sends a partition to every
//! reducer and the job only finishes when the *last* flow finishes, so a
//! single slow link drags the whole rack down.

use crate::flow::{ArrivalProcess, Flow, FlowSizeDistribution, WorkloadFlowId};
use rackfabric_sim::rng::DetRng;
use rackfabric_sim::time::SimTime;
use rackfabric_sim::units::Bytes;
use rackfabric_topo::NodeId;
use serde::{Deserialize, Serialize};

/// A named traffic pattern, for experiment configuration files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// All-to-all shuffle with a barrier.
    MapReduce,
    /// Many senders, one receiver.
    Incast,
    /// A random permutation: every node sends to exactly one other node.
    Permutation,
    /// Uniform random source/destination pairs.
    Uniform,
    /// Zipf-skewed destinations (a few hot sleds).
    Hotspot,
    /// Disaggregated-storage read/write between compute and storage sleds.
    Storage,
}

/// Common interface of all generators.
pub trait Workload {
    /// Generates the flows of this workload.
    fn generate(&self, rng: &mut DetRng) -> Vec<Flow>;
    /// A short name used in experiment output.
    fn name(&self) -> &'static str;
}

fn make_flows(
    pairs: Vec<(NodeId, NodeId)>,
    sizes: &FlowSizeDistribution,
    arrivals: &ArrivalProcess,
    rng: &mut DetRng,
) -> Vec<Flow> {
    let times = arrivals.arrivals(pairs.len(), rng);
    pairs
        .into_iter()
        .zip(times)
        .enumerate()
        .map(|(i, ((src, dst), start_at))| Flow {
            id: WorkloadFlowId(i as u64),
            src,
            dst,
            size: sizes.sample(rng),
            start_at,
        })
        .collect()
}

/// The paper's motivating workload: `mappers x reducers` all-to-all transfer
/// starting simultaneously (the shuffle barrier).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapReduceShuffle {
    /// Nodes acting as mappers (senders).
    pub mappers: Vec<NodeId>,
    /// Nodes acting as reducers (receivers).
    pub reducers: Vec<NodeId>,
    /// Bytes each mapper sends to each reducer.
    pub partition_size: Bytes,
    /// When the shuffle starts.
    pub start: SimTime,
}

impl MapReduceShuffle {
    /// An all-nodes shuffle over `nodes` sleds with equal partitions.
    pub fn all_to_all(nodes: usize, partition_size: Bytes) -> Self {
        let ids: Vec<NodeId> = (0..nodes as u32).map(NodeId).collect();
        MapReduceShuffle {
            mappers: ids.clone(),
            reducers: ids,
            partition_size,
            start: SimTime::ZERO,
        }
    }
    /// Total bytes the shuffle moves (self-transfers excluded).
    pub fn total_bytes(&self) -> Bytes {
        let pairs = self
            .mappers
            .iter()
            .flat_map(|m| self.reducers.iter().map(move |r| (m, r)))
            .filter(|(m, r)| m != r)
            .count() as u64;
        self.partition_size * pairs
    }
}

impl Workload for MapReduceShuffle {
    fn generate(&self, rng: &mut DetRng) -> Vec<Flow> {
        let pairs: Vec<(NodeId, NodeId)> = self
            .mappers
            .iter()
            .flat_map(|&m| self.reducers.iter().map(move |&r| (m, r)))
            .filter(|(m, r)| m != r)
            .collect();
        make_flows(
            pairs,
            &FlowSizeDistribution::Fixed(self.partition_size),
            &ArrivalProcess::AllAtOnce(self.start),
            rng,
        )
    }
    fn name(&self) -> &'static str {
        "mapreduce_shuffle"
    }
}

/// Many senders converging on one receiver at the same instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncastWorkload {
    /// The receiving node.
    pub sink: NodeId,
    /// The sending nodes.
    pub senders: Vec<NodeId>,
    /// Bytes each sender contributes.
    pub request_size: Bytes,
    /// When the incast fires.
    pub start: SimTime,
}

impl Workload for IncastWorkload {
    fn generate(&self, rng: &mut DetRng) -> Vec<Flow> {
        let pairs: Vec<(NodeId, NodeId)> = self
            .senders
            .iter()
            .filter(|&&s| s != self.sink)
            .map(|&s| (s, self.sink))
            .collect();
        make_flows(
            pairs,
            &FlowSizeDistribution::Fixed(self.request_size),
            &ArrivalProcess::AllAtOnce(self.start),
            rng,
        )
    }
    fn name(&self) -> &'static str {
        "incast"
    }
}

/// A random permutation: each node sends one flow to a distinct node (no
/// fixed points), the classic stress test for oblivious routing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PermutationWorkload {
    /// Number of nodes.
    pub nodes: usize,
    /// Flow size distribution.
    pub sizes: FlowSizeDistribution,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
}

impl Workload for PermutationWorkload {
    fn generate(&self, rng: &mut DetRng) -> Vec<Flow> {
        let perm = rng.permutation_no_fixpoint(self.nodes);
        let pairs: Vec<(NodeId, NodeId)> = perm
            .iter()
            .enumerate()
            .map(|(src, &dst)| (NodeId(src as u32), NodeId(dst as u32)))
            .collect();
        make_flows(pairs, &self.sizes, &self.arrivals, rng)
    }
    fn name(&self) -> &'static str {
        "permutation"
    }
}

/// Uniform random source/destination pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UniformWorkload {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of flows to generate.
    pub flows: usize,
    /// Flow size distribution.
    pub sizes: FlowSizeDistribution,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
}

impl Workload for UniformWorkload {
    fn generate(&self, rng: &mut DetRng) -> Vec<Flow> {
        let mut pairs = Vec::with_capacity(self.flows);
        for _ in 0..self.flows {
            let src = rng.index(self.nodes);
            let mut dst = rng.index(self.nodes);
            while dst == src && self.nodes > 1 {
                dst = rng.index(self.nodes);
            }
            pairs.push((NodeId(src as u32), NodeId(dst as u32)));
        }
        make_flows(pairs, &self.sizes, &self.arrivals, rng)
    }
    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// Zipf-skewed destination selection: a small set of sleds (e.g. a popular
/// in-memory store) receives most of the traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HotspotWorkload {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of flows to generate.
    pub flows: usize,
    /// Zipf exponent (0 = uniform; 1–2 = strongly skewed).
    pub zipf_exponent: f64,
    /// Flow size distribution.
    pub sizes: FlowSizeDistribution,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
}

impl Workload for HotspotWorkload {
    fn generate(&self, rng: &mut DetRng) -> Vec<Flow> {
        let mut pairs = Vec::with_capacity(self.flows);
        for _ in 0..self.flows {
            let dst = rng.zipf(self.nodes, self.zipf_exponent);
            let mut src = rng.index(self.nodes);
            while src == dst && self.nodes > 1 {
                src = rng.index(self.nodes);
            }
            pairs.push((NodeId(src as u32), NodeId(dst as u32)));
        }
        make_flows(pairs, &self.sizes, &self.arrivals, rng)
    }
    fn name(&self) -> &'static str {
        "hotspot"
    }
}

/// Disaggregated-storage traffic: compute sleds issue reads (storage → compute)
/// and writes (compute → storage) against NVMe sleds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageWorkload {
    /// Compute sleds.
    pub compute_nodes: Vec<NodeId>,
    /// Storage sleds.
    pub storage_nodes: Vec<NodeId>,
    /// Number of I/O operations to generate.
    pub operations: usize,
    /// Fraction of operations that are reads.
    pub read_fraction: f64,
    /// Size of one I/O.
    pub io_size: Bytes,
    /// Arrival process of the I/Os.
    pub arrivals: ArrivalProcess,
}

impl Workload for StorageWorkload {
    fn generate(&self, rng: &mut DetRng) -> Vec<Flow> {
        assert!(!self.compute_nodes.is_empty() && !self.storage_nodes.is_empty());
        let mut pairs = Vec::with_capacity(self.operations);
        for _ in 0..self.operations {
            let compute = self.compute_nodes[rng.index(self.compute_nodes.len())];
            let storage = self.storage_nodes[rng.index(self.storage_nodes.len())];
            if rng.chance(self.read_fraction) {
                pairs.push((storage, compute)); // read: data flows storage -> compute
            } else {
                pairs.push((compute, storage)); // write
            }
        }
        make_flows(
            pairs,
            &FlowSizeDistribution::Fixed(self.io_size),
            &self.arrivals,
            rng,
        )
    }
    fn name(&self) -> &'static str {
        "storage"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rackfabric_sim::time::SimDuration;

    #[test]
    fn shuffle_generates_n_times_n_minus_one_flows() {
        let w = MapReduceShuffle::all_to_all(8, Bytes::from_kib(256));
        let mut rng = DetRng::new(1);
        let flows = w.generate(&mut rng);
        assert_eq!(flows.len(), 8 * 7);
        assert!(flows.iter().all(|f| f.src != f.dst));
        assert!(flows.iter().all(|f| f.size == Bytes::from_kib(256)));
        assert!(flows.iter().all(|f| f.start_at == SimTime::ZERO));
        assert_eq!(w.total_bytes(), Bytes::from_kib(256) * 56);
        // Every ordered pair appears exactly once.
        let mut pairs: Vec<(u32, u32)> = flows
            .iter()
            .map(|f| (f.src.as_u32(), f.dst.as_u32()))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), 56);
    }

    #[test]
    fn incast_converges_on_the_sink() {
        let w = IncastWorkload {
            sink: NodeId(0),
            senders: (0..16u32).map(NodeId).collect(),
            request_size: Bytes::from_kib(32),
            start: SimTime::from_micros(10),
        };
        let flows = w.generate(&mut DetRng::new(2));
        assert_eq!(flows.len(), 15, "the sink does not send to itself");
        assert!(flows.iter().all(|f| f.dst == NodeId(0)));
        assert!(flows.iter().all(|f| f.start_at == SimTime::from_micros(10)));
    }

    #[test]
    fn permutation_has_unique_destinations_and_no_self_flows() {
        let w = PermutationWorkload {
            nodes: 32,
            sizes: FlowSizeDistribution::Fixed(Bytes::from_mib(1)),
            arrivals: ArrivalProcess::AllAtOnce(SimTime::ZERO),
        };
        let flows = w.generate(&mut DetRng::new(3));
        assert_eq!(flows.len(), 32);
        assert!(flows.iter().all(|f| f.src != f.dst));
        let mut dsts: Vec<u32> = flows.iter().map(|f| f.dst.as_u32()).collect();
        dsts.sort_unstable();
        dsts.dedup();
        assert_eq!(dsts.len(), 32, "each node receives exactly one flow");
    }

    #[test]
    fn uniform_avoids_self_flows() {
        let w = UniformWorkload {
            nodes: 16,
            flows: 500,
            sizes: FlowSizeDistribution::Uniform(Bytes::new(1000), Bytes::new(2000)),
            arrivals: ArrivalProcess::Poisson {
                mean_interarrival: SimDuration::from_micros(1),
                start: SimTime::ZERO,
            },
        };
        let flows = w.generate(&mut DetRng::new(4));
        assert_eq!(flows.len(), 500);
        assert!(flows.iter().all(|f| f.src != f.dst));
        assert!(flows
            .iter()
            .all(|f| f.src.index() < 16 && f.dst.index() < 16));
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let w = HotspotWorkload {
            nodes: 16,
            flows: 2000,
            zipf_exponent: 1.5,
            sizes: FlowSizeDistribution::Fixed(Bytes::new(1500)),
            arrivals: ArrivalProcess::AllAtOnce(SimTime::ZERO),
        };
        let flows = w.generate(&mut DetRng::new(5));
        let mut counts = [0u32; 16];
        for f in &flows {
            counts[f.dst.index()] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            max > 4 * min.max(1),
            "hotspot must be strongly skewed (max {max}, min {min})"
        );
    }

    #[test]
    fn storage_reads_flow_from_storage_to_compute() {
        let w = StorageWorkload {
            compute_nodes: (0..8u32).map(NodeId).collect(),
            storage_nodes: (8..12u32).map(NodeId).collect(),
            operations: 1000,
            read_fraction: 1.0,
            io_size: Bytes::from_kib(128),
            arrivals: ArrivalProcess::AllAtOnce(SimTime::ZERO),
        };
        let flows = w.generate(&mut DetRng::new(6));
        assert!(flows
            .iter()
            .all(|f| f.src.index() >= 8 && f.dst.index() < 8));
        let w2 = StorageWorkload {
            read_fraction: 0.0,
            ..w
        };
        let flows2 = w2.generate(&mut DetRng::new(6));
        assert!(flows2
            .iter()
            .all(|f| f.src.index() < 8 && f.dst.index() >= 8));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let w = UniformWorkload {
            nodes: 8,
            flows: 100,
            sizes: FlowSizeDistribution::Pareto {
                shape: 1.3,
                min: Bytes::new(1000),
                max: Bytes::from_mib(10),
            },
            arrivals: ArrivalProcess::Poisson {
                mean_interarrival: SimDuration::from_micros(5),
                start: SimTime::ZERO,
            },
        };
        let a = w.generate(&mut DetRng::new(9));
        let b = w.generate(&mut DetRng::new(9));
        let c = w.generate(&mut DetRng::new(10));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
