//! Decoding canonical spec JSON back into a runnable [`ScenarioSpec`].
//!
//! The sweep layer's [`canonical_spec_json`] is the job-key preimage: every
//! result-shaping field, serialised with sorted keys. This module is its
//! inverse, which is what lets the journal replay an `execute-cell` record
//! without the matrix that originally produced it: the record alone carries
//! the complete simulation input.
//!
//! The round-trip contract — checked by the tests here and relied on by
//! recovery — is `job_key(decode(canonical(spec))) == job_key(spec)`: a
//! replayed job lands under the same content key (and therefore the same
//! store record) as the original.
//!
//! [`canonical_spec_json`]: rackfabric_sweep::key::canonical_spec_json

use rackfabric::policy::CrcPolicy;
use rackfabric_phy::MediaKind;
use rackfabric_phy::{FecMode, PlpTiming, PowerState};
use rackfabric_scenario::spec::{ControllerSpec, FecSetting, ScenarioSpec, WorkloadSpec};
use rackfabric_sim::json::{self, JsonValue};
use rackfabric_sim::time::{SimDuration, SimTime};
use rackfabric_sim::units::{BitRate, Bytes, Length, Power};
use rackfabric_switch::model::{SwitchKind, SwitchModel};
use rackfabric_topo::graph::NodeId;
use rackfabric_topo::routing::RoutingAlgorithm;
use rackfabric_topo::spec::{EdgeSpec, LinkClass, TopologyKind, TopologySpec};

/// Decodes a canonical spec JSON document into a runnable spec.
///
/// Key-neutral fields (name, scheduler) get defaults; the engine kind maps
/// back to `shards` 0 (monolithic) or 1 (sharded) — any positive shard
/// count is key-equivalent, so 1 is the canonical representative.
pub fn decode_spec(spec_json: &str) -> Result<ScenarioSpec, String> {
    let doc = json::parse(spec_json).map_err(|e| format!("spec json: {e}"))?;
    let topology = decode_topology(field(&doc, "topology")?)?;
    let workload = decode_workload(field(&doc, "workload")?)?;
    let mut spec = ScenarioSpec::new("replayed", topology, workload);

    spec.upgrade = match field(&doc, "upgrade")? {
        JsonValue::Null => None,
        t => Some(decode_topology(t)?),
    };
    spec.controller = decode_controller(field(&doc, "controller")?)?;
    spec.shards = match str_field(&doc, "engine")? {
        "monolithic" => 0,
        "sharded" => 1,
        other => return Err(format!("unknown engine kind {other:?}")),
    };
    spec.event_budget = uint_field(&doc, "event_budget")?;
    spec.horizon = SimTime::from_picos(uint_field(&doc, "horizon_ps")?);
    spec.lane_rate = BitRate::from_bps(uint_field(&doc, "lane_rate_bps")?);
    spec.mtu = Bytes::new(uint_field(&doc, "mtu_bytes")?);
    spec.port_buffer = Bytes::new(uint_field(&doc, "port_buffer_bytes")?);
    spec.seed = uint_field(&doc, "seed")?;
    spec.stop_when_done = field(&doc, "stop_when_done")?
        .as_bool()
        .ok_or("stop_when_done: not a bool")?;
    spec.train_window = SimDuration::from_picos(uint_field(&doc, "train_window_ps")?);
    spec.routing = match str_field(&doc, "routing")? {
        "controller-default" => None,
        name => Some(decode_routing(name)?),
    };

    let phy = field(&doc, "phy")?;
    spec.phy.bypassed_nodes = uint_field(phy, "bypassed_nodes")? as usize;
    spec.phy.fec = decode_fec(str_field(phy, "fec")?)?;
    spec.phy.active_lanes = match field(phy, "lanes")? {
        JsonValue::Null => None,
        n => Some(n.as_u64().ok_or("phy.lanes: not a number")? as usize),
    };
    spec.phy.power = match str_field(phy, "power")? {
        "active" => PowerState::Active,
        "low_power" => PowerState::LowPower,
        "off" => PowerState::Off,
        other => return Err(format!("unknown power state {other:?}")),
    };

    let plp = field(&doc, "plp_timing")?;
    let ps = |name: &str| -> Result<SimDuration, String> {
        Ok(SimDuration::from_picos(uint_field(plp, name)?))
    };
    spec.plp_timing = PlpTiming {
        split: ps("split_ps")?,
        bundle: ps("bundle_ps")?,
        move_lanes: ps("move_lanes_ps")?,
        set_active_lanes: ps("set_active_lanes_ps")?,
        set_power: ps("set_power_ps")?,
        set_fec: ps("set_fec_ps")?,
        bypass: ps("bypass_ps")?,
    };

    let switch = field(&doc, "switch")?;
    spec.switch = SwitchModel {
        kind: match str_field(switch, "kind")? {
            "cut_through" => SwitchKind::CutThrough,
            "store_and_forward" => SwitchKind::StoreAndForward,
            other => return Err(format!("unknown switch kind {other:?}")),
        },
        pipeline_latency: SimDuration::from_picos(uint_field(switch, "pipeline_ps")?),
    };

    Ok(spec)
}

fn field<'a>(doc: &'a JsonValue, name: &str) -> Result<&'a JsonValue, String> {
    doc.get(name)
        .ok_or_else(|| format!("missing field {name:?}"))
}

fn str_field<'a>(doc: &'a JsonValue, name: &str) -> Result<&'a str, String> {
    field(doc, name)?
        .as_str()
        .ok_or_else(|| format!("{name}: not a string"))
}

fn uint_field(doc: &JsonValue, name: &str) -> Result<u64, String> {
    field(doc, name)?
        .as_u64()
        .ok_or_else(|| format!("{name}: not a u64"))
}

fn float_field(doc: &JsonValue, name: &str) -> Result<f64, String> {
    field(doc, name)?
        .as_f64()
        .ok_or_else(|| format!("{name}: not a number"))
}

fn decode_routing(name: &str) -> Result<RoutingAlgorithm, String> {
    // Inverse of the `{:?}` rendering used by the key serialiser.
    Ok(match name {
        "ShortestHop" => RoutingAlgorithm::ShortestHop,
        "MinCost" => RoutingAlgorithm::MinCost,
        "Ecmp" => RoutingAlgorithm::Ecmp,
        "DimensionOrdered" => RoutingAlgorithm::DimensionOrdered,
        "Valiant" => RoutingAlgorithm::Valiant,
        "Adaptive" => RoutingAlgorithm::Adaptive,
        other => return Err(format!("unknown routing algorithm {other:?}")),
    })
}

fn decode_fec(name: &str) -> Result<FecSetting, String> {
    Ok(match name {
        "default" => FecSetting::Default,
        "none" => FecSetting::Fixed(FecMode::None),
        "firecode" => FecSetting::Fixed(FecMode::FireCode),
        "rs528" => FecSetting::Fixed(FecMode::Rs528),
        "rs544" => FecSetting::Fixed(FecMode::Rs544),
        other => return Err(format!("unknown fec setting {other:?}")),
    })
}

fn decode_controller(doc: &JsonValue) -> Result<ControllerSpec, String> {
    match str_field(doc, "kind")? {
        "baseline" => Ok(ControllerSpec::Baseline),
        "adaptive" => {
            let policy_doc = field(doc, "policy")?;
            let policy = match str_field(policy_doc, "kind")? {
                "latency_minimize" => CrcPolicy::LatencyMinimize,
                "congestion_balance" => CrcPolicy::CongestionBalance,
                "power_cap" => CrcPolicy::PowerCap {
                    budget: Power::from_milliwatts(uint_field(policy_doc, "budget_mw")?),
                },
                "hybrid" => CrcPolicy::Hybrid {
                    budget: Power::from_milliwatts(uint_field(policy_doc, "budget_mw")?),
                },
                other => return Err(format!("unknown crc policy {other:?}")),
            };
            Ok(ControllerSpec::Adaptive {
                policy,
                epoch: SimDuration::from_picos(uint_field(doc, "epoch_ps")?),
                routing: decode_routing(str_field(doc, "routing")?)?,
            })
        }
        other => Err(format!("unknown controller kind {other:?}")),
    }
}

fn decode_topology(doc: &JsonValue) -> Result<TopologySpec, String> {
    let kind = match str_field(doc, "kind")? {
        "Line" => TopologyKind::Line,
        "Ring" => TopologyKind::Ring,
        "Grid" => TopologyKind::Grid,
        "Torus" => TopologyKind::Torus,
        "Hypercube" => TopologyKind::Hypercube,
        "FatTree" => TopologyKind::FatTree,
        "Dragonfly" => TopologyKind::Dragonfly,
        other => return Err(format!("unknown topology kind {other:?}")),
    };
    let dims = match field(doc, "dims")? {
        JsonValue::Null => None,
        d => {
            let pair = d.as_array().ok_or("dims: not an array")?;
            if pair.len() != 2 {
                return Err("dims: expected [rows, cols]".into());
            }
            Some((
                pair[0].as_u64().ok_or("dims[0]: not a u64")? as usize,
                pair[1].as_u64().ok_or("dims[1]: not a u64")? as usize,
            ))
        }
    };
    let edges = field(doc, "edges")?
        .as_array()
        .ok_or("edges: not an array")?
        .iter()
        .map(decode_edge)
        .collect::<Result<Vec<EdgeSpec>, String>>()?;
    Ok(TopologySpec {
        // Display names are key-excluded; replayed topologies get a marker.
        name: "replayed".into(),
        kind,
        nodes: uint_field(doc, "nodes")? as usize,
        edges,
        dims,
    })
}

fn decode_edge(doc: &JsonValue) -> Result<EdgeSpec, String> {
    let parts = doc.as_array().ok_or("edge: not an array")?;
    if parts.len() != 6 {
        return Err(format!("edge: expected 6 fields, got {}", parts.len()));
    }
    let num = |i: usize| -> Result<u64, String> {
        parts[i]
            .as_u64()
            .ok_or_else(|| format!("edge[{i}]: not a u64"))
    };
    let text = |i: usize| -> Result<&str, String> {
        parts[i]
            .as_str()
            .ok_or_else(|| format!("edge[{i}]: not a string"))
    };
    Ok(EdgeSpec {
        a: NodeId(num(0)? as u32),
        b: NodeId(num(1)? as u32),
        lanes: num(2)? as usize,
        length: Length::from_mm(num(3)?),
        media: match text(4)? {
            "CopperDac" => MediaKind::CopperDac,
            "OpticalFiber" => MediaKind::OpticalFiber,
            "Backplane" => MediaKind::Backplane,
            other => return Err(format!("unknown media kind {other:?}")),
        },
        class: match text(5)? {
            "IntraRack" => LinkClass::IntraRack,
            "InterRack" => LinkClass::InterRack,
            other => return Err(format!("unknown link class {other:?}")),
        },
    })
}

fn decode_workload(doc: &JsonValue) -> Result<WorkloadSpec, String> {
    let load = float_field(doc, "load")?;
    Ok(match str_field(doc, "kind")? {
        "shuffle" => WorkloadSpec::Shuffle {
            partition: Bytes::new(uint_field(doc, "partition_bytes")?),
            load,
        },
        "incast" => WorkloadSpec::Incast {
            request: Bytes::new(uint_field(doc, "request_bytes")?),
            load,
        },
        "permutation" => WorkloadSpec::Permutation {
            size: Bytes::new(uint_field(doc, "size_bytes")?),
            load,
        },
        "single_flow" => WorkloadSpec::SingleFlow {
            size: Bytes::new(uint_field(doc, "size_bytes")?),
            load,
        },
        "uniform" => WorkloadSpec::Uniform {
            flows_per_node: float_field(doc, "flows_per_node")?,
            size: Bytes::new(uint_field(doc, "size_bytes")?),
            mean_interarrival: SimDuration::from_picos(uint_field(doc, "mean_interarrival_ps")?),
            load,
        },
        "hotspot" => WorkloadSpec::Hotspot {
            flows_per_node: float_field(doc, "flows_per_node")?,
            size: Bytes::new(uint_field(doc, "size_bytes")?),
            zipf_exponent: float_field(doc, "zipf_exponent")?,
            load,
        },
        "storage" => WorkloadSpec::Storage {
            ops_per_node: float_field(doc, "ops_per_node")?,
            io_size: Bytes::new(uint_field(doc, "io_size_bytes")?),
            read_fraction: float_field(doc, "read_fraction")?,
            load,
        },
        other => return Err(format!("unknown workload kind {other:?}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rackfabric_sim::units::Bytes;
    use rackfabric_sweep::key::{canonical_spec_json, job_key};

    fn assert_round_trip(spec: &ScenarioSpec) {
        let canonical = canonical_spec_json(spec);
        let decoded = decode_spec(&canonical).expect("decode");
        assert_eq!(
            canonical_spec_json(&decoded),
            canonical,
            "decode must reproduce the canonical form byte for byte"
        );
        assert_eq!(job_key(&decoded), job_key(spec));
    }

    #[test]
    fn default_grid_shuffle_round_trips() {
        assert_round_trip(
            &ScenarioSpec::new(
                "codec-unit",
                TopologySpec::grid(3, 3, 2),
                WorkloadSpec::shuffle(Bytes::from_kib(4)),
            )
            .seed(42),
        );
    }

    #[test]
    fn every_workload_kind_round_trips() {
        let topo = TopologySpec::grid(2, 2, 2);
        let workloads = vec![
            WorkloadSpec::Shuffle {
                partition: Bytes::from_kib(8),
                load: 0.75,
            },
            WorkloadSpec::Incast {
                request: Bytes::from_kib(2),
                load: 1.0,
            },
            WorkloadSpec::Permutation {
                size: Bytes::from_kib(16),
                load: 0.5,
            },
            WorkloadSpec::SingleFlow {
                size: Bytes::from_mib(1),
                load: 1.0,
            },
            WorkloadSpec::Uniform {
                flows_per_node: 2.5,
                size: Bytes::from_kib(4),
                mean_interarrival: SimDuration::from_picos(12_345),
                load: 0.9,
            },
            WorkloadSpec::Hotspot {
                flows_per_node: 3.0,
                size: Bytes::from_kib(4),
                zipf_exponent: 1.2,
                load: 0.8,
            },
            WorkloadSpec::Storage {
                ops_per_node: 4.0,
                io_size: Bytes::from_kib(64),
                read_fraction: 0.7,
                load: 0.6,
            },
        ];
        for workload in workloads {
            assert_round_trip(&ScenarioSpec::new(
                "codec-workloads",
                topo.clone(),
                workload,
            ));
        }
    }

    #[test]
    fn controllers_policies_phy_and_engine_knobs_round_trip() {
        let base = ScenarioSpec::new(
            "codec-knobs",
            TopologySpec::dragonfly(3, 4, 2, 2),
            WorkloadSpec::shuffle(Bytes::from_kib(4)),
        );
        let mut adaptive = base.clone();
        adaptive.controller = ControllerSpec::Adaptive {
            policy: CrcPolicy::Hybrid {
                budget: Power::from_milliwatts(1500),
            },
            epoch: SimDuration::from_picos(5_000_000),
            routing: RoutingAlgorithm::Adaptive,
        };
        adaptive.routing = Some(RoutingAlgorithm::Valiant);
        adaptive.phy.fec = FecSetting::Fixed(FecMode::Rs544);
        adaptive.phy.active_lanes = Some(2);
        adaptive.phy.power = PowerState::LowPower;
        adaptive.phy.bypassed_nodes = 2;
        adaptive.shards = 3; // canonicalises to "sharded"
        adaptive.upgrade = Some(TopologySpec::grid(2, 2, 1));
        assert_round_trip(&adaptive);

        let mut power_cap = base;
        power_cap.controller = ControllerSpec::Adaptive {
            policy: CrcPolicy::PowerCap {
                budget: Power::from_milliwatts(900),
            },
            epoch: SimDuration::from_picos(1_000_000),
            routing: RoutingAlgorithm::MinCost,
        };
        assert_round_trip(&power_cap);
    }

    #[test]
    fn malformed_specs_error_instead_of_panicking() {
        for bad in [
            "not json",
            "{}",
            "{\"workload\":{\"kind\":\"shuffle\"}}",
            "{\"topology\":{\"kind\":\"Moebius\"}}",
        ] {
            assert!(decode_spec(bad).is_err(), "accepted {bad:?}");
        }
    }
}
