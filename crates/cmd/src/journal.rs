//! The append-only campaign journal.
//!
//! ## On-disk format
//!
//! A journal is a directory of segment files `seg-00000000.wal`,
//! `seg-00000001.wal`, … Each segment is a sequence of records:
//!
//! ```text
//! [u32 LE payload length][u32 LE CRC-32 of payload][payload bytes]
//! ```
//!
//! The payload is one canonical-JSON document
//! `{"cmd":<command>,"format":1,"seq":<n>}` with strictly increasing
//! sequence numbers across segments. Records are written ahead of the
//! mutation they describe, with a flush before the mutation starts, so a
//! crash can lose at most the tail record of a mutation that had not
//! happened yet — never a record of one that had.
//!
//! New segments are created with temp+rename (never half-visible); appends
//! go to the newest segment until it passes the rotation threshold.
//!
//! ## Torn tails
//!
//! Readers validate every record (length sanity, checksum, JSON shape,
//! sequence continuity) and stop at the first invalid byte: the result is
//! the **longest valid prefix** of the log, with the truncation point
//! reported in [`LogTail`]. A journal that was torn mid-record is still a
//! perfectly good journal for everything before the tear.

use crate::command::Command;
use rackfabric_sim::json::{self, JsonValue};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Journal payload format version.
const FORMAT: u64 = 1;

/// Appends move to a fresh segment once the active one passes this size.
/// Small enough that campaign journals rotate in practice (so rotation is
/// exercised, not theoretical), large enough that a segment holds many
/// records.
const SEGMENT_ROTATE_BYTES: u64 = 64 * 1024;

/// Upper bound on a single record payload; a length prefix beyond this is
/// treated as corruption rather than an allocation request.
const MAX_RECORD_BYTES: u32 = 16 * 1024 * 1024;

/// One validated journal entry.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Strictly increasing sequence number.
    pub seq: u64,
    /// The journaled command.
    pub command: Command,
}

/// Where (and whether) reading stopped before the end of the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogTail {
    /// True when every byte of every segment validated.
    pub clean: bool,
    /// Segment file the read stopped in (empty when the journal has none).
    pub segment: String,
    /// Byte offset of the first invalid (or trailing) byte in that segment.
    pub offset: u64,
}

/// An open, appendable campaign journal.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    /// Index of the segment appends currently go to.
    active: u64,
    /// Size in bytes of the active segment.
    active_len: u64,
    /// Sequence number the next append will use.
    next_seq: u64,
}

fn segment_name(index: u64) -> String {
    format!("seg-{index:08}.wal")
}

/// Sorted indices of the segment files present in `dir`.
fn segment_indices(dir: &Path) -> io::Result<Vec<u64>> {
    let mut indices = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(indices),
        Err(e) => return Err(e),
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(index) = name
            .strip_prefix("seg-")
            .and_then(|rest| rest.strip_suffix(".wal"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            indices.push(index);
        }
    }
    indices.sort_unstable();
    Ok(indices)
}

impl Journal {
    /// Opens (creating if needed) the journal rooted at `dir` and positions
    /// the appender after the longest valid prefix of the existing log.
    ///
    /// A torn or corrupt tail is healed on open: the damaged segment is
    /// truncated to its valid prefix and any later segments — unreachable
    /// continuation past the tear — are removed, so new appends extend the
    /// valid prefix contiguously.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Journal> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let (records, tail) = read_log(&dir)?;
        let mut indices = segment_indices(&dir)?;
        if indices.is_empty() {
            create_segment(&dir, 0)?;
            indices.push(0);
        }
        let next_seq = records.last().map(|r| r.seq + 1).unwrap_or(0);
        let mut active = *indices.last().expect("non-empty above");
        if !tail.clean {
            let damaged = indices
                .iter()
                .copied()
                .find(|&i| segment_name(i) == tail.segment)
                .expect("tail names an existing segment");
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(dir.join(&tail.segment))?;
            file.set_len(tail.offset)?;
            file.sync_all()?;
            for &index in indices.iter().filter(|&&i| i > damaged) {
                std::fs::remove_file(dir.join(segment_name(index)))?;
            }
            active = damaged;
        }
        let active_len = std::fs::metadata(dir.join(segment_name(active)))?.len();
        Ok(Journal {
            dir,
            active,
            active_len,
            next_seq,
        })
    }

    /// The journal's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence number the next append will be given.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends one command record (write-ahead: call this **before**
    /// performing the mutation it describes) and flushes it to disk.
    pub fn append(&mut self, command: &Command) -> io::Result<u64> {
        if self.active_len >= SEGMENT_ROTATE_BYTES {
            let next = self.active + 1;
            create_segment(&self.dir, next)?;
            self.active = next;
            self.active_len = 0;
        }
        let seq = self.next_seq;
        let payload = json::canonical(&JsonValue::Object(vec![
            ("cmd".to_string(), command.to_value()),
            ("format".to_string(), JsonValue::Number(FORMAT.to_string())),
            ("seq".to_string(), JsonValue::Number(seq.to_string())),
        ]));
        let payload = payload.as_bytes();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);

        let path = self.dir.join(segment_name(self.active));
        let mut file = std::fs::OpenOptions::new().append(true).open(&path)?;
        file.write_all(&frame)?;
        file.flush()?;
        file.sync_data()?;
        self.active_len += frame.len() as u64;
        self.next_seq += 1;
        Ok(seq)
    }
}

/// Creates segment `index` atomically (temp+rename), leaving an existing
/// segment of that index untouched.
fn create_segment(dir: &Path, index: u64) -> io::Result<()> {
    let path = dir.join(segment_name(index));
    if path.exists() {
        return Ok(());
    }
    let tmp = dir.join(format!(
        "{}.tmp.{}",
        segment_name(index),
        std::process::id()
    ));
    std::fs::write(&tmp, b"")?;
    std::fs::rename(&tmp, &path)?;
    Ok(())
}

/// Reads the longest valid prefix of the journal at `dir`.
///
/// Never fails on corruption — a checksum mismatch, short frame, malformed
/// payload or sequence break terminates the read and is reported via
/// [`LogTail`]; only real I/O errors (permissions, disappearing directory)
/// surface as `Err`.
pub fn read_log(dir: &Path) -> io::Result<(Vec<LogRecord>, LogTail)> {
    let mut records = Vec::new();
    let mut tail = LogTail {
        clean: true,
        segment: String::new(),
        offset: 0,
    };
    let mut expected_seq = 0u64;
    for index in segment_indices(dir)? {
        let name = segment_name(index);
        let bytes = std::fs::read(dir.join(&name))?;
        let mut offset = 0usize;
        tail.segment = name.clone();
        loop {
            if offset == bytes.len() {
                tail.offset = offset as u64;
                break;
            }
            match parse_record(&bytes[offset..], expected_seq) {
                Some((record, consumed)) => {
                    records.push(record);
                    expected_seq += 1;
                    offset += consumed;
                }
                None => {
                    // Torn or corrupt: the valid prefix ends here, and any
                    // later segments are unreachable continuation.
                    tail.clean = false;
                    tail.offset = offset as u64;
                    return Ok((records, tail));
                }
            }
        }
    }
    Ok((records, tail))
}

/// Parses one record from the head of `bytes`; `None` on any damage.
fn parse_record(bytes: &[u8], expected_seq: u64) -> Option<(LogRecord, usize)> {
    if bytes.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
    let checksum = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    if len > MAX_RECORD_BYTES {
        return None;
    }
    let end = 8usize.checked_add(len as usize)?;
    let payload = bytes.get(8..end)?;
    if crc32(payload) != checksum {
        return None;
    }
    let text = std::str::from_utf8(payload).ok()?;
    let doc = json::parse(text).ok()?;
    if doc.get("format")?.as_u64()? != FORMAT {
        return None;
    }
    let seq = doc.get("seq")?.as_u64()?;
    if seq != expected_seq {
        return None;
    }
    let command = Command::from_value(doc.get("cmd")?)?;
    Some((LogRecord { seq, command }, end))
}

/// CRC-32 (IEEE 802.3, reflected), implemented bitwise — the journal is not
/// throughput-bound and this keeps the crate dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rackfabric_sweep::key::JobKey;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rackfabric-cmd-journal-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample(i: u64) -> Command {
        Command::ExecuteCell {
            key: JobKey(i as u128 * 0x1_0001),
            spec_json: format!("{{\"seed\":{i}}}"),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn append_read_round_trip_with_reopen() {
        let dir = tmp_dir("roundtrip");
        let mut journal = Journal::open(&dir).unwrap();
        for i in 0..5 {
            assert_eq!(journal.append(&sample(i)).unwrap(), i);
        }
        drop(journal);
        // Reopen continues the sequence.
        let mut journal = Journal::open(&dir).unwrap();
        assert_eq!(journal.next_seq(), 5);
        journal.append(&sample(5)).unwrap();

        let (records, tail) = read_log(&dir).unwrap();
        assert!(tail.clean);
        assert_eq!(records.len(), 6);
        for (i, record) in records.iter().enumerate() {
            assert_eq!(record.seq, i as u64);
            assert_eq!(record.command, sample(i as u64));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_rotate_and_reads_span_them() {
        let dir = tmp_dir("rotate");
        let mut journal = Journal::open(&dir).unwrap();
        // Big-ish records so the 64 KiB threshold trips quickly.
        let fat_spec = format!("{{\"seed\":{}}}", "9".repeat(4000));
        let n = 40u64;
        for i in 0..n {
            journal
                .append(&Command::ExecuteCell {
                    key: JobKey(i as u128),
                    spec_json: fat_spec.clone(),
                })
                .unwrap();
        }
        let segments = segment_indices(&dir).unwrap();
        assert!(
            segments.len() >= 2,
            "expected rotation, got {} segment(s)",
            segments.len()
        );
        let (records, tail) = read_log(&dir).unwrap();
        assert!(tail.clean);
        assert_eq!(records.len(), n as usize);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checksum_truncates_to_valid_prefix() {
        let dir = tmp_dir("corrupt");
        let mut journal = Journal::open(&dir).unwrap();
        for i in 0..4 {
            journal.append(&sample(i)).unwrap();
        }
        // Flip one payload byte of the third record.
        let seg = dir.join(segment_name(0));
        let mut bytes = std::fs::read(&seg).unwrap();
        let record_len = {
            let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
            8 + len
        };
        bytes[2 * record_len + 12] ^= 0x40;
        std::fs::write(&seg, &bytes).unwrap();

        let (records, tail) = read_log(&dir).unwrap();
        assert!(!tail.clean);
        assert_eq!(records.len(), 2, "prefix before the flipped byte survives");
        assert_eq!(tail.offset, (2 * record_len) as u64);

        // Reopening after damage truncates it and appends resume cleanly.
        let mut journal = Journal::open(&dir).unwrap();
        assert_eq!(journal.next_seq(), 2);
        journal.append(&sample(2)).unwrap();
        let (records, tail) = read_log(&dir).unwrap();
        assert!(tail.clean);
        assert_eq!(records.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
