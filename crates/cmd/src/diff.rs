//! Command-by-command diffing of two campaign logs.
//!
//! The point of journaling through one instruction set is that "what did
//! this run actually do, and how does it differ from that run?" becomes a
//! question about two command sequences. [`render_diff`] aligns them with
//! a longest-common-subsequence walk over their stable one-line
//! descriptions and renders a unified-style listing: editing one axis of a
//! campaign shows up as exactly the `execute-cell` lines of the cells that
//! contain it — auditable, not implicit.

use crate::command::Command;
use crate::journal::LogRecord;

/// How many `-`/`+` lines are rendered before eliding the rest.
const DIFF_LINE_CAP: usize = 64;

/// Past this many pairwise comparisons the LCS table is skipped in favour
/// of a set-based summary (quadratic memory is real; campaign logs this
/// long are already unreadable as line diffs).
const LCS_CELL_CAP: usize = 4_000_000;

/// Renders a command-by-command diff of two logs.
pub fn render_diff(a_name: &str, a: &[LogRecord], b_name: &str, b: &[LogRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!("--- {a_name} ({} commands)\n", a.len()));
    out.push_str(&format!("+++ {b_name} ({} commands)\n", b.len()));
    out.push_str(&summary_line(a, b));

    let a_lines: Vec<String> = a.iter().map(|r| r.command.describe()).collect();
    let b_lines: Vec<String> = b.iter().map(|r| r.command.describe()).collect();
    if a_lines.len().saturating_mul(b_lines.len()) > LCS_CELL_CAP {
        out.push_str(&set_diff(&a_lines, &b_lines));
        return out;
    }

    let mut removed = 0usize;
    let mut added = 0usize;
    let mut common = 0usize;
    let mut elided = false;
    for op in lcs_walk(&a_lines, &b_lines) {
        match op {
            DiffOp::Common => common += 1,
            DiffOp::Removed(line) => {
                removed += 1;
                if removed + added <= DIFF_LINE_CAP {
                    out.push_str(&format!("- {line}\n"));
                } else {
                    elided = true;
                }
            }
            DiffOp::Added(line) => {
                added += 1;
                if removed + added <= DIFF_LINE_CAP {
                    out.push_str(&format!("+ {line}\n"));
                } else {
                    elided = true;
                }
            }
        }
    }
    if elided {
        out.push_str(&format!(
            "  … {} more differing lines elided\n",
            (removed + added) - DIFF_LINE_CAP
        ));
    }
    out.push_str(&format!(
        "= {common} common, {removed} only in {a_name}, {added} only in {b_name}\n"
    ));
    out
}

/// Per-operation counts for both logs, so the diff header answers "what
/// kind of run was each" at a glance.
fn summary_line(a: &[LogRecord], b: &[LogRecord]) -> String {
    fn counts(records: &[LogRecord]) -> String {
        let mut pairs: Vec<(&'static str, usize)> = Vec::new();
        for record in records {
            let op = record.command.op();
            match pairs.iter_mut().find(|(name, _)| *name == op) {
                Some((_, n)) => *n += 1,
                None => pairs.push((op, 1)),
            }
        }
        if pairs.is_empty() {
            return "empty".to_string();
        }
        pairs
            .iter()
            .map(|(name, n)| format!("{n} {name}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
    format!("  ops: {} | {}\n", counts(a), counts(b))
}

enum DiffOp<'a> {
    Common,
    Removed(&'a str),
    Added(&'a str),
}

/// Classic LCS alignment over description lines.
fn lcs_walk<'a>(a: &'a [String], b: &'a [String]) -> Vec<DiffOp<'a>> {
    let n = a.len();
    let m = b.len();
    // lcs[i][j] = LCS length of a[i..] and b[j..].
    let mut lcs = vec![0u32; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[idx(i, j)] = if a[i] == b[j] {
                lcs[idx(i + 1, j + 1)] + 1
            } else {
                lcs[idx(i + 1, j)].max(lcs[idx(i, j + 1)])
            };
        }
    }
    let mut ops = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            ops.push(DiffOp::Common);
            i += 1;
            j += 1;
        } else if lcs[idx(i + 1, j)] >= lcs[idx(i, j + 1)] {
            ops.push(DiffOp::Removed(&a[i]));
            i += 1;
        } else {
            ops.push(DiffOp::Added(&b[j]));
            j += 1;
        }
    }
    ops.extend(a[i..].iter().map(|line| DiffOp::Removed(line)));
    ops.extend(b[j..].iter().map(|line| DiffOp::Added(line)));
    ops
}

/// Fallback for very long logs: unordered multiset difference.
fn set_diff(a: &[String], b: &[String]) -> String {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<&str, i64> = BTreeMap::new();
    for line in a {
        *counts.entry(line).or_insert(0) += 1;
    }
    for line in b {
        *counts.entry(line).or_insert(0) -= 1;
    }
    let mut out = String::from("  (logs too long for ordered diff; multiset summary)\n");
    let mut shown = 0usize;
    let mut suppressed = 0usize;
    for (line, n) in counts {
        if n == 0 {
            continue;
        }
        if shown >= DIFF_LINE_CAP {
            suppressed += 1;
            continue;
        }
        shown += 1;
        if n > 0 {
            out.push_str(&format!("- {line} (×{n})\n"));
        } else {
            out.push_str(&format!("+ {line} (×{})\n", -n));
        }
    }
    if suppressed > 0 {
        out.push_str(&format!("  … {suppressed} more differing lines elided\n"));
    }
    out
}

/// Convenience: reads two journal directories and renders their diff.
pub fn diff_journal_dirs(
    a_name: &str,
    a_dir: &std::path::Path,
    b_name: &str,
    b_dir: &std::path::Path,
) -> std::io::Result<String> {
    let (a, a_tail) = crate::journal::read_log(a_dir)?;
    let (b, b_tail) = crate::journal::read_log(b_dir)?;
    let mut out = String::new();
    if !a_tail.clean {
        out.push_str(&format!("  note: {a_name} has a torn tail\n"));
    }
    if !b_tail.clean {
        out.push_str(&format!("  note: {b_name} has a torn tail\n"));
    }
    out.push_str(&render_diff(a_name, &a, b_name, &b));
    Ok(out)
}

/// Test-and-CLI helper: wraps bare commands as sequenced records.
pub fn as_records(commands: Vec<Command>) -> Vec<LogRecord> {
    commands
        .into_iter()
        .enumerate()
        .map(|(seq, command)| LogRecord {
            seq: seq as u64,
            command,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rackfabric_sweep::key::JobKey;

    fn cell(i: u128) -> Command {
        Command::ExecuteCell {
            key: JobKey(i),
            spec_json: format!("{{\"seed\":{i}}}"),
        }
    }

    #[test]
    fn identical_logs_diff_to_zero_changes() {
        let log = as_records(vec![
            Command::ExpandMatrix {
                campaign: "c".into(),
                cells: 2,
                jobs: 2,
            },
            cell(1),
            cell(2),
        ]);
        let text = render_diff("a", &log, "b", &log);
        assert!(text.contains("= 3 common, 0 only in a, 0 only in b"));
        assert!(!text.contains("\n- "));
        assert!(!text.contains("\n+ "));
    }

    #[test]
    fn an_edited_axis_shows_only_its_cells() {
        // Run A executed cells 1,2,3; run B (one axis value changed)
        // re-used 1 and executed 4,5 fresh.
        let a = as_records(vec![cell(1), cell(2), cell(3)]);
        let b = as_records(vec![cell(1), cell(4), cell(5)]);
        let text = render_diff("a", &a, "b", &b);
        assert!(text.contains(&format!("- {}", cell(2).describe())));
        assert!(text.contains(&format!("- {}", cell(3).describe())));
        assert!(text.contains(&format!("+ {}", cell(4).describe())));
        assert!(text.contains(&format!("+ {}", cell(5).describe())));
        assert!(text.contains("= 1 common, 2 only in a, 2 only in b"));
    }

    #[test]
    fn long_line_runs_are_capped() {
        let a = as_records((0..200).map(cell).collect());
        let b = as_records((200..400).map(cell).collect());
        let text = render_diff("a", &a, "b", &b);
        assert!(text.contains("more differing lines elided"));
        assert!(text.lines().count() < 80);
    }
}
