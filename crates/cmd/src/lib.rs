//! # rackfabric-cmd
//!
//! The **command execution layer**: one deterministic instruction set —
//! [`Command`] — for every externally reachable operation (run a scenario,
//! expand a matrix, execute a sweep cell, regenerate a figure, gc the
//! store, emit a report, export/import a bundle), and one [`Executor`]
//! through which the sweep CLI, the bench figure campaigns and the test
//! harnesses all invoke the engine.
//!
//! On top of the executor sits the **campaign journal** ([`journal`]): an
//! append-only log of length-prefixed, CRC-checksummed, canonical-JSON
//! command records, written **ahead** of each mutation and rotated across
//! segments with temp+rename. Because every mutation flows through
//! [`Command`] and lands in the journal first, three operations become
//! first-class:
//!
//! * [`Executor::recover`] — replay a truncated or interrupted campaign to
//!   completion, executing **zero** jobs that are already journaled and
//!   stored;
//! * [`diff`] — render two campaign logs command-by-command, making
//!   "editing one axis re-executes only its cells" auditable instead of
//!   implicit;
//! * [`bundle`] — export/import a store + journal + reports directory as
//!   one self-contained, checksummed artifact that round-trips
//!   byte-for-byte.
//!
//! Routing through the command layer never moves an export byte: the
//! executor's [`EngineBoundary`] implementation journals each store-miss
//! batch and then delegates to the exact execute+persist path the sweep
//! orchestrator used before this crate existed.
//!
//! [`EngineBoundary`]: rackfabric_sweep::campaign::EngineBoundary

pub mod bundle;
pub mod command;
pub mod diff;
pub mod executor;
pub mod journal;
pub mod spec_codec;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use crate::bundle::{export_bundle, import_bundle, BundleStats};
    pub use crate::command::{BudgetSpec, Command};
    pub use crate::diff::{diff_journal_dirs, render_diff};
    pub use crate::executor::{CampaignResolver, Executor, NoCampaigns, RecoveryStats};
    pub use crate::journal::{Journal, LogRecord, LogTail};
    pub use crate::spec_codec::decode_spec;
}

pub use bundle::{export_bundle, import_bundle, BundleStats};
pub use command::{BudgetSpec, Command};
pub use diff::{diff_journal_dirs, render_diff};
pub use executor::{CampaignResolver, Executor, NoCampaigns, RecoveryStats};
pub use journal::{Journal, LogRecord, LogTail};
pub use spec_codec::decode_spec;
