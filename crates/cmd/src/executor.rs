//! The [`Executor`]: the single boundary through which every surface —
//! sweep CLI, bench figure campaigns, test harnesses — invokes the engine.
//!
//! An executor owns a [`ResultStore`] and a [`Runner`] and optionally an
//! open [`Journal`]. Every mutation it performs is journaled **ahead** of
//! the mutation itself:
//!
//! * each fresh sweep-cell execution appends an `execute-cell` record
//!   (complete with the canonical spec, so the record alone is runnable);
//! * each campaign run appends an `expand-matrix` or `regenerate-figure`
//!   marker before its first cell, which is what lets [`Executor::recover`]
//!   complete jobs the crash happened *before* — they were never
//!   individually journaled, but the campaign marker was;
//! * gc, report emission and bundle operations append their own records.
//!
//! Without a journal the executor is a plain pass-through: same Command
//! vocabulary, no durability, byte-identical results either way.

use crate::bundle::{self, BundleStats};
use crate::command::Command;
use crate::journal::{read_log, Journal};
use crate::spec_codec::decode_spec;
use rackfabric_scenario::matrix::Job;
use rackfabric_scenario::runner::{JobOutcome, Runner};
use rackfabric_sweep::campaign::{DirectBoundary, EngineBoundary, Sweep, SweepOutcome};
use rackfabric_sweep::emit::write_report;
use rackfabric_sweep::key::{canonical_spec_json, job_key, JobKey};
use rackfabric_sweep::store::{GcStats, ResultStore};
use std::io;
use std::path::Path;
use std::sync::Mutex;

/// The command-layer execution boundary. See the module docs.
///
/// An executor is `Send + Sync`: the store is atomics behind an `Arc`, the
/// runner is plain data, and the journal is behind a `Mutex` — so a service
/// can share one executor across its worker threads behind an `Arc`, with
/// journal appends serialised and everything else lock-free.
#[derive(Debug)]
pub struct Executor {
    store: ResultStore,
    runner: Runner,
    journal: Option<Mutex<Journal>>,
}

// Compile-time pin of the sharing contract above: `rackfabricd` workers
// hold one `Arc<Executor>`; losing `Send + Sync` would break them.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Executor>();
};

/// What one [`Executor::recover`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Valid records read from the journal.
    pub commands: usize,
    /// Journaled jobs that had to be (re-)executed: the crash hit between
    /// their write-ahead record and their store write.
    pub cells_replayed: usize,
    /// Journaled jobs whose results were already in the store — recovery
    /// executes zero of these.
    pub cells_already_stored: usize,
    /// Campaign markers replayed through the resolver (store-first, so a
    /// fully stored campaign costs zero executions).
    pub campaigns_replayed: usize,
    /// Records that needed no replay (reports, gc, bundles, unknown
    /// campaigns).
    pub markers_skipped: usize,
    /// True when the journal ended in a torn record (healed on the next
    /// append).
    pub torn_tail: bool,
}

/// Replays campaign-level journal records — the executor knows how to
/// replay a single cell from its record alone, but a campaign marker (e.g.
/// `regenerate-figure e3`) needs whoever owns the campaign definitions.
/// `crates/bench` supplies the figure resolver.
pub trait CampaignResolver {
    /// Replays one campaign command through `exec`. Returns `Ok(false)`
    /// when this resolver does not recognise the command (it is then
    /// counted as skipped, not an error).
    fn replay(&self, command: &Command, exec: &Executor) -> io::Result<bool>;
}

/// A resolver that replays nothing: cell-level records still replay fully,
/// campaign markers are skipped.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCampaigns;

impl CampaignResolver for NoCampaigns {
    fn replay(&self, _command: &Command, _exec: &Executor) -> io::Result<bool> {
        Ok(false)
    }
}

impl Executor {
    /// A journal-less executor: the full Command vocabulary with no
    /// durability. Tests and one-shot library callers use this.
    pub fn new(store: ResultStore, runner: Runner) -> Executor {
        Executor {
            store,
            runner,
            journal: None,
        }
    }

    /// An executor whose mutations are journaled write-ahead under `dir`.
    pub fn with_journal(
        store: ResultStore,
        runner: Runner,
        dir: impl Into<std::path::PathBuf>,
    ) -> io::Result<Executor> {
        let journal = Journal::open(dir)?;
        Ok(Executor {
            store,
            runner,
            journal: Some(Mutex::new(journal)),
        })
    }

    /// The executor's result store.
    pub fn store(&self) -> &ResultStore {
        &self.store
    }

    /// The executor's scenario runner.
    pub fn runner(&self) -> &Runner {
        &self.runner
    }

    /// The journal directory, when journaling is on.
    pub fn journal_dir(&self) -> Option<std::path::PathBuf> {
        self.journal
            .as_ref()
            .map(|j| j.lock().expect("journal lock").dir().to_path_buf())
    }

    /// Appends `command` to the journal (no-op without one). Write-ahead:
    /// call before performing the mutation.
    fn journal_append(&self, command: &Command) -> io::Result<()> {
        if let Some(journal) = &self.journal {
            journal.lock().expect("journal lock").append(command)?;
        }
        Ok(())
    }

    /// Runs one scenario store-first: a warm store answers without
    /// executing; a miss is journaled, executed and persisted.
    pub fn run_scenario(
        &self,
        spec: &rackfabric_scenario::spec::ScenarioSpec,
    ) -> io::Result<JobOutcome> {
        self.run_scenario_tracked(spec).map(|(outcome, _)| outcome)
    }

    /// [`Executor::run_scenario`] plus the cache verdict: the flag is true
    /// when the store answered (zero engine work). Services report this
    /// per-request — the "warm query = cache hit" guarantee is observable,
    /// not just implied.
    pub fn run_scenario_tracked(
        &self,
        spec: &rackfabric_scenario::spec::ScenarioSpec,
    ) -> io::Result<(JobOutcome, bool)> {
        let key = job_key(spec);
        if let Some(outcome) = self.store.get(&key) {
            return Ok((outcome, true));
        }
        let spec_json = canonical_spec_json(spec);
        self.journal_append(&Command::RunScenario {
            spec_json: spec_json.clone(),
        })?;
        let job = Job {
            index: 0,
            cell: 0,
            replicate: 0,
            labels: Vec::new(),
            spec: spec.clone(),
        };
        let outcome = self
            .runner
            .run_jobs(std::slice::from_ref(&job))
            .into_iter()
            .next()
            .expect("one job in, one outcome out");
        self.store.put(&key, &spec_json, &outcome)?;
        Ok((outcome, false))
    }

    /// Runs a sweep campaign through the command layer: an `expand-matrix`
    /// marker is journaled up front, then every store-miss batch flows
    /// through this executor's [`EngineBoundary`] (journal, execute,
    /// persist). Results are byte-identical to [`Sweep::run`].
    pub fn run_campaign(&self, sweep: &Sweep) -> io::Result<SweepOutcome> {
        self.journal_append(&Command::ExpandMatrix {
            campaign: sweep.matrix.base.name.clone(),
            cells: sweep.matrix.cell_count() as u64,
            jobs: sweep.matrix.job_count() as u64,
        })?;
        sweep.run_via(&self.store, &self.runner, self)
    }

    /// Runs one figure campaign, journaling a `regenerate-figure` marker
    /// ahead of it. The marker is what recovery hands to the
    /// [`CampaignResolver`], completing even the jobs the interruption
    /// prevented from ever being journaled individually.
    pub fn regenerate_figure(
        &self,
        id: &str,
        scale: &str,
        sweep: &Sweep,
    ) -> io::Result<SweepOutcome> {
        self.journal_append(&Command::RegenerateFigure {
            id: id.to_string(),
            scale: scale.to_string(),
            budget: sweep
                .budget
                .as_ref()
                .map(crate::command::BudgetSpec::from_policy),
        })?;
        sweep.run_via(&self.store, &self.runner, self)
    }

    /// Garbage-collects the store down to `live` keys, journaled.
    pub fn gc(&self, live: &[JobKey]) -> io::Result<GcStats> {
        let mut sorted = live.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        self.journal_append(&Command::GcStore {
            live: sorted.clone(),
        })?;
        self.store.gc(sorted.iter())
    }

    /// Renders a campaign report file set into `dir`, journaled.
    pub fn emit_report(
        &self,
        campaign: &str,
        dir: &Path,
        outcome: &SweepOutcome,
    ) -> io::Result<()> {
        self.journal_append(&Command::EmitReport {
            campaign: campaign.to_string(),
            dir: dir.display().to_string(),
        })?;
        write_report(dir, campaign, outcome)
    }

    /// Exports store + journal + `reports` as one bundle file, journaled
    /// (the record lands *before* the export, so the bundle contains its
    /// own provenance).
    pub fn export_bundle(&self, reports: Option<&Path>, dest: &Path) -> io::Result<BundleStats> {
        self.journal_append(&Command::ExportBundle {
            dest: dest.display().to_string(),
        })?;
        bundle::export_bundle(
            self.store.root(),
            self.journal_dir().as_deref(),
            reports,
            dest,
        )
    }

    /// Replays the journal: every already-journaled-and-stored job costs
    /// zero executions; jobs caught between their write-ahead record and
    /// their store write re-execute from the record's spec; campaign
    /// markers replay store-first through `resolver`, completing work the
    /// interruption never reached. Idempotent — a second recover replays
    /// zero cells.
    pub fn recover(&self, resolver: &dyn CampaignResolver) -> io::Result<RecoveryStats> {
        let Some(dir) = self.journal_dir() else {
            return Ok(RecoveryStats::default());
        };
        // Snapshot the log first: campaign replays append fresh records,
        // and recovery must not chase its own tail.
        let (records, tail) = read_log(&dir)?;
        let mut stats = RecoveryStats {
            commands: records.len(),
            torn_tail: !tail.clean,
            ..RecoveryStats::default()
        };
        for record in &records {
            match &record.command {
                Command::ExecuteCell { key, spec_json } => {
                    self.replay_cell(Some(*key), spec_json, &mut stats)?;
                }
                Command::RunScenario { spec_json } => {
                    self.replay_cell(None, spec_json, &mut stats)?;
                }
                cmd @ Command::RegenerateFigure { .. } | cmd @ Command::ExpandMatrix { .. } => {
                    if resolver.replay(cmd, self)? {
                        stats.campaigns_replayed += 1;
                    } else {
                        stats.markers_skipped += 1;
                    }
                }
                Command::GcStore { .. }
                | Command::EmitReport { .. }
                | Command::ExportBundle { .. }
                | Command::ImportBundle { .. } => stats.markers_skipped += 1,
            }
        }
        Ok(stats)
    }

    /// Replays one journaled job record. With `Some(key)` the record's own
    /// key is trusted for the store lookup (and verified against the
    /// decoded spec before executing); without, the key is derived.
    fn replay_cell(
        &self,
        key: Option<JobKey>,
        spec_json: &str,
        stats: &mut RecoveryStats,
    ) -> io::Result<()> {
        let key = match key {
            Some(key) => key,
            None => {
                let spec = decode_spec(spec_json)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                job_key(&spec)
            }
        };
        if self.store.get(&key).is_some() {
            stats.cells_already_stored += 1;
            return Ok(());
        }
        let spec =
            decode_spec(spec_json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let derived = job_key(&spec);
        if derived != key {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("journaled key {key} does not match its spec (derived {derived})"),
            ));
        }
        let job = Job {
            index: 0,
            cell: 0,
            replicate: 0,
            labels: Vec::new(),
            spec,
        };
        let outcome = self
            .runner
            .run_jobs(std::slice::from_ref(&job))
            .into_iter()
            .next()
            .expect("one job in, one outcome out");
        self.store
            .put(&derived, &canonical_spec_json(&job.spec), &outcome)?;
        stats.cells_replayed += 1;
        Ok(())
    }
}

impl EngineBoundary for Executor {
    /// Journal each fresh job write-ahead, then delegate to the exact
    /// execute+persist path the orchestrator always used.
    fn execute_batch(
        &self,
        jobs: &[Job],
        store: &ResultStore,
        runner: &Runner,
    ) -> io::Result<Vec<JobOutcome>> {
        for job in jobs {
            self.journal_append(&Command::ExecuteCell {
                key: job_key(&job.spec),
                spec_json: canonical_spec_json(&job.spec),
            })?;
        }
        DirectBoundary.execute_batch(jobs, store, runner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rackfabric_scenario::matrix::{AxisValue, Matrix};
    use rackfabric_scenario::spec::{ScenarioSpec, WorkloadSpec};
    use rackfabric_sim::time::SimTime;
    use rackfabric_sim::units::Bytes;
    use rackfabric_topo::spec::TopologySpec;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rackfabric-cmd-executor-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_matrix() -> Matrix {
        let base = ScenarioSpec::new(
            "executor-unit",
            TopologySpec::grid(2, 2, 2),
            WorkloadSpec::shuffle(Bytes::from_kib(1)),
        )
        .horizon(SimTime::from_millis(20));
        Matrix::new(base)
            .axis("load", vec![AxisValue::Load(0.5), AxisValue::Load(1.0)])
            .replicates(2)
            .master_seed(3)
    }

    #[test]
    fn journaled_campaign_matches_direct_run_byte_for_byte() {
        let root = tmp_dir("campaign");
        let direct_store = ResultStore::open(root.join("direct")).unwrap();
        let direct = Sweep::new(small_matrix())
            .run(&direct_store, &Runner::single_threaded())
            .unwrap();

        let exec = Executor::with_journal(
            ResultStore::open(root.join("cmd")).unwrap(),
            Runner::single_threaded(),
            root.join("cmd").join("journal"),
        )
        .unwrap();
        let via_cmd = exec.run_campaign(&Sweep::new(small_matrix())).unwrap();
        assert_eq!(via_cmd.executed, 4);
        assert_eq!(
            rackfabric_scenario::export::cells_to_csv(&direct.cells),
            rackfabric_scenario::export::cells_to_csv(&via_cmd.cells),
            "the command layer must not move an export byte"
        );

        // The journal holds the marker plus one record per fresh job.
        let (records, tail) = read_log(&exec.journal_dir().unwrap()).unwrap();
        assert!(tail.clean);
        assert_eq!(records.len(), 1 + 4);
        assert!(matches!(
            records[0].command,
            Command::ExpandMatrix { jobs: 4, .. }
        ));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn interrupted_campaign_recovers_from_journal_with_zero_reexecutions() {
        let root = tmp_dir("recover");
        let exec = Executor::with_journal(
            ResultStore::open(root.join("store")).unwrap(),
            Runner::single_threaded(),
            root.join("store").join("journal"),
        )
        .unwrap();

        // Interrupted: 2 of 4 jobs execute, then the "process dies".
        let partial = exec
            .run_campaign(&Sweep::new(small_matrix()).max_new_jobs(2))
            .unwrap();
        assert!(partial.interrupted);
        assert_eq!(partial.executed, 2);

        // Recovery replays the journal. The 2 executed cells are stored
        // (zero re-executions); the campaign marker itself is skipped by
        // NoCampaigns — cell-level recovery alone restores the journaled
        // state exactly.
        let stats = exec.recover(&NoCampaigns).unwrap();
        assert_eq!(stats.cells_already_stored, 2);
        assert_eq!(stats.cells_replayed, 0);
        assert!(!stats.torn_tail);

        // Simulate a crash *between* journal append and store write: delete
        // one stored object, then recover again — exactly that cell
        // re-executes.
        let (records, _) = read_log(&exec.journal_dir().unwrap()).unwrap();
        let first_key = records
            .iter()
            .find_map(|r| match &r.command {
                Command::ExecuteCell { key, .. } => Some(*key),
                _ => None,
            })
            .unwrap();
        let hex = first_key.hex();
        std::fs::remove_file(
            root.join("store")
                .join("objects")
                .join(&hex[..2])
                .join(format!("{}.json", &hex[2..])),
        )
        .unwrap();
        let stats = exec.recover(&NoCampaigns).unwrap();
        assert_eq!(stats.cells_replayed, 1);
        assert_eq!(stats.cells_already_stored, 1);
        assert!(exec.store().get(&first_key).is_some());

        // And a third pass is a no-op.
        let stats = exec.recover(&NoCampaigns).unwrap();
        assert_eq!(stats.cells_replayed, 0);
        assert_eq!(stats.cells_already_stored, 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn run_scenario_is_store_first_and_journaled() {
        let root = tmp_dir("scenario");
        let exec = Executor::with_journal(
            ResultStore::open(root.join("store")).unwrap(),
            Runner::single_threaded(),
            root.join("journal"),
        )
        .unwrap();
        let spec = ScenarioSpec::new(
            "one-shot",
            TopologySpec::grid(2, 2, 2),
            WorkloadSpec::shuffle(Bytes::from_kib(1)),
        )
        .horizon(SimTime::from_millis(20))
        .seed(5);
        let first = exec.run_scenario(&spec).unwrap();
        let second = exec.run_scenario(&spec).unwrap();
        assert!(matches!(first, JobOutcome::Completed(_)));
        assert!(matches!(second, JobOutcome::Completed(_)));
        // Only the cold run journals: the warm one was answered by the
        // store without any mutation.
        let (records, _) = read_log(&exec.journal_dir().unwrap()).unwrap();
        assert_eq!(records.len(), 1);
        assert!(matches!(records[0].command, Command::RunScenario { .. }));
        let _ = std::fs::remove_dir_all(&root);
    }
}
