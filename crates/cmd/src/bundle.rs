//! Self-contained campaign bundles: store + journal + reports in one file.
//!
//! ## Format
//!
//! ```text
//! magic  b"RFBUNDLE" + version byte 0x01
//! u32 LE file count
//! per file, in sorted path order:
//!   u32 LE path length, path bytes (UTF-8, '/'-separated, relative)
//!   u64 LE data length, data bytes
//!   u32 LE CRC-32 of data
//! ```
//!
//! Paths carry one of three prefixes: `store/` (the result store tree,
//! minus in-flight `*.tmp.*` files and minus its embedded journal, which
//! gets its own prefix), `journal/` and `reports/`. Import verifies the
//! magic and every checksum before writing anything, then recreates each
//! file with temp+rename — a bundle either imports byte-for-byte or not at
//! all.

use crate::journal::crc32;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 9] = b"RFBUNDLE\x01";

/// What a bundle export or import covered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BundleStats {
    /// Files in the bundle.
    pub files: usize,
    /// Total payload bytes (excluding framing).
    pub bytes: u64,
}

/// Collects `root` recursively into `files` under `prefix/`, skipping
/// in-flight temp files. Missing roots contribute nothing (a campaign
/// without reports is still bundleable).
fn collect(
    files: &mut BTreeMap<String, PathBuf>,
    prefix: &str,
    root: &Path,
    skip: Option<&Path>,
) -> io::Result<()> {
    if !root.exists() {
        return Ok(());
    }
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            if Some(path.as_path()) == skip {
                continue;
            }
            if entry.file_type()?.is_dir() {
                stack.push(path);
                continue;
            }
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.contains(".tmp.") {
                continue;
            }
            let rel = path
                .strip_prefix(root)
                .expect("walked paths start at root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            files.insert(format!("{prefix}/{rel}"), path);
        }
    }
    Ok(())
}

/// Exports `store_root` (+ optional journal dir + optional reports dir) as
/// one bundle file at `dest`, written with temp+rename.
///
/// When the journal lives inside the store root (the default layout), it
/// is excluded from the `store/` walk and exported under `journal/` — the
/// bundle layout is identical wherever the journal physically lives.
pub fn export_bundle(
    store_root: &Path,
    journal_dir: Option<&Path>,
    reports_dir: Option<&Path>,
    dest: &Path,
) -> io::Result<BundleStats> {
    let mut files: BTreeMap<String, PathBuf> = BTreeMap::new();
    collect(&mut files, "store", store_root, journal_dir)?;
    if let Some(journal) = journal_dir {
        collect(&mut files, "journal", journal, None)?;
    }
    if let Some(reports) = reports_dir {
        collect(&mut files, "reports", reports, None)?;
    }

    let mut stats = BundleStats {
        files: files.len(),
        bytes: 0,
    };
    let tmp = dest.with_extension(format!("rfb.tmp.{}", std::process::id()));
    if let Some(parent) = dest.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut out = io::BufWriter::new(std::fs::File::create(&tmp)?);
    out.write_all(MAGIC)?;
    out.write_all(&(files.len() as u32).to_le_bytes())?;
    for (rel, path) in &files {
        let data = std::fs::read(path)?;
        out.write_all(&(rel.len() as u32).to_le_bytes())?;
        out.write_all(rel.as_bytes())?;
        out.write_all(&(data.len() as u64).to_le_bytes())?;
        out.write_all(&data)?;
        out.write_all(&crc32(&data).to_le_bytes())?;
        stats.bytes += data.len() as u64;
    }
    out.flush()?;
    out.into_inner()
        .map_err(|e| io::Error::other(e.to_string()))?
        .sync_all()?;
    std::fs::rename(&tmp, dest)?;
    Ok(stats)
}

fn corrupt(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// Reads and verifies every entry of the bundle at `src`.
pub fn read_bundle(src: &Path) -> io::Result<Vec<(String, Vec<u8>)>> {
    let mut file = io::BufReader::new(std::fs::File::open(src)?);
    let mut magic = [0u8; 9];
    file.read_exact(&mut magic)
        .map_err(|_| corrupt("bundle too short for magic"))?;
    if &magic != MAGIC {
        return Err(corrupt("not a rackfabric bundle (bad magic)"));
    }
    let mut u32buf = [0u8; 4];
    let mut u64buf = [0u8; 8];
    file.read_exact(&mut u32buf)
        .map_err(|_| corrupt("truncated file count"))?;
    let count = u32::from_le_bytes(u32buf) as usize;
    let mut entries = Vec::with_capacity(count.min(1 << 16));
    for i in 0..count {
        file.read_exact(&mut u32buf)
            .map_err(|_| corrupt(format!("entry {i}: truncated path length")))?;
        let path_len = u32::from_le_bytes(u32buf) as usize;
        if path_len > 4096 {
            return Err(corrupt(format!("entry {i}: implausible path length")));
        }
        let mut path = vec![0u8; path_len];
        file.read_exact(&mut path)
            .map_err(|_| corrupt(format!("entry {i}: truncated path")))?;
        let path = String::from_utf8(path)
            .map_err(|_| corrupt(format!("entry {i}: path is not UTF-8")))?;
        if path.starts_with('/') || path.split('/').any(|c| c.is_empty() || c == "..") {
            return Err(corrupt(format!("entry {i}: unsafe path {path:?}")));
        }
        file.read_exact(&mut u64buf)
            .map_err(|_| corrupt(format!("{path}: truncated data length")))?;
        let data_len = u64::from_le_bytes(u64buf);
        let mut data = vec![0u8; data_len as usize];
        file.read_exact(&mut data)
            .map_err(|_| corrupt(format!("{path}: truncated data")))?;
        file.read_exact(&mut u32buf)
            .map_err(|_| corrupt(format!("{path}: truncated checksum")))?;
        if crc32(&data) != u32::from_le_bytes(u32buf) {
            return Err(corrupt(format!("{path}: checksum mismatch")));
        }
        entries.push((path, data));
    }
    Ok(entries)
}

/// Imports the bundle at `src` under `dest_root`, recreating
/// `store/`, `journal/` and `reports/` byte-for-byte. Verification happens
/// before the first write; each file is then written with temp+rename.
pub fn import_bundle(src: &Path, dest_root: &Path) -> io::Result<BundleStats> {
    let entries = read_bundle(src)?;
    let mut stats = BundleStats::default();
    for (rel, data) in entries {
        let path = dest_root.join(&rel);
        let parent = path.parent().expect("bundle paths have parents");
        std::fs::create_dir_all(parent)?;
        let tmp = parent.join(format!(
            "{}.tmp.{}",
            path.file_name()
                .and_then(|n| n.to_str())
                .expect("validated path"),
            std::process::id()
        ));
        std::fs::write(&tmp, &data)?;
        std::fs::rename(&tmp, &path)?;
        stats.files += 1;
        stats.bytes += data.len() as u64;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rackfabric-cmd-bundle-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn write(path: &Path, contents: &str) {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, contents).unwrap();
    }

    fn tree(root: &Path) -> BTreeMap<String, Vec<u8>> {
        let mut out = BTreeMap::new();
        let mut stack = vec![root.to_path_buf()];
        while let Some(dir) = stack.pop() {
            for entry in std::fs::read_dir(&dir).unwrap().flatten() {
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else {
                    let rel = path.strip_prefix(root).unwrap().display().to_string();
                    out.insert(rel, std::fs::read(&path).unwrap());
                }
            }
        }
        out
    }

    #[test]
    fn round_trip_is_byte_for_byte_and_skips_temp_files() {
        let root = tmp_dir("roundtrip");
        let store = root.join("store");
        let journal = store.join("journal");
        let reports = root.join("reports");
        write(&store.join("objects/ab/cdef.json"), "{\"x\":1}\n");
        write(&store.join("objects/cd/0123.json"), "{\"y\":2}\n");
        write(&store.join("stats.json"), "{\"hits\": 3}\n");
        write(&store.join("objects/ab/junk.tmp.999.0"), "half");
        write(&journal.join("seg-00000000.wal"), "fakewal");
        write(&reports.join("cells.csv"), "a,b\n1,2\n");
        write(&reports.join("plots/latency.svg"), "<svg/>");

        let dest = root.join("campaign.rfb");
        let stats = export_bundle(&store, Some(&journal), Some(&reports), &dest).unwrap();
        assert_eq!(stats.files, 6, "tmp file excluded, journal not doubled");

        let restored = root.join("restored");
        let back = import_bundle(&dest, &restored).unwrap();
        assert_eq!(back.files, 6);
        assert_eq!(back.bytes, stats.bytes);

        // Store records and reports reproduce byte-for-byte; the journal
        // lands under its own prefix regardless of where it lived.
        let mut expected = BTreeMap::new();
        for (k, v) in tree(&store) {
            if k.contains(".tmp.") || k.starts_with("journal") {
                continue;
            }
            expected.insert(format!("store/{k}"), v);
        }
        for (k, v) in tree(&journal) {
            expected.insert(format!("journal/{k}"), v);
        }
        for (k, v) in tree(&reports) {
            expected.insert(format!("reports/{k}"), v);
        }
        assert_eq!(tree(&restored), expected);

        // Exporting the restored tree reproduces the bundle bytes exactly.
        let dest2 = root.join("campaign2.rfb");
        export_bundle(
            &restored.join("store"),
            Some(&restored.join("journal")),
            Some(&restored.join("reports")),
            &dest2,
        )
        .unwrap();
        assert_eq!(
            std::fs::read(&dest).unwrap(),
            std::fs::read(&dest2).unwrap()
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_bundles_are_rejected_before_any_write() {
        let root = tmp_dir("corrupt");
        let store = root.join("store");
        write(&store.join("objects/ab/cd.json"), "{}\n");
        let dest = root.join("x.rfb");
        export_bundle(&store, None, None, &dest).unwrap();

        let mut bytes = std::fs::read(&dest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // flip a checksum byte
        std::fs::write(&dest, &bytes).unwrap();

        let restored = root.join("restored");
        let err = import_bundle(&dest, &restored).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(!restored.exists(), "nothing may be written on failure");

        // Traversal attempts are rejected too.
        let evil = root.join("evil.rfb");
        let mut payload = Vec::new();
        payload.extend_from_slice(MAGIC);
        payload.extend_from_slice(&1u32.to_le_bytes());
        let path = b"../escape";
        payload.extend_from_slice(&(path.len() as u32).to_le_bytes());
        payload.extend_from_slice(path);
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&crc32(b"").to_le_bytes());
        std::fs::write(&evil, &payload).unwrap();
        assert!(import_bundle(&evil, &restored).is_err());
        let _ = std::fs::remove_dir_all(&root);
    }
}
