//! The instruction set: every externally reachable operation as one
//! [`Command`] value with a canonical-JSON wire form.
//!
//! Commands are what the journal persists and what [`diff`](crate::diff)
//! compares, so the encoding is strictly canonical: sorted object keys, no
//! whitespace, numbers kept lossless. `encode(decode(x)) == x` for every
//! valid record, which is what makes journal checksums and log diffs
//! meaningful.

use rackfabric_sim::json::{self, JsonValue};
use rackfabric_sweep::budget::BudgetPolicy;
use rackfabric_sweep::key::JobKey;

/// One externally reachable operation. The journal records these
/// write-ahead; the [`Executor`](crate::executor::Executor) interprets
/// them.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run a single scenario whose canonical spec JSON is `spec_json`
    /// (store-first, like any sweep cell).
    RunScenario {
        /// Canonical spec JSON (the job-key preimage).
        spec_json: String,
    },
    /// Marker: a campaign expanded its matrix. Carries the declared shape
    /// so a log reads as a self-describing run history.
    ExpandMatrix {
        /// Campaign name (display label, not part of any job key).
        campaign: String,
        /// Number of cells in the expansion.
        cells: u64,
        /// Number of jobs in the fixed expansion.
        jobs: u64,
    },
    /// Execute one sweep cell job and persist its outcome under `key`.
    /// Journaled ahead of every fresh execution — the write-ahead record
    /// that makes crash recovery possible.
    ExecuteCell {
        /// Content-addressed key of the job.
        key: JobKey,
        /// Canonical spec JSON (decodes back to the runnable spec).
        spec_json: String,
    },
    /// Marker: a paper-figure campaign is about to run. Recovery replays
    /// the whole figure campaign store-first from this record, which is
    /// what completes jobs that were never individually journaled.
    RegenerateFigure {
        /// Figure id (`"e1"` .. `"e11"`).
        id: String,
        /// Figure scale (`"tiny"` or `"paper"`).
        scale: String,
        /// Budgeted-replication override; `None` keeps fixed replicates
        /// (the byte-deterministic golden default).
        budget: Option<BudgetSpec>,
    },
    /// Garbage-collect the store down to `live` keys.
    GcStore {
        /// Keys that must survive, sorted.
        live: Vec<JobKey>,
    },
    /// Render a campaign report file set into `dir`.
    EmitReport {
        /// Campaign name used in the report header.
        campaign: String,
        /// Destination directory.
        dir: String,
    },
    /// Export store + journal + reports as one self-contained bundle file.
    ExportBundle {
        /// Destination bundle path.
        dest: String,
    },
    /// Import a bundle, recreating store/journal/reports byte-for-byte.
    ImportBundle {
        /// Source bundle path.
        src: String,
        /// Destination root directory.
        dest: String,
    },
}

/// The serializable mirror of [`BudgetPolicy`], so a journaled figure
/// command pins the exact replication budget it ran under.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetSpec {
    /// Stop when the p99 CI half-width is below this fraction of the mean.
    pub target_rel_halfwidth: f64,
    /// Z-score of the confidence level.
    pub confidence_z: f64,
    /// Replicates every cell starts with.
    pub min_replicates: u64,
    /// Hard per-cell replicate cap.
    pub max_replicates: u64,
    /// Optional campaign-wide job budget.
    pub max_total_jobs: Option<u64>,
}

impl BudgetSpec {
    /// Converts the journaled form back into a runnable policy.
    pub fn to_policy(&self) -> BudgetPolicy {
        BudgetPolicy {
            target_rel_halfwidth: self.target_rel_halfwidth,
            confidence_z: self.confidence_z,
            min_replicates: self.min_replicates as usize,
            max_replicates: self.max_replicates as usize,
            max_total_jobs: self.max_total_jobs,
        }
    }

    /// Captures a policy into its journaled form.
    pub fn from_policy(policy: &BudgetPolicy) -> BudgetSpec {
        BudgetSpec {
            target_rel_halfwidth: policy.target_rel_halfwidth,
            confidence_z: policy.confidence_z,
            min_replicates: policy.min_replicates as u64,
            max_replicates: policy.max_replicates as u64,
            max_total_jobs: policy.max_total_jobs,
        }
    }
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn string(s: &str) -> JsonValue {
    JsonValue::String(s.to_string())
}

fn uint(v: u64) -> JsonValue {
    JsonValue::Number(v.to_string())
}

fn float(v: f64) -> JsonValue {
    JsonValue::Number(json::number(v))
}

/// Embeds a canonical spec JSON string as a structured value, so the
/// journal record is one JSON document rather than JSON-in-a-string.
fn spec_field(spec_json: &str) -> JsonValue {
    json::parse(spec_json).unwrap_or_else(|_| string(spec_json))
}

impl Command {
    /// Short machine name of the operation (the `op` discriminant).
    pub fn op(&self) -> &'static str {
        match self {
            Command::RunScenario { .. } => "run-scenario",
            Command::ExpandMatrix { .. } => "expand-matrix",
            Command::ExecuteCell { .. } => "execute-cell",
            Command::RegenerateFigure { .. } => "regenerate-figure",
            Command::GcStore { .. } => "gc-store",
            Command::EmitReport { .. } => "emit-report",
            Command::ExportBundle { .. } => "export-bundle",
            Command::ImportBundle { .. } => "import-bundle",
        }
    }

    /// The command as a structured JSON value (canonicalised by the
    /// journal's writer).
    pub fn to_value(&self) -> JsonValue {
        match self {
            Command::RunScenario { spec_json } => obj(vec![
                ("op", string("run-scenario")),
                ("spec", spec_field(spec_json)),
            ]),
            Command::ExpandMatrix {
                campaign,
                cells,
                jobs,
            } => obj(vec![
                ("campaign", string(campaign)),
                ("cells", uint(*cells)),
                ("jobs", uint(*jobs)),
                ("op", string("expand-matrix")),
            ]),
            Command::ExecuteCell { key, spec_json } => obj(vec![
                ("key", string(&key.hex())),
                ("op", string("execute-cell")),
                ("spec", spec_field(spec_json)),
            ]),
            Command::RegenerateFigure { id, scale, budget } => obj(vec![
                (
                    "budget",
                    match budget {
                        None => JsonValue::Null,
                        Some(b) => obj(vec![
                            ("confidence_z", float(b.confidence_z)),
                            ("max_replicates", uint(b.max_replicates)),
                            (
                                "max_total_jobs",
                                match b.max_total_jobs {
                                    None => JsonValue::Null,
                                    Some(n) => uint(n),
                                },
                            ),
                            ("min_replicates", uint(b.min_replicates)),
                            ("target_rel_halfwidth", float(b.target_rel_halfwidth)),
                        ]),
                    },
                ),
                ("id", string(id)),
                ("op", string("regenerate-figure")),
                ("scale", string(scale)),
            ]),
            Command::GcStore { live } => obj(vec![
                (
                    "live",
                    JsonValue::Array(live.iter().map(|k| string(&k.hex())).collect()),
                ),
                ("op", string("gc-store")),
            ]),
            Command::EmitReport { campaign, dir } => obj(vec![
                ("campaign", string(campaign)),
                ("dir", string(dir)),
                ("op", string("emit-report")),
            ]),
            Command::ExportBundle { dest } => obj(vec![
                ("dest", string(dest)),
                ("op", string("export-bundle")),
            ]),
            Command::ImportBundle { src, dest } => obj(vec![
                ("dest", string(dest)),
                ("op", string("import-bundle")),
                ("src", string(src)),
            ]),
        }
    }

    /// The command as one canonical JSON line (sorted keys, no whitespace).
    pub fn canonical_json(&self) -> String {
        json::canonical(&self.to_value())
    }

    /// Decodes a structured value back into a command. `None` marks a
    /// malformed or unknown record (the journal reader treats it as
    /// corruption and truncates there).
    pub fn from_value(value: &JsonValue) -> Option<Command> {
        let op = value.get("op")?.as_str()?;
        match op {
            "run-scenario" => Some(Command::RunScenario {
                spec_json: json::canonical(value.get("spec")?),
            }),
            "expand-matrix" => Some(Command::ExpandMatrix {
                campaign: value.get("campaign")?.as_str()?.to_string(),
                cells: value.get("cells")?.as_u64()?,
                jobs: value.get("jobs")?.as_u64()?,
            }),
            "execute-cell" => Some(Command::ExecuteCell {
                key: JobKey::from_hex(value.get("key")?.as_str()?)?,
                spec_json: json::canonical(value.get("spec")?),
            }),
            "regenerate-figure" => Some(Command::RegenerateFigure {
                id: value.get("id")?.as_str()?.to_string(),
                scale: value.get("scale")?.as_str()?.to_string(),
                budget: match value.get("budget")? {
                    JsonValue::Null => None,
                    b => Some(BudgetSpec {
                        target_rel_halfwidth: b.get("target_rel_halfwidth")?.as_f64()?,
                        confidence_z: b.get("confidence_z")?.as_f64()?,
                        min_replicates: b.get("min_replicates")?.as_u64()?,
                        max_replicates: b.get("max_replicates")?.as_u64()?,
                        max_total_jobs: match b.get("max_total_jobs")? {
                            JsonValue::Null => None,
                            n => Some(n.as_u64()?),
                        },
                    }),
                },
            }),
            "gc-store" => {
                let live = value
                    .get("live")?
                    .as_array()?
                    .iter()
                    .map(|k| JobKey::from_hex(k.as_str()?))
                    .collect::<Option<Vec<JobKey>>>()?;
                Some(Command::GcStore { live })
            }
            "emit-report" => Some(Command::EmitReport {
                campaign: value.get("campaign")?.as_str()?.to_string(),
                dir: value.get("dir")?.as_str()?.to_string(),
            }),
            "export-bundle" => Some(Command::ExportBundle {
                dest: value.get("dest")?.as_str()?.to_string(),
            }),
            "import-bundle" => Some(Command::ImportBundle {
                src: value.get("src")?.as_str()?.to_string(),
                dest: value.get("dest")?.as_str()?.to_string(),
            }),
            _ => None,
        }
    }

    /// One-line human description, used by the log diff renderer. Stable
    /// across runs of the same campaign (no sequence numbers, no paths that
    /// vary run to run for mutations keyed by content).
    pub fn describe(&self) -> String {
        match self {
            Command::RunScenario { spec_json } => {
                format!("run-scenario {}", spec_fingerprint(spec_json))
            }
            Command::ExpandMatrix {
                campaign,
                cells,
                jobs,
            } => format!("expand-matrix {campaign:?} ({cells} cells, {jobs} jobs)"),
            Command::ExecuteCell { key, spec_json } => {
                format!("execute-cell {key} {}", spec_fingerprint(spec_json))
            }
            Command::RegenerateFigure { id, scale, budget } => match budget {
                None => format!("regenerate-figure {id} ({scale}, fixed replicates)"),
                Some(b) => format!(
                    "regenerate-figure {id} ({scale}, budgeted {}..{} replicates)",
                    b.min_replicates, b.max_replicates
                ),
            },
            Command::GcStore { live } => format!("gc-store ({} live keys)", live.len()),
            Command::EmitReport { campaign, dir } => {
                format!("emit-report {campaign:?} -> {dir}")
            }
            Command::ExportBundle { dest } => format!("export-bundle -> {dest}"),
            Command::ImportBundle { src, dest } => {
                format!("import-bundle {src} -> {dest}")
            }
        }
    }
}

/// A short human hint of what a spec is (workload kind + topology kind +
/// seed), so diff lines are readable without dumping whole specs.
fn spec_fingerprint(spec_json: &str) -> String {
    let Ok(doc) = json::parse(spec_json) else {
        return "(unparsable spec)".to_string();
    };
    let workload = doc
        .get("workload")
        .and_then(|w| w.get("kind"))
        .and_then(|k| k.as_str())
        .unwrap_or("?");
    let topology = doc
        .get("topology")
        .and_then(|t| t.get("kind"))
        .and_then(|k| k.as_str())
        .unwrap_or("?");
    let seed = doc.get("seed").and_then(|s| s.as_u64()).unwrap_or(0);
    format!("({workload} on {topology}, seed {seed})")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn examples() -> Vec<Command> {
        vec![
            Command::RunScenario {
                spec_json: "{\"seed\":7}".into(),
            },
            Command::ExpandMatrix {
                campaign: "e3 permutation".into(),
                cells: 12,
                jobs: 24,
            },
            Command::ExecuteCell {
                key: JobKey(0x0123_4567_89ab_cdef_0123_4567_89ab_cdef),
                spec_json: "{\"seed\":9}".into(),
            },
            Command::RegenerateFigure {
                id: "e4".into(),
                scale: "tiny".into(),
                budget: None,
            },
            Command::RegenerateFigure {
                id: "e9".into(),
                scale: "paper".into(),
                budget: Some(BudgetSpec {
                    target_rel_halfwidth: 0.25,
                    confidence_z: 1.96,
                    min_replicates: 3,
                    max_replicates: 12,
                    max_total_jobs: Some(500),
                }),
            },
            Command::GcStore {
                live: vec![JobKey(1), JobKey(u128::MAX)],
            },
            Command::EmitReport {
                campaign: "sweep-campaign".into(),
                dir: "sweep-out".into(),
            },
            Command::ExportBundle {
                dest: "campaign.rfb".into(),
            },
            Command::ImportBundle {
                src: "campaign.rfb".into(),
                dest: "restored".into(),
            },
        ]
    }

    #[test]
    fn every_command_round_trips_through_canonical_json() {
        for cmd in examples() {
            let text = cmd.canonical_json();
            let back = Command::from_value(&json::parse(&text).unwrap())
                .unwrap_or_else(|| panic!("decode failed for {text}"));
            assert_eq!(back, cmd);
            // Canonical means a second encode is byte-identical.
            assert_eq!(back.canonical_json(), text);
        }
    }

    #[test]
    fn unknown_ops_and_malformed_records_decode_to_none() {
        for bad in [
            "{\"op\":\"launch-missiles\"}",
            "{\"op\":\"execute-cell\"}",
            "{\"op\":\"execute-cell\",\"key\":\"zz\",\"spec\":{}}",
            "{\"cells\":1}",
            "[1,2,3]",
        ] {
            let value = json::parse(bad).unwrap();
            assert!(Command::from_value(&value).is_none(), "accepted {bad}");
        }
    }

    #[test]
    fn budget_spec_mirrors_policy() {
        let policy = BudgetPolicy {
            target_rel_halfwidth: 0.2,
            confidence_z: 2.58,
            min_replicates: 4,
            max_replicates: 16,
            max_total_jobs: None,
        };
        let spec = BudgetSpec::from_policy(&policy);
        let back = spec.to_policy();
        assert_eq!(back.min_replicates, 4);
        assert_eq!(back.max_replicates, 16);
        assert_eq!(back.target_rel_halfwidth, 0.2);
        assert_eq!(back.max_total_jobs, None);
    }
}
