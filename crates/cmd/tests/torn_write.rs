//! Torn-write property tests for the campaign journal: whatever prefix of
//! the log survives a crash, [`Executor::recover`] must restore the longest
//! valid prefix, never panic, and never re-execute a job whose result is
//! already in the store.
//!
//! The exhaustive test truncates a real campaign journal at **every byte
//! boundary**; the property test flips arbitrary single bytes (corruption,
//! not just truncation). Both run against the warm store the campaign
//! produced, so any re-execution is a recovery bug, not a cache miss.

use proptest::prelude::*;
use rackfabric_cmd::journal::{read_log, LogRecord};
use rackfabric_cmd::{Executor, NoCampaigns};
use rackfabric_scenario::matrix::{AxisValue, Matrix};
use rackfabric_scenario::runner::Runner;
use rackfabric_scenario::spec::{ScenarioSpec, WorkloadSpec};
use rackfabric_sim::time::SimTime;
use rackfabric_sim::units::Bytes;
use rackfabric_sweep::campaign::Sweep;
use rackfabric_sweep::store::ResultStore;
use rackfabric_topo::spec::TopologySpec;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// The fixture: one journaled two-job campaign, run once per process. The
/// torn copies live in per-test directories; the store stays warm and is
/// only ever read by recovery.
struct Fixture {
    root: PathBuf,
    /// Bytes of the single journal segment the campaign wrote.
    bytes: Vec<u8>,
    /// Its validated records (marker + one per job).
    records: Vec<LogRecord>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let root =
            std::env::temp_dir().join(format!("rackfabric-cmd-torn-write-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let exec = Executor::with_journal(
            ResultStore::open(root.join("store")).unwrap(),
            Runner::single_threaded(),
            root.join("journal"),
        )
        .unwrap();
        let base = ScenarioSpec::new(
            "torn-write",
            TopologySpec::grid(2, 2, 2),
            WorkloadSpec::shuffle(Bytes::from_kib(1)),
        )
        .horizon(SimTime::from_millis(20));
        let matrix = Matrix::new(base)
            .axis("load", vec![AxisValue::Load(0.5), AxisValue::Load(1.0)])
            .master_seed(3);
        exec.run_campaign(&Sweep::new(matrix)).unwrap();

        let bytes = std::fs::read(root.join("journal").join("seg-00000000.wal")).unwrap();
        let (records, tail) = read_log(&root.join("journal")).unwrap();
        assert!(tail.clean);
        assert_eq!(records.len(), 3, "expand-matrix marker + 2 execute-cell");
        Fixture {
            root,
            bytes,
            records,
        }
    })
}

/// Byte offsets at which each record of `bytes` ends (frame boundaries).
fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut boundaries = Vec::new();
    let mut offset = 0usize;
    while offset + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        offset += 8 + len;
        assert!(offset <= bytes.len(), "fixture journal ends mid-frame");
        boundaries.push(offset);
    }
    boundaries
}

/// Writes `bytes` as the only segment of a fresh journal at `dir`.
fn write_torn_journal(dir: &Path, bytes: &[u8]) {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(dir.join("seg-00000000.wal"), bytes).unwrap();
}

/// Opens an executor on the warm fixture store with the journal at `dir`
/// and recovers; returns what recovery saw and did.
fn recover_with(fix: &Fixture, dir: &Path) -> rackfabric_cmd::RecoveryStats {
    let exec = Executor::with_journal(
        ResultStore::open(fix.root.join("store")).unwrap(),
        Runner::single_threaded(),
        dir,
    )
    .unwrap();
    exec.recover(&NoCampaigns).unwrap()
}

#[test]
fn recovery_restores_longest_valid_prefix_at_every_truncation_point() {
    let fix = fixture();
    let boundaries = frame_boundaries(&fix.bytes);
    assert_eq!(boundaries.len(), fix.records.len());
    let dir = fix.root.join("torn-exhaustive");

    for cut in 0..=fix.bytes.len() {
        write_torn_journal(&dir, &fix.bytes[..cut]);

        // The reader yields exactly the records whose frames fit in the cut.
        let (records, tail) = read_log(&dir).unwrap();
        let expected = boundaries.iter().filter(|&&end| end <= cut).count();
        assert_eq!(records.len(), expected, "wrong prefix length at cut {cut}");
        assert_eq!(
            records[..],
            fix.records[..expected],
            "prefix content diverged at cut {cut}"
        );
        assert_eq!(
            tail.clean,
            cut == 0 || boundaries.contains(&cut),
            "tail cleanliness wrong at cut {cut}"
        );

        // Recovery over that prefix: the store is warm, so nothing may
        // re-execute, and opening must have healed the tear.
        let stats = recover_with(fix, &dir);
        assert_eq!(stats.commands, expected);
        assert_eq!(
            stats.cells_replayed, 0,
            "re-executed a stored job at cut {cut}"
        );
        assert_eq!(
            stats.cells_already_stored,
            expected.saturating_sub(1).min(2)
        );
        assert!(!stats.torn_tail, "open must heal the tear before recovery");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn recovery_survives_arbitrary_single_byte_corruption(
        pos_frac in 0.0f64..1.0,
        flip in 1u32..256,
    ) {
        let fix = fixture();
        let pos = ((pos_frac * fix.bytes.len() as f64) as usize).min(fix.bytes.len() - 1);
        let mut corrupt = fix.bytes.clone();
        corrupt[pos] ^= flip as u8;

        let dir = fix.root.join(format!("torn-prop-{pos}-{flip}"));
        write_torn_journal(&dir, &corrupt);

        // Whatever the flip hit, the reader must yield a strict prefix of
        // the original records (CRC catches every single-byte error) and
        // recovery must neither panic nor re-execute stored jobs.
        let (records, _) = read_log(&dir).unwrap();
        prop_assert!(records.len() <= fix.records.len());
        prop_assert_eq!(&records[..], &fix.records[..records.len()]);

        let stats = recover_with(fix, &dir);
        prop_assert_eq!(stats.cells_replayed, 0);
        prop_assert_eq!(stats.commands, records.len());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
