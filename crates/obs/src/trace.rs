//! A bounded sink for Chrome Trace Event JSON (the format `chrome://tracing`
//! and [Perfetto](https://ui.perfetto.dev) load directly).
//!
//! Events are recorded with nanosecond wall-clock offsets from the sink's
//! creation and rendered as microsecond `ts`/`dur` fields, the unit the
//! format specifies. Lanes (`tid`s) are plain integers chosen by the
//! instrumented subsystem — one per worker thread, shard, or logical stage —
//! and can be labelled with [`TraceSink::name_lane`] metadata events so the
//! viewer shows "worker 0 (windows)" instead of a bare number.
//!
//! The workspace's lane allocation, so subsystems sharing one sink never
//! collide:
//!
//! | range   | owner                                            |
//! |---------|--------------------------------------------------|
//! | 0..1000 | engine shard workers                             |
//! | 1000+w  | scenario runner job workers (`JOB_LANE_BASE`)    |
//! | 2000    | sweep orchestrator (`SWEEP_LANE`)                |
//! | 3000+w  | `rackfabricd` daemon workers (`DAEMON_LANE_BASE`)|
//!
//! The sink is **bounded**: past [`TraceSink::with_capacity`]'s event cap it
//! drops new events (counting them) instead of growing without limit — a
//! long perf run stays a few tens of MB of JSON instead of eating the disk.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Default event capacity: enough for ~10k windows of a 4-worker run.
pub const DEFAULT_CAPACITY: usize = 200_000;

/// One argument attached to a trace event, rendered into its `args` object.
#[derive(Debug, Clone)]
pub enum ArgValue {
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string (escaped on render).
    Str(String),
}

impl ArgValue {
    fn render(&self, out: &mut String) {
        match self {
            ArgValue::U64(v) => out.push_str(&v.to_string()),
            ArgValue::F64(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            ArgValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name (the box label in the viewer).
    pub name: &'static str,
    /// Category string (filterable in the viewer).
    pub cat: &'static str,
    /// Phase: `X` complete, `i` instant, `M` metadata.
    pub phase: char,
    /// Start offset from the sink's creation, nanoseconds.
    pub ts_nanos: u64,
    /// Duration, nanoseconds (complete events only).
    pub dur_nanos: u64,
    /// Lane (rendered as `tid`).
    pub lane: u64,
    /// Arguments, rendered into the `args` object.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// The bounded trace-event sink. Cheap to record into (one mutex push);
/// intended for coarse spans — windows, jobs, store I/O — not per-packet
/// events.
#[derive(Debug)]
pub struct TraceSink {
    t0: Instant,
    events: Mutex<Vec<TraceEvent>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::with_capacity(DEFAULT_CAPACITY)
    }
}

impl TraceSink {
    /// A sink with the default event capacity.
    pub fn new() -> TraceSink {
        TraceSink::default()
    }

    /// A sink that keeps at most `capacity` events (further events are
    /// dropped and counted, never reallocated).
    pub fn with_capacity(capacity: usize) -> TraceSink {
        TraceSink {
            t0: Instant::now(),
            events: Mutex::new(Vec::new()),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    /// Nanoseconds elapsed since the sink was created (the `ts` clock).
    #[inline]
    pub fn now_nanos(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    /// Records one event (dropping it when the sink is full).
    pub fn record(&self, event: TraceEvent) {
        let mut events = self.events.lock().expect("trace sink poisoned");
        if events.len() >= self.capacity {
            drop(events);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(event);
    }

    /// Records an instant event on `lane`.
    pub fn instant(&self, lane: u64, name: &'static str, cat: &'static str) {
        self.record(TraceEvent {
            name,
            cat,
            phase: 'i',
            ts_nanos: self.now_nanos(),
            dur_nanos: 0,
            lane,
            args: Vec::new(),
        });
    }

    /// Names `lane` in the viewer via a `thread_name` metadata event.
    pub fn name_lane(&self, lane: u64, name: impl Into<String>) {
        self.record(TraceEvent {
            name: "thread_name",
            cat: "__metadata",
            phase: 'M',
            ts_nanos: 0,
            dur_nanos: 0,
            lane,
            args: vec![("name", ArgValue::Str(name.into()))],
        });
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace sink poisoned").len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the sink was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A copy of the recorded events (tests and nesting checks).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace sink poisoned").clone()
    }

    /// Renders the Chrome Trace Event JSON document.
    pub fn render_json(&self) -> String {
        let events = self.events.lock().expect("trace sink poisoned");
        let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
        for (i, event) in events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"{}\", \"pid\": 1, \
                 \"tid\": {}, \"ts\": {}.{:03}",
                event.name,
                event.cat,
                event.phase,
                event.lane,
                event.ts_nanos / 1_000,
                event.ts_nanos % 1_000,
            ));
            if event.phase == 'X' {
                out.push_str(&format!(
                    ", \"dur\": {}.{:03}",
                    event.dur_nanos / 1_000,
                    event.dur_nanos % 1_000
                ));
            }
            if !event.args.is_empty() {
                out.push_str(", \"args\": {");
                for (j, (key, value)) in event.args.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("\"{key}\": "));
                    value.render(&mut out);
                }
                out.push('}');
            }
            out.push('}');
        }
        let dropped = self.dropped();
        out.push_str("\n], \"otherData\": {\"dropped_events\": ");
        out.push_str(&dropped.to_string());
        out.push_str("}}\n");
        out
    }

    /// Writes the rendered JSON to `path`.
    pub fn write_file(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.render_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_loadable_trace_json() {
        let sink = TraceSink::new();
        sink.name_lane(3, "worker 3");
        sink.instant(3, "window-edge", "windows");
        sink.record(TraceEvent {
            name: "drain",
            cat: "windows",
            phase: 'X',
            ts_nanos: 1_500,
            dur_nanos: 2_750,
            lane: 3,
            args: vec![
                ("events", ArgValue::U64(42)),
                ("label", ArgValue::Str("shard \"0\"".into())),
            ],
        });
        let json = sink.render_json();
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"ph\": \"M\""));
        assert!(json.contains("\"ph\": \"i\""));
        assert!(json.contains("\"ts\": 1.500, \"dur\": 2.750"));
        assert!(json.contains("\"events\": 42"));
        assert!(json.contains("shard \\\"0\\\""));
        assert!(json.ends_with("\"dropped_events\": 0}}\n"));
    }

    #[test]
    fn capacity_bounds_the_sink() {
        let sink = TraceSink::with_capacity(2);
        for _ in 0..5 {
            sink.instant(0, "tick", "t");
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 3);
        assert!(sink.render_json().contains("\"dropped_events\": 3"));
    }
}
