//! The shard/window profiler: where does a conservative-window run spend
//! its wall-clock time, and how evenly is the work spread over shards?
//!
//! The windowed engine fills a [`WindowProfiler`] (lock-free atomics, safe
//! to share with every worker thread) and the caller takes a plain
//! [`WindowProfile`] snapshot afterwards. Two kinds of numbers live here,
//! deliberately tagged apart (see [`TimeDomain`](crate::TimeDomain)):
//!
//! * **Wall**: per-worker barrier-wait time (the spin-barrier cost that the
//!   `BENCH_hotpath.json` worker sweep shows dominating), per-shard drain
//!   time.
//! * **Sim**: per-shard event counts, mailbox envelope counts, window
//!   length in picoseconds, events per window. These are deterministic —
//!   identical for every worker count — which is what makes the shard
//!   imbalance number trustworthy.

use crate::metrics::LogHistogram;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-shard accumulation slots.
#[derive(Debug, Default)]
struct ShardSlot {
    events: AtomicU64,
    drain_nanos: AtomicU64,
    mailbox_in: AtomicU64,
}

/// Per-worker accumulation slots.
#[derive(Debug, Default)]
struct WorkerSlot {
    barrier_wait_nanos: AtomicU64,
    barrier_waits: AtomicU64,
    early_advances: AtomicU64,
    wait_histogram: LogHistogram,
}

/// The live profiler the windowed engine records into. One instance per
/// run; every method is lock-free and callable from any worker thread.
#[derive(Debug)]
pub struct WindowProfiler {
    shards: Vec<ShardSlot>,
    /// Indexed by worker; sized to the shard count (the driver never runs
    /// more workers than shards).
    workers: Vec<WorkerSlot>,
    windows: AtomicU64,
    syncs: AtomicU64,
    window_picos: AtomicU64,
    fused_windows: AtomicU64,
    fused_picos: AtomicU64,
    window_len_picos: LogHistogram,
    events_per_window: LogHistogram,
}

impl WindowProfiler {
    /// A profiler for a run over `shards` shards (and at most as many
    /// workers).
    pub fn new(shards: usize) -> WindowProfiler {
        WindowProfiler {
            shards: (0..shards).map(|_| ShardSlot::default()).collect(),
            workers: (0..shards.max(1)).map(|_| WorkerSlot::default()).collect(),
            windows: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            window_picos: AtomicU64::new(0),
            fused_windows: AtomicU64::new(0),
            fused_picos: AtomicU64::new(0),
            window_len_picos: LogHistogram::new(),
            events_per_window: LogHistogram::new(),
        }
    }

    /// Number of shard slots.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Records `nanos` spent by `worker` inside a barrier wait.
    #[inline]
    pub fn record_barrier_wait(&self, worker: usize, nanos: u64) {
        let slot = &self.workers[worker];
        slot.barrier_wait_nanos.fetch_add(nanos, Ordering::Relaxed);
        slot.barrier_waits.fetch_add(1, Ordering::Relaxed);
        slot.wait_histogram.record(nanos);
    }

    /// Records one window's drain on `shard`: `nanos` of wall time covering
    /// `events` events.
    #[inline]
    pub fn record_drain(&self, shard: usize, nanos: u64, events: u64) {
        let slot = &self.shards[shard];
        slot.drain_nanos.fetch_add(nanos, Ordering::Relaxed);
        slot.events.fetch_add(events, Ordering::Relaxed);
    }

    /// Records envelopes routed into `shard`'s queue at a barrier.
    #[inline]
    pub fn record_mailbox_in(&self, shard: usize, envelopes: u64) {
        self.shards[shard]
            .mailbox_in
            .fetch_add(envelopes, Ordering::Relaxed);
    }

    /// Records one executed window: its sim-time length and the events it
    /// processed across all shards.
    #[inline]
    pub fn record_window(&self, len_picos: u64, events: u64) {
        self.windows.fetch_add(1, Ordering::Relaxed);
        self.window_picos.fetch_add(len_picos, Ordering::Relaxed);
        self.window_len_picos.record(len_picos);
        self.events_per_window.record(events);
    }

    /// Records one sync point.
    #[inline]
    pub fn record_sync(&self) {
        self.syncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records that `worker` reached a phase edge after every peer had
    /// already sealed it — the no-wait fast path of the phase-counted
    /// window executor.
    #[inline]
    pub fn record_early_advance(&self, worker: usize) {
        self.workers[worker]
            .early_advances
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one fused window: a window the planner extended past the
    /// base conservative edge by `extra_picos` of sim time.
    #[inline]
    pub fn record_fused_window(&self, extra_picos: u64) {
        self.fused_windows.fetch_add(1, Ordering::Relaxed);
        self.fused_picos.fetch_add(extra_picos, Ordering::Relaxed);
    }

    /// Takes a plain snapshot of everything recorded so far.
    pub fn snapshot(&self) -> WindowProfile {
        WindowProfile {
            shards: self
                .shards
                .iter()
                .map(|s| ShardProfile {
                    events: s.events.load(Ordering::Relaxed),
                    drain_nanos: s.drain_nanos.load(Ordering::Relaxed),
                    mailbox_in: s.mailbox_in.load(Ordering::Relaxed),
                })
                .collect(),
            workers: self
                .workers
                .iter()
                .map(|w| WorkerProfile {
                    barrier_wait_nanos: w.barrier_wait_nanos.load(Ordering::Relaxed),
                    barrier_waits: w.barrier_waits.load(Ordering::Relaxed),
                    early_advances: w.early_advances.load(Ordering::Relaxed),
                    wait_histogram: HistogramSnapshot::of(&w.wait_histogram),
                })
                .collect(),
            windows: self.windows.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            window_picos: self.window_picos.load(Ordering::Relaxed),
            fused_windows: self.fused_windows.load(Ordering::Relaxed),
            fused_picos: self.fused_picos.load(Ordering::Relaxed),
            window_len_picos: HistogramSnapshot::of(&self.window_len_picos),
            events_per_window: HistogramSnapshot::of(&self.events_per_window),
        }
    }
}

/// A plain (cloneable, mergeable) copy of a [`LogHistogram`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`, bound order.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Snapshots a live histogram.
    pub fn of(h: &LogHistogram) -> HistogramSnapshot {
        HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            max: h.max(),
            buckets: h.sparse(),
        }
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other` into `self`: counts and sums add, bucket lists merge
    /// by bound. Exact — merging per-worker barrier-wait histograms loses
    /// nothing.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ab, ac)), Some(&&(bb, bc))) => {
                    if ab == bb {
                        merged.push((ab, ac + bc));
                        a.next();
                        b.next();
                    } else if ab < bb {
                        merged.push((ab, ac));
                        a.next();
                    } else {
                        merged.push((bb, bc));
                        b.next();
                    }
                }
                (Some(&&pair), None) => {
                    merged.push(pair);
                    a.next();
                }
                (None, Some(&&pair)) => {
                    merged.push(pair);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }

    /// The bucket bound containing quantile `q` (same semantics as
    /// [`LogHistogram::quantile_bound`]).
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(bound, count) in &self.buckets {
            seen += count;
            if seen >= rank {
                return bound.min(self.max);
            }
        }
        self.max
    }
}

/// One shard's profile.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardProfile {
    /// Events the shard processed (sim domain: deterministic).
    pub events: u64,
    /// Wall nanoseconds spent draining the shard's windows.
    pub drain_nanos: u64,
    /// Envelopes delivered into the shard at barriers (sim domain).
    pub mailbox_in: u64,
}

/// One worker's profile.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerProfile {
    /// Wall nanoseconds spent waiting at the spin barrier.
    pub barrier_wait_nanos: u64,
    /// Barrier waits performed.
    pub barrier_waits: u64,
    /// Phase edges this worker crossed without waiting (every peer had
    /// already sealed when it arrived).
    pub early_advances: u64,
    /// Distribution of individual wait times (wall nanoseconds).
    pub wait_histogram: HistogramSnapshot,
}

/// A complete profile of one windowed run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowProfile {
    /// Per-shard slots, shard order.
    pub shards: Vec<ShardProfile>,
    /// Per-worker slots, worker order (slots past the actual worker count
    /// stay zero).
    pub workers: Vec<WorkerProfile>,
    /// Windows executed.
    pub windows: u64,
    /// Sync points executed.
    pub syncs: u64,
    /// Total sim-time covered by windows, picoseconds.
    pub window_picos: u64,
    /// Windows the planner fused past the base conservative edge.
    pub fused_windows: u64,
    /// Sim picoseconds of window length gained by fusion (included in
    /// `window_picos`).
    pub fused_picos: u64,
    /// Distribution of window lengths (sim picoseconds).
    pub window_len_picos: HistogramSnapshot,
    /// Distribution of events per window (all shards).
    pub events_per_window: HistogramSnapshot,
}

impl WindowProfile {
    /// Total barrier-wait wall nanoseconds over all workers.
    pub fn barrier_wait_nanos(&self) -> u64 {
        self.workers.iter().map(|w| w.barrier_wait_nanos).sum()
    }

    /// Total no-wait phase-edge crossings over all workers.
    pub fn early_advances(&self) -> u64 {
        self.workers.iter().map(|w| w.early_advances).sum()
    }

    /// All workers' wait histograms merged into one.
    pub fn merged_barrier_wait(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for worker in &self.workers {
            merged.merge(&worker.wait_histogram);
        }
        merged
    }

    /// Per-shard event counts, shard order.
    pub fn shard_events(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.events).collect()
    }

    /// The fraction of `workers × wall_nanos` spent in barrier waits — the
    /// headline "where did the speedup go" number.
    pub fn barrier_wait_fraction(&self, wall_nanos: u64, workers: usize) -> f64 {
        let budget = wall_nanos.saturating_mul(workers.max(1) as u64);
        if budget == 0 {
            0.0
        } else {
            self.barrier_wait_nanos() as f64 / budget as f64
        }
    }

    /// Shard event imbalance: max over mean of per-shard event counts
    /// (1.0 = perfectly balanced, 0.0 when no events ran). Deterministic.
    pub fn shard_event_imbalance(&self) -> f64 {
        let total: u64 = self.shards.iter().map(|s| s.events).sum();
        if total == 0 || self.shards.is_empty() {
            return 0.0;
        }
        let mean = total as f64 / self.shards.len() as f64;
        let max = self.shards.iter().map(|s| s.events).max().unwrap_or(0);
        max as f64 / mean
    }

    /// Folds another run's profile into this one (slot-wise; the profiles
    /// must have the same shard count). Used to aggregate repeated passes.
    pub fn merge(&mut self, other: &WindowProfile) {
        assert_eq!(
            self.shards.len(),
            other.shards.len(),
            "cannot merge profiles with different shard counts"
        );
        for (mine, theirs) in self.shards.iter_mut().zip(&other.shards) {
            mine.events += theirs.events;
            mine.drain_nanos += theirs.drain_nanos;
            mine.mailbox_in += theirs.mailbox_in;
        }
        if self.workers.len() < other.workers.len() {
            self.workers
                .resize(other.workers.len(), WorkerProfile::default());
        }
        for (mine, theirs) in self.workers.iter_mut().zip(&other.workers) {
            mine.barrier_wait_nanos += theirs.barrier_wait_nanos;
            mine.barrier_waits += theirs.barrier_waits;
            mine.early_advances += theirs.early_advances;
            mine.wait_histogram.merge(&theirs.wait_histogram);
        }
        self.windows += other.windows;
        self.syncs += other.syncs;
        self.window_picos += other.window_picos;
        self.fused_windows += other.fused_windows;
        self.fused_picos += other.fused_picos;
        self.window_len_picos.merge(&other.window_len_picos);
        self.events_per_window.merge(&other.events_per_window);
    }

    /// Renders the profile as one JSON object (used by `perf_smoke
    /// --profile` for the `BENCH_hotpath.json` breakdown). Wall-domain
    /// fields are labelled `*_ns`; everything else is sim/count domain.
    pub fn render_json(&self, wall_nanos: u64, workers: usize) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"windows\": {}, \"syncs\": {}, \"window_sim_picos\": {}, \
             \"fused_windows\": {}, \"fused_sim_picos\": {}, \"early_advances\": {}, \
             \"barrier_wait_ns_total\": {}, \"barrier_wait_fraction\": {:.6}, \
             \"shard_event_imbalance\": {:.6}, \"events_per_window_mean\": {:.3}, \
             \"window_len_picos_p50\": {}, \"window_len_picos_p99\": {}",
            self.windows,
            self.syncs,
            self.window_picos,
            self.fused_windows,
            self.fused_picos,
            self.early_advances(),
            self.barrier_wait_nanos(),
            self.barrier_wait_fraction(wall_nanos, workers),
            self.shard_event_imbalance(),
            self.events_per_window.mean(),
            self.window_len_picos.quantile_bound(0.50),
            self.window_len_picos.quantile_bound(0.99),
        ));
        out.push_str(", \"shards\": [");
        for (i, shard) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"shard\": {i}, \"events\": {}, \"drain_ns\": {}, \"mailbox_in\": {}}}",
                shard.events, shard.drain_nanos, shard.mailbox_in
            ));
        }
        out.push_str("], \"workers\": [");
        let mut rendered = 0;
        for (i, worker) in self.workers.iter().enumerate() {
            if worker.barrier_waits == 0
                && worker.barrier_wait_nanos == 0
                && worker.early_advances == 0
                && i >= workers
            {
                continue;
            }
            if rendered > 0 {
                out.push_str(", ");
            }
            rendered += 1;
            out.push_str(&format!(
                "{{\"worker\": {i}, \"barrier_wait_ns\": {}, \"barrier_waits\": {}, \
                 \"early_advances\": {}, \"wait_ns_p99\": {}}}",
                worker.barrier_wait_nanos,
                worker.barrier_waits,
                worker.early_advances,
                worker.wait_histogram.quantile_bound(0.99)
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_recordings() {
        let profiler = WindowProfiler::new(3);
        profiler.record_drain(0, 100, 7);
        profiler.record_drain(1, 50, 3);
        profiler.record_drain(0, 25, 2);
        profiler.record_mailbox_in(2, 4);
        profiler.record_barrier_wait(0, 1000);
        profiler.record_barrier_wait(1, 3000);
        profiler.record_window(2048, 10);
        profiler.record_window(1024, 2);
        profiler.record_sync();
        let profile = profiler.snapshot();
        assert_eq!(profile.shard_events(), vec![9, 3, 0]);
        assert_eq!(profile.shards[0].drain_nanos, 125);
        assert_eq!(profile.shards[2].mailbox_in, 4);
        assert_eq!(profile.barrier_wait_nanos(), 4000);
        assert_eq!(profile.windows, 2);
        assert_eq!(profile.syncs, 1);
        assert_eq!(profile.window_picos, 3072);
        assert_eq!(profile.events_per_window.count, 2);
        assert_eq!(profile.events_per_window.sum, 12);
    }

    #[test]
    fn barrier_wait_histogram_merge_is_exact() {
        let profiler = WindowProfiler::new(4);
        // Worker 0: short waits; worker 1: long waits; worker 3: idle.
        for w in [10u64, 12, 14] {
            profiler.record_barrier_wait(0, w);
        }
        for w in [1_000u64, 2_000_000] {
            profiler.record_barrier_wait(1, w);
        }
        profiler.record_barrier_wait(2, 0);
        let profile = profiler.snapshot();
        let merged = profile.merged_barrier_wait();
        assert_eq!(merged.count, 6);
        assert_eq!(merged.sum, 10 + 12 + 14 + 1_000 + 2_000_000);
        assert_eq!(merged.max, 2_000_000);
        // The merged bucket counts are the exact union of the per-worker
        // buckets (including the zero bucket from worker 2).
        let total_bucket_count: u64 = merged.buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total_bucket_count, 6);
        let per_worker_total: u64 = profile.workers.iter().map(|w| w.wait_histogram.count).sum();
        assert_eq!(per_worker_total, merged.count);
        assert_eq!(merged.buckets.first().unwrap(), &(0, 1));
        // Quantiles on the merged histogram bracket the true values.
        assert!(merged.quantile_bound(0.5) >= 14 && merged.quantile_bound(0.5) <= 31);
        assert_eq!(merged.quantile_bound(1.0), 2_000_000);
    }

    #[test]
    fn profile_merge_accumulates_runs() {
        let p1 = WindowProfiler::new(2);
        p1.record_drain(0, 10, 5);
        p1.record_barrier_wait(0, 100);
        p1.record_window(512, 5);
        let p2 = WindowProfiler::new(2);
        p2.record_drain(0, 20, 7);
        p2.record_drain(1, 5, 12);
        p2.record_barrier_wait(1, 50);
        p2.record_window(256, 19);
        let mut merged = p1.snapshot();
        merged.merge(&p2.snapshot());
        assert_eq!(merged.shard_events(), vec![12, 12]);
        assert_eq!(merged.barrier_wait_nanos(), 150);
        assert_eq!(merged.windows, 2);
        assert_eq!(merged.window_picos, 768);
        assert_eq!(merged.shard_event_imbalance(), 1.0);
    }

    #[test]
    fn imbalance_and_fraction_edge_cases() {
        let profile = WindowProfiler::new(4).snapshot();
        assert_eq!(profile.shard_event_imbalance(), 0.0);
        assert_eq!(profile.barrier_wait_fraction(0, 4), 0.0);
        let profiler = WindowProfiler::new(2);
        profiler.record_drain(0, 1, 30);
        profiler.record_drain(1, 1, 10);
        profiler.record_barrier_wait(0, 500);
        profiler.record_barrier_wait(1, 500);
        let profile = profiler.snapshot();
        // max/mean = 30 / 20.
        assert!((profile.shard_event_imbalance() - 1.5).abs() < 1e-12);
        // 1000 ns of waiting over 2 workers × 1000 ns of wall = 0.5.
        assert!((profile.barrier_wait_fraction(1000, 2) - 0.5).abs() < 1e-12);
        let json = profile.render_json(1000, 2);
        assert!(json.contains("\"barrier_wait_fraction\": 0.5"));
        assert!(json.contains("\"shard_event_imbalance\": 1.5"));
        assert!(json.contains("\"events\": 30"));
    }
}
