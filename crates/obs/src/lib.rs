//! # rackfabric-obs
//!
//! The deterministic instrumentation layer of the rackfabric workspace: a
//! metrics registry, lightweight span tracing with Chrome Trace Event
//! export, and the shard/window profiler the windowed engine reports
//! through. It exists to answer "where does the wall-clock time go?" —
//! barrier waits vs window draining vs store I/O — without ever touching
//! what the simulation *computes*.
//!
//! ## The wall-clock / sim-time split
//!
//! Every metric and span in this crate is tagged with a [`TimeDomain`]:
//!
//! * **Wall** — host wall-clock measurements (barrier waits, drain times,
//!   store I/O latency). Non-deterministic by nature; these may appear in
//!   perf artifacts (`BENCH_hotpath.json`, trace files) but must **never**
//!   reach job keys, store records, or golden exports.
//! * **Sim** — simulated-time or pure event-count measurements (window
//!   lengths in picoseconds, events per window, mailbox train counts).
//!   Deterministic, but still kept out of result exports: instrumentation
//!   is observability, not output.
//!
//! The split is structural: nothing in the result-export paths reads this
//! crate, and the workspace-level `obs_determinism` test pins that exports
//! are byte-identical with instrumentation on and off.
//!
//! ## Zero cost when disabled
//!
//! All instrumentation is reached through [`Observer`], a pair of optional
//! [`Arc`] handles. A disabled observer ([`Observer::off`],
//! also the `Default`) makes every record call a branch on a `None` that
//! the optimizer folds away — no clock reads, no atomics, no allocation on
//! any hot path.
//!
//! ## Modules
//!
//! * [`metrics`] — counters / gauges / log-bucket histograms behind a named
//!   [`Registry`](metrics::Registry), each tagged with its [`TimeDomain`].
//! * [`trace`] — the bounded [`TraceSink`](trace::TraceSink) collecting
//!   Chrome Trace Event (Perfetto-loadable) JSON.
//! * [`span`] — RAII [`Span`](span::Span) guards recording complete events
//!   into a sink, with correct nesting per lane.
//! * [`profile`] — the [`WindowProfiler`](profile::WindowProfiler) the
//!   conservative-window engine fills: per-shard event counts and drain
//!   time, per-worker barrier waits, window length / events-per-window
//!   histograms.

pub mod metrics;
pub mod profile;
pub mod span;
pub mod trace;

use std::sync::Arc;

/// Which clock a measurement belongs to (see the crate docs for the rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TimeDomain {
    /// Host wall-clock time: non-deterministic, perf artifacts only.
    Wall,
    /// Simulated time or pure event counts: deterministic, still never
    /// exported with results.
    Sim,
}

impl TimeDomain {
    /// Short lowercase label used in rendered snapshots.
    pub fn label(self) -> &'static str {
        match self {
            TimeDomain::Wall => "wall",
            TimeDomain::Sim => "sim",
        }
    }
}

/// The handle threaded through instrumented subsystems: an optional trace
/// sink plus an optional metrics registry. `Observer::off()` (the default)
/// disables everything at near-zero cost.
#[derive(Debug, Clone, Default)]
pub struct Observer {
    trace: Option<Arc<trace::TraceSink>>,
    registry: Option<Arc<metrics::Registry>>,
}

impl Observer {
    /// The disabled observer: every recording call is a no-op.
    pub fn off() -> Observer {
        Observer::default()
    }

    /// An observer recording into both a fresh trace sink and a fresh
    /// metrics registry.
    pub fn enabled() -> Observer {
        Observer {
            trace: Some(Arc::new(trace::TraceSink::new())),
            registry: Some(Arc::new(metrics::Registry::new())),
        }
    }

    /// Attaches a trace sink, returning the modified observer.
    pub fn with_trace(mut self, sink: Arc<trace::TraceSink>) -> Observer {
        self.trace = Some(sink);
        self
    }

    /// Attaches a metrics registry, returning the modified observer.
    pub fn with_registry(mut self, registry: Arc<metrics::Registry>) -> Observer {
        self.registry = Some(registry);
        self
    }

    /// True when any instrumentation is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.trace.is_some() || self.registry.is_some()
    }

    /// The trace sink, when tracing is enabled.
    #[inline]
    pub fn trace(&self) -> Option<&Arc<trace::TraceSink>> {
        self.trace.as_ref()
    }

    /// The metrics registry, when metrics are enabled.
    #[inline]
    pub fn registry(&self) -> Option<&Arc<metrics::Registry>> {
        self.registry.as_ref()
    }

    /// Opens a span on `lane` (a trace thread/track), recording a complete
    /// event into the sink when the guard drops. Returns a no-op guard when
    /// tracing is disabled.
    #[inline]
    pub fn span(&self, lane: u64, name: &'static str, cat: &'static str) -> span::Span {
        match &self.trace {
            Some(sink) => span::Span::enter(sink.clone(), lane, name, cat),
            None => span::Span::disabled(),
        }
    }

    /// Increments the named wall-domain counter (registering it on first
    /// use). No-op when metrics are disabled.
    #[inline]
    pub fn count(&self, name: &'static str, domain: TimeDomain, delta: u64) {
        if let Some(registry) = &self.registry {
            registry.counter(name, domain).add(delta);
        }
    }

    /// Sets the named gauge (registering it on first use). No-op when
    /// metrics are disabled. Gauges carry instantaneous levels — a
    /// service's queue depth or active-job count — where a counter's
    /// monotonic total would be meaningless.
    #[inline]
    pub fn gauge_set(&self, name: &'static str, domain: TimeDomain, value: i64) {
        if let Some(registry) = &self.registry {
            registry.gauge(name, domain).set(value);
        }
    }

    /// Records one sample into the named histogram (registering it on first
    /// use). No-op when metrics are disabled. This is how a service records
    /// per-request latencies cheaply enough for its hot path.
    #[inline]
    pub fn record(&self, name: &'static str, domain: TimeDomain, value: u64) {
        if let Some(registry) = &self.registry {
            registry.histogram(name, domain).record(value);
        }
    }
}

/// Convenience re-exports for `use rackfabric_obs::prelude::*`.
pub mod prelude {
    pub use crate::metrics::{Counter, Gauge, LogHistogram, Registry};
    pub use crate::profile::{WindowProfile, WindowProfiler};
    pub use crate::span::Span;
    pub use crate::trace::TraceSink;
    pub use crate::{Observer, TimeDomain};
}
