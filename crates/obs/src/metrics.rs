//! The metrics registry: named counters, gauges and log-bucket histograms,
//! each tagged with the [`TimeDomain`] it measures.
//!
//! Handles are `Arc`-shared atomics, so shard workers update them without
//! locks; the registry itself is only locked to register or snapshot.
//! Snapshots render in name order, so two snapshots of equal state are
//! byte-identical — but note that *values* in the `Wall` domain are
//! inherently non-deterministic and must stay out of result exports.

use crate::TimeDomain;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing `u64`.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of buckets in a [`LogHistogram`]: bucket `i` counts samples whose
/// value has `i` significant bits (i.e. `v == 0` → bucket 0, else bucket
/// `64 - v.leading_zeros()`).
pub const LOG_BUCKETS: usize = 65;

/// A lock-free power-of-two-bucket histogram for wall-clock nanoseconds,
/// sim-time picoseconds, or plain counts. Exact in count and sum, bucketed
/// (factor-of-two resolution) in quantiles — cheap enough for hot paths and
/// mergeable across shards and workers.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; LOG_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [const { AtomicU64::new(0) }; LOG_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// The bucket index of `value` (its significant-bit count).
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The inclusive upper bound of bucket `i` (`0` for the zero bucket).
    pub fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            ((1u128 << i) - 1) as u64
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Folds `other` into `self` (exact: bucket counts, totals and max all
    /// add or max component-wise).
    pub fn merge(&self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let v = theirs.load(Ordering::Relaxed);
            if v > 0 {
                mine.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The upper bound of the bucket containing quantile `q` (`0.0..=1.0`);
    /// 0 when empty. Bucketed resolution: the true quantile lies within a
    /// factor of two below the returned bound.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_bound(i).min(self.max());
            }
        }
        self.max()
    }

    /// The non-empty buckets as `(inclusive upper bound, count)` pairs.
    pub fn sparse(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let count = b.load(Ordering::Relaxed);
                (count > 0).then_some((Self::bucket_bound(i), count))
            })
            .collect()
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A [`Counter`].
    Counter(Arc<Counter>),
    /// A [`Gauge`].
    Gauge(Arc<Gauge>),
    /// A [`LogHistogram`].
    Histogram(Arc<LogHistogram>),
}

/// A registry of named metrics. Registration is idempotent: the first call
/// for a name creates the metric, later calls return the same handle.
/// Re-registering a name as a different kind or domain panics — the split
/// between wall-clock and sim-time metrics is a contract, not a convention.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<&'static str, (TimeDomain, Metric)>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(
        &self,
        name: &'static str,
        domain: TimeDomain,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        let (have_domain, metric) = inner
            .entry(name)
            .or_insert_with(|| (domain, make()))
            .clone();
        assert_eq!(
            have_domain,
            domain,
            "metric `{name}` registered in both the {} and {} time domains",
            have_domain.label(),
            domain.label()
        );
        metric
    }

    /// The counter `name` in `domain`, creating it on first use.
    pub fn counter(&self, name: &'static str, domain: TimeDomain) -> Arc<Counter> {
        match self.register(name, domain, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// The gauge `name` in `domain`, creating it on first use.
    pub fn gauge(&self, name: &'static str, domain: TimeDomain) -> Arc<Gauge> {
        match self.register(name, domain, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// The histogram `name` in `domain`, creating it on first use.
    pub fn histogram(&self, name: &'static str, domain: TimeDomain) -> Arc<LogHistogram> {
        match self.register(name, domain, || {
            Metric::Histogram(Arc::new(LogHistogram::new()))
        }) {
            Metric::Histogram(h) => h,
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// Renders every metric, in name order, as one JSON object keyed by
    /// name. Counter → integer, gauge → integer, histogram → `{count, sum,
    /// max, mean, p50, p99, buckets}`. Each entry carries its time domain.
    pub fn render_json(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut out = String::from("{");
        for (i, (name, (domain, metric))) in inner.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{name}\": {{\"domain\": \"{}\", ",
                domain.label()
            ));
            match metric {
                Metric::Counter(c) => out.push_str(&format!("\"count\": {}", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("\"value\": {}", g.get())),
                Metric::Histogram(h) => {
                    out.push_str(&format!(
                        "\"count\": {}, \"sum\": {}, \"max\": {}, \"p50_bound\": {}, \
                         \"p99_bound\": {}, \"buckets\": [",
                        h.count(),
                        h.sum(),
                        h.max(),
                        h.quantile_bound(0.50),
                        h.quantile_bound(0.99),
                    ));
                    for (j, (bound, count)) in h.sparse().iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("[{bound},{count}]"));
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_histogram_buckets_and_bounds() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 64);
        assert_eq!(LogHistogram::bucket_bound(0), 0);
        assert_eq!(LogHistogram::bucket_bound(2), 3);
        assert_eq!(LogHistogram::bucket_bound(64), u64::MAX);
        // Every value lands in a bucket whose bound is >= the value.
        for v in [0u64, 1, 7, 8, 1000, 1 << 40, u64::MAX] {
            assert!(LogHistogram::bucket_bound(LogHistogram::bucket_of(v)) >= v);
        }
    }

    #[test]
    fn log_histogram_merge_is_exact() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        for v in [1u64, 5, 100, 1 << 20] {
            a.record(v);
        }
        for v in [0u64, 3, 100, u64::MAX] {
            b.record(v);
        }
        let merged = LogHistogram::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.count(), a.count() + b.count());
        assert_eq!(merged.sum(), a.sum().wrapping_add(b.sum()));
        assert_eq!(merged.max(), u64::MAX);
        // Bucket-wise: merged sparse = element-wise sum of the inputs.
        let mut expect: BTreeMap<u64, u64> = BTreeMap::new();
        for (bound, count) in a.sparse().into_iter().chain(b.sparse()) {
            *expect.entry(bound).or_default() += count;
        }
        assert_eq!(merged.sparse(), expect.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn quantile_bounds_are_monotone_and_cover() {
        let h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile_bound(0.5);
        let p99 = h.quantile_bound(0.99);
        assert!(p50 <= p99);
        assert!((250..=1000).contains(&p50), "within a factor of two");
        assert!(p99 <= h.max());
        assert_eq!(h.quantile_bound(1.0), h.max());
        assert_eq!(LogHistogram::new().quantile_bound(0.5), 0);
    }

    #[test]
    fn registry_is_idempotent_and_deterministic() {
        let r = Registry::new();
        r.counter("b.count", TimeDomain::Sim).add(2);
        r.counter("b.count", TimeDomain::Sim).add(3);
        r.gauge("a.gauge", TimeDomain::Wall).set(-7);
        r.histogram("c.hist", TimeDomain::Wall).record(9);
        assert_eq!(r.counter("b.count", TimeDomain::Sim).get(), 5);
        let json = r.render_json();
        // Name order, not insertion order.
        let a = json.find("a.gauge").unwrap();
        let b = json.find("b.count").unwrap();
        let c = json.find("c.hist").unwrap();
        assert!(a < b && b < c, "snapshot must render in name order");
        assert_eq!(json, r.render_json());
    }

    #[test]
    #[should_panic(expected = "time domains")]
    fn cross_domain_reregistration_panics() {
        let r = Registry::new();
        r.counter("x", TimeDomain::Wall);
        r.counter("x", TimeDomain::Sim);
    }
}
