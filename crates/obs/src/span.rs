//! RAII span guards: wall-clock intervals recorded as Chrome `X` (complete)
//! events when the guard drops.
//!
//! Nesting needs no explicit bookkeeping: a child guard created inside a
//! parent's lifetime drops first, so on any one lane the recorded intervals
//! nest properly by construction and Perfetto reconstructs the stack from
//! the containment. [`nesting_depth`] computes the same stacking offline —
//! the profiler tests use it to pin the invariant.

use crate::trace::{ArgValue, TraceEvent, TraceSink};
use std::sync::Arc;

/// An open span; records a complete event into its sink on drop. A disabled
/// span (from [`Span::disabled`], or an [`Observer`](crate::Observer) with
/// no sink) costs one branch on drop and reads no clock.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    sink: Arc<TraceSink>,
    lane: u64,
    name: &'static str,
    cat: &'static str,
    start_nanos: u64,
    args: Vec<(&'static str, ArgValue)>,
}

impl Span {
    /// Opens a span on `lane` of `sink`, starting now.
    pub fn enter(sink: Arc<TraceSink>, lane: u64, name: &'static str, cat: &'static str) -> Span {
        let start_nanos = sink.now_nanos();
        Span {
            inner: Some(SpanInner {
                sink,
                lane,
                name,
                cat,
                start_nanos,
                args: Vec::new(),
            }),
        }
    }

    /// The no-op span.
    pub fn disabled() -> Span {
        Span { inner: None }
    }

    /// True when this span records into a sink.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches an integer argument (no-op when disabled).
    pub fn arg_u64(&mut self, key: &'static str, value: u64) {
        if let Some(inner) = &mut self.inner {
            inner.args.push((key, ArgValue::U64(value)));
        }
    }

    /// Attaches a float argument (no-op when disabled).
    pub fn arg_f64(&mut self, key: &'static str, value: f64) {
        if let Some(inner) = &mut self.inner {
            inner.args.push((key, ArgValue::F64(value)));
        }
    }

    /// Attaches a string argument (no-op when disabled).
    pub fn arg_str(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(inner) = &mut self.inner {
            inner.args.push((key, ArgValue::Str(value.into())));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let end = inner.sink.now_nanos();
            inner.sink.record(TraceEvent {
                name: inner.name,
                cat: inner.cat,
                phase: 'X',
                ts_nanos: inner.start_nanos,
                dur_nanos: end.saturating_sub(inner.start_nanos),
                lane: inner.lane,
                args: inner.args,
            });
        }
    }
}

/// The nesting depth of each complete (`X`) event on `lane`: how many other
/// complete events on the same lane strictly contain it. Perfetto's stacking
/// is this computation; tests use it to pin that guard drop order produces
/// well-nested (never partially overlapping) intervals.
pub fn nesting_depth(events: &[TraceEvent], lane: u64) -> Vec<(&'static str, usize)> {
    let spans: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.phase == 'X' && e.lane == lane)
        .collect();
    spans
        .iter()
        .map(|e| {
            let (start, end) = (e.ts_nanos, e.ts_nanos + e.dur_nanos);
            let depth = spans
                .iter()
                .filter(|other| {
                    let (os, oe) = (other.ts_nanos, other.ts_nanos + other.dur_nanos);
                    // Strict containment; ties broken by duration so a
                    // zero-width child at its parent's edge still counts.
                    (os < start && end <= oe) || (os <= start && end < oe)
                })
                .count();
            (e.name, depth)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_by_guard_drop_order() {
        let sink = Arc::new(TraceSink::new());
        {
            let mut outer = Span::enter(sink.clone(), 1, "outer", "test");
            outer.arg_u64("round", 1);
            {
                let _mid = Span::enter(sink.clone(), 1, "mid", "test");
                std::thread::sleep(std::time::Duration::from_millis(1));
                let _inner = Span::enter(sink.clone(), 1, "inner", "test");
            }
            // A sibling after `mid` closed: same depth as `mid`.
            let _sibling = Span::enter(sink.clone(), 1, "sibling", "test");
        }
        let events = sink.events();
        assert_eq!(events.len(), 4);
        let mut depths = nesting_depth(&events, 1);
        depths.sort();
        assert_eq!(
            depths,
            vec![("inner", 2), ("mid", 1), ("outer", 0), ("sibling", 1)]
        );
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let mut span = Span::disabled();
        assert!(!span.is_enabled());
        span.arg_u64("ignored", 1);
        drop(span);
        // Nothing to assert against a sink — the guard held none.
    }
}
