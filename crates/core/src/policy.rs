//! Control policies.
//!
//! A policy tells the Closed Ring Control what to optimise for. Each policy
//! maps to a set of price weights and a set of thresholds used by the
//! decision engine in [`crate::controller`].

use crate::price::PriceWeights;
use rackfabric_sim::units::Power;
use serde::{Deserialize, Serialize};

/// What the Closed Ring Control optimises for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CrcPolicy {
    /// Minimise end-to-end latency; power is spent freely within the budget.
    LatencyMinimize,
    /// Keep the interconnect under a hard power cap, shedding lanes when idle.
    PowerCap {
        /// The interconnect power budget.
        budget: Power,
    },
    /// Balance congestion across links (load balancing through prices).
    CongestionBalance,
    /// The paper's default: latency first, under the rack's power budget.
    Hybrid {
        /// The interconnect power budget.
        budget: Power,
    },
}

impl Default for CrcPolicy {
    fn default() -> Self {
        CrcPolicy::Hybrid {
            budget: Power::from_kilowatts(2),
        }
    }
}

/// Thresholds a policy exposes to the decision engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyThresholds {
    /// Price weights used when building the price book.
    pub weights: PriceWeights,
    /// A link above this utilization is considered congested and a candidate
    /// for widening (more lanes) or unloading (reroute/bypass).
    pub congestion_high: f64,
    /// A link below this utilization for a whole epoch is a candidate for
    /// lane shedding.
    pub utilization_low: f64,
    /// Interconnect power budget, if the policy enforces one.
    pub power_budget: Option<Power>,
    /// Mean utilization above which a whole-fabric topology reconfiguration
    /// (e.g. grid to torus) is considered.
    pub topology_reconfig_mean_utilization: f64,
}

impl CrcPolicy {
    /// The thresholds this policy implies.
    pub fn thresholds(&self) -> PolicyThresholds {
        match *self {
            CrcPolicy::LatencyMinimize => PolicyThresholds {
                weights: PriceWeights::latency_only(),
                congestion_high: 0.6,
                utilization_low: 0.02,
                power_budget: None,
                topology_reconfig_mean_utilization: 0.45,
            },
            CrcPolicy::PowerCap { budget } => PolicyThresholds {
                weights: PriceWeights::power_aware(),
                congestion_high: 0.85,
                utilization_low: 0.15,
                power_budget: Some(budget),
                topology_reconfig_mean_utilization: 0.7,
            },
            CrcPolicy::CongestionBalance => PolicyThresholds {
                weights: PriceWeights::default(),
                congestion_high: 0.5,
                utilization_low: 0.05,
                power_budget: None,
                topology_reconfig_mean_utilization: 0.5,
            },
            CrcPolicy::Hybrid { budget } => PolicyThresholds {
                weights: PriceWeights::default(),
                congestion_high: 0.7,
                utilization_low: 0.1,
                power_budget: Some(budget),
                topology_reconfig_mean_utilization: 0.55,
            },
        }
    }

    /// Short name for experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            CrcPolicy::LatencyMinimize => "latency_minimize",
            CrcPolicy::PowerCap { .. } => "power_cap",
            CrcPolicy::CongestionBalance => "congestion_balance",
            CrcPolicy::Hybrid { .. } => "hybrid",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_policy_produces_consistent_thresholds() {
        let policies = [
            CrcPolicy::LatencyMinimize,
            CrcPolicy::PowerCap {
                budget: Power::from_kilowatts(1),
            },
            CrcPolicy::CongestionBalance,
            CrcPolicy::Hybrid {
                budget: Power::from_kilowatts(2),
            },
        ];
        for p in policies {
            let t = p.thresholds();
            assert!(t.congestion_high > t.utilization_low, "{}", p.name());
            assert!((0.0..=1.0).contains(&t.congestion_high));
            assert!((0.0..=1.0).contains(&t.topology_reconfig_mean_utilization));
        }
    }

    #[test]
    fn power_policies_carry_their_budget() {
        let p = CrcPolicy::PowerCap {
            budget: Power::from_watts(500),
        };
        assert_eq!(p.thresholds().power_budget, Some(Power::from_watts(500)));
        assert_eq!(CrcPolicy::LatencyMinimize.thresholds().power_budget, None);
    }

    #[test]
    fn latency_policy_ignores_power_in_prices() {
        let t = CrcPolicy::LatencyMinimize.thresholds();
        assert_eq!(t.weights.power, 0.0);
        let h = CrcPolicy::default().thresholds();
        assert!(h.weights.power > 0.0);
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<&str> = [
            CrcPolicy::LatencyMinimize.name(),
            CrcPolicy::PowerCap {
                budget: Power::ZERO,
            }
            .name(),
            CrcPolicy::CongestionBalance.name(),
            CrcPolicy::default().name(),
        ]
        .into_iter()
        .collect();
        assert_eq!(names.len(), 4);
    }
}
