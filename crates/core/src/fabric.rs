//! The adaptive fabric simulation: PLP + CRC + switching + workload, wired
//! into one discrete-event model.
//!
//! [`AdaptiveFabric`] implements [`Model`] for the DES engine. It owns the
//! physical state (links, lanes, bypasses), the topology graph, one egress
//! queue per directed link use, the per-node NICs, the workload's flows, and
//! — when `adaptive` is enabled — a [`ClosedRingControl`] that runs every
//! control epoch. With `adaptive` disabled the very same model is the static
//! packet-switched baseline the paper compares against.

use crate::controller::{ClosedRingControl, CrcConfig};
use crate::metrics::FabricMetrics;
use crate::price::PriceBook;
use crate::reconfigure;
use rackfabric_phy::{PhyState, PlpExecutor, PlpTiming};
use rackfabric_sim::config::SimConfig;
use rackfabric_sim::event::{Context, Model};
use rackfabric_sim::time::{SimDuration, SimTime};
use rackfabric_sim::units::{BitRate, Bytes};
use rackfabric_switch::model::SwitchModel;
use rackfabric_switch::nic::Nic;
use rackfabric_switch::packet::{FlowId, Packet, PacketId};
use rackfabric_switch::queue::{EgressQueue, EnqueueOutcome};
use rackfabric_topo::routing::{self, Route, RoutingAlgorithm};
use rackfabric_topo::spec::TopologySpec;
use rackfabric_topo::{NodeId, Topology};
use rackfabric_workload::Flow;
use std::collections::HashMap;

/// Configuration of a fabric run.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Engine-level configuration (seed, horizon).
    pub sim: SimConfig,
    /// The topology the rack starts in.
    pub spec: TopologySpec,
    /// A topology the CRC may escalate to under sustained congestion (the
    /// paper's grid-to-torus move). `None` disables topology escalation.
    pub upgrade_spec: Option<TopologySpec>,
    /// Per-lane signalling rate.
    pub lane_rate: BitRate,
    /// The switch datapath model used at every node.
    pub switch: SwitchModel,
    /// Routing algorithm used when admitting flows.
    pub routing: RoutingAlgorithm,
    /// Whether the Closed Ring Control is active (false = static baseline).
    pub adaptive: bool,
    /// CRC configuration (policy, epoch, price normalisation).
    pub crc: CrcConfig,
    /// Reconfiguration latency table for the PLP executor.
    pub plp_timing: PlpTiming,
    /// Egress buffer per port.
    pub port_buffer: Bytes,
    /// Packetisation size.
    pub mtu: Bytes,
    /// How long to wait before re-injecting after a drop.
    pub retry_delay: SimDuration,
    /// Stop the simulation as soon as every flow completes.
    pub stop_when_done: bool,
}

impl FabricConfig {
    /// An adaptive fabric over `spec` with the default CRC (hybrid policy).
    pub fn adaptive(spec: TopologySpec) -> Self {
        FabricConfig {
            sim: SimConfig::default(),
            spec,
            upgrade_spec: None,
            lane_rate: BitRate::from_gbps(25),
            switch: SwitchModel::cut_through(),
            routing: RoutingAlgorithm::MinCost,
            adaptive: true,
            crc: CrcConfig::default(),
            plp_timing: PlpTiming::default(),
            port_buffer: Bytes::from_kib(256),
            mtu: Bytes::new(1500),
            retry_delay: SimDuration::from_micros(10),
            stop_when_done: true,
        }
    }

    /// The static packet-switched baseline over the same topology: no CRC, no
    /// PLP commands, shortest-hop routing.
    pub fn baseline(spec: TopologySpec) -> Self {
        FabricConfig {
            adaptive: false,
            routing: RoutingAlgorithm::ShortestHop,
            ..FabricConfig::adaptive(spec)
        }
    }
}

/// Per-flow progress.
#[derive(Debug, Clone, Default)]
struct FlowProgress {
    injected: u64,
    delivered: u64,
    completed: bool,
}

/// Events driving the fabric model.
#[derive(Debug, Clone)]
pub enum FabricEvent {
    /// A workload flow becomes ready to send.
    FlowStart(usize),
    /// Inject the next packet of a flow at its source.
    InjectNext(usize),
    /// A packet finishes arriving at a node.
    HopArrive {
        /// The packet (carries its accumulated latency breakdown).
        packet: Packet,
        /// The route the packet is following.
        route: Route,
    },
    /// One Closed Ring Control epoch.
    CrcEpoch,
    /// A set of links finishes reconfiguring (informational; availability is
    /// tracked by timestamps).
    PlpComplete,
}

/// The fabric simulation model.
pub struct AdaptiveFabric {
    /// Run configuration.
    pub config: FabricConfig,
    /// The physical interconnect state.
    pub phy: PhyState,
    /// The topology graph.
    pub topo: Topology,
    /// The spec the fabric currently matches.
    pub current_spec: TopologySpec,
    /// Per-node NICs (counters).
    pub nics: Vec<Nic>,
    /// Collected metrics.
    pub metrics: FabricMetrics,
    crc: ClosedRingControl,
    executor: PlpExecutor,
    flows: Vec<Flow>,
    progress: Vec<FlowProgress>,
    queues: HashMap<(u32, rackfabric_phy::LinkId), EgressQueue>,
    bytes_this_epoch: HashMap<rackfabric_phy::LinkId, u64>,
    reconfiguring_until: HashMap<rackfabric_phy::LinkId, SimTime>,
    price_book: PriceBook,
    epoch_start: SimTime,
    completed_flows: usize,
    next_packet_seq: u64,
    topology_upgraded: bool,
}

impl AdaptiveFabric {
    /// Builds the fabric and registers the workload's flows.
    pub fn new(config: FabricConfig, flows: Vec<Flow>) -> Self {
        let mut phy = PhyState::new();
        let topo = config.spec.instantiate(&mut phy, config.lane_rate);
        let nics = (0..config.spec.nodes as u32)
            .map(|n| Nic::new(NodeId(n), config.port_buffer))
            .collect();
        let progress = vec![FlowProgress::default(); flows.len()];
        let crc = ClosedRingControl::new(config.crc);
        let executor = PlpExecutor::new(config.plp_timing);
        AdaptiveFabric {
            current_spec: config.spec.clone(),
            config,
            phy,
            topo,
            nics,
            metrics: FabricMetrics::default(),
            crc,
            executor,
            flows,
            progress,
            queues: HashMap::new(),
            bytes_this_epoch: HashMap::new(),
            reconfiguring_until: HashMap::new(),
            price_book: PriceBook::default(),
            epoch_start: SimTime::ZERO,
            completed_flows: 0,
            next_packet_seq: 0,
            topology_upgraded: false,
        }
    }

    /// The flows registered with the fabric.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// True once every registered flow has delivered all of its bytes.
    pub fn all_flows_complete(&self) -> bool {
        self.completed_flows == self.flows.len()
    }

    fn link_available(&self, link: rackfabric_phy::LinkId, now: SimTime) -> bool {
        if let Some(&until) = self.reconfiguring_until.get(&link) {
            if now < until {
                return false;
            }
        }
        self.phy
            .link(link)
            .map(|l| {
                matches!(l.state, rackfabric_phy::LinkState::Up) && l.capacity() > BitRate::ZERO
            })
            .unwrap_or(false)
    }

    fn compute_route(&self, src: NodeId, dst: NodeId, flow_seq: u64) -> Option<Route> {
        match self.config.routing {
            RoutingAlgorithm::ShortestHop => routing::shortest_path(&self.topo, src, dst),
            RoutingAlgorithm::MinCost => {
                let costs = self.price_book.as_cost_map();
                routing::dijkstra(&self.topo, src, dst, &costs, 1.0)
            }
            RoutingAlgorithm::Ecmp => routing::ecmp_select(&self.topo, src, dst, flow_seq),
            RoutingAlgorithm::DimensionOrdered => {
                routing::dimension_ordered(&self.current_spec, &self.topo, src, dst)
                    .or_else(|| routing::shortest_path(&self.topo, src, dst))
            }
        }
    }

    /// Offers a packet to the egress queue of `(from, link)`; returns the
    /// instants at which it departs, or `None` when the packet is dropped.
    fn enqueue_on_link(
        &mut self,
        from: NodeId,
        link_id: rackfabric_phy::LinkId,
        size: Bytes,
        now: SimTime,
    ) -> Option<(SimDuration, SimDuration, SimTime)> {
        if !self.link_available(link_id, now) {
            return None;
        }
        let capacity = self.phy.link(link_id)?.capacity();
        let queue = self
            .queues
            .entry((from.as_u32(), link_id))
            .or_insert_with(|| EgressQueue::new(self.config.port_buffer));
        match queue.enqueue(now, size, capacity) {
            EnqueueOutcome::Accepted {
                queueing,
                serialization,
                departs_at,
                ..
            } => {
                *self.bytes_this_epoch.entry(link_id).or_insert(0) += size.as_u64();
                if let Some(l) = self.phy.link_mut(link_id) {
                    l.record_traffic(now, size.as_u64());
                }
                Some((queueing, serialization, departs_at))
            }
            EnqueueOutcome::Dropped => None,
        }
    }

    /// Handles a dropped packet: the bytes will be re-sent by the source.
    fn handle_drop(&mut self, ctx: &mut Context<FabricEvent>, flow_idx: usize, size: Bytes) {
        self.metrics.dropped_packets.incr();
        let p = &mut self.progress[flow_idx];
        p.injected = p.injected.saturating_sub(size.as_u64());
        ctx.schedule_in(self.config.retry_delay, FabricEvent::InjectNext(flow_idx));
    }

    fn inject_next(&mut self, ctx: &mut Context<FabricEvent>, flow_idx: usize) {
        let flow = self.flows[flow_idx];
        let remaining = flow
            .size
            .as_u64()
            .saturating_sub(self.progress[flow_idx].injected);
        if remaining == 0 || self.progress[flow_idx].completed {
            return;
        }
        let size = Bytes::new(remaining.min(self.config.mtu.as_u64()));
        let now = ctx.now();

        let Some(route) = self.compute_route(flow.src, flow.dst, flow.id.0) else {
            // No usable path right now (mid-reconfiguration); retry later.
            ctx.schedule_in(self.config.retry_delay, FabricEvent::InjectNext(flow_idx));
            return;
        };
        if route.hops() == 0 {
            // Degenerate self-flow: deliver immediately.
            self.progress[flow_idx].injected += size.as_u64();
            self.progress[flow_idx].delivered += size.as_u64();
            self.check_flow_completion(ctx, flow_idx);
            ctx.schedule_now(FabricEvent::InjectNext(flow_idx));
            return;
        }

        let first_link = route.links[0];
        self.progress[flow_idx].injected += size.as_u64();
        match self.enqueue_on_link(flow.src, first_link, size, now) {
            None => self.handle_drop(ctx, flow_idx, size),
            Some((queueing, serialization, departs_at)) => {
                self.next_packet_seq += 1;
                let mut packet = Packet::new(
                    PacketId(self.next_packet_seq),
                    FlowId(flow_idx as u64),
                    flow.src,
                    flow.dst,
                    size,
                    now,
                );
                packet.breakdown.queueing += queueing;
                packet.breakdown.serialization += serialization;
                let link = self.phy.link(first_link).expect("available link exists");
                packet.breakdown.propagation += link.propagation_delay();
                packet.breakdown.fec += link.fec_latency();
                let arrive_at = departs_at + link.propagation_delay() + link.fec_latency();
                packet.hop_index = 1;
                ctx.schedule_at(arrive_at, FabricEvent::HopArrive { packet, route });
                // Pipeline the next packet right behind this one.
                ctx.schedule_at(departs_at, FabricEvent::InjectNext(flow_idx));
            }
        }
    }

    fn hop_arrive(&mut self, ctx: &mut Context<FabricEvent>, mut packet: Packet, route: Route) {
        let now = ctx.now();
        let at_node = route.nodes[packet.hop_index];
        let flow_idx = packet.flow.0 as usize;

        if at_node == packet.dst {
            // Delivered.
            self.nics[at_node.index()].deliver(&packet);
            self.metrics.delivered_packets.incr();
            self.metrics.delivered_bytes += packet.size.as_u64();
            self.metrics
                .packet_latency
                .record_duration(packet.latency_at(now));
            self.metrics
                .queueing_latency
                .record_duration(packet.breakdown.queueing);
            self.metrics.breakdown.accumulate(&packet.breakdown);
            self.progress[flow_idx].delivered += packet.size.as_u64();
            self.check_flow_completion(ctx, flow_idx);
            return;
        }

        // Forward to the next hop.
        let in_link = route.links[packet.hop_index - 1];
        let out_link = route.links[packet.hop_index];

        // PLP #2: a bypass at this node short-circuits the switching logic.
        let bypass = self
            .phy
            .bypasses
            .lookup(at_node.as_u32(), in_link)
            .copied()
            .filter(|b| b.out_link == out_link);
        if let Some(bypass) = bypass {
            if self.link_available(out_link, now) {
                let link = self.phy.link(out_link).expect("available link exists");
                packet.breakdown.bypass += bypass.latency;
                packet.breakdown.propagation += link.propagation_delay();
                packet.breakdown.fec += link.fec_latency();
                packet.breakdown.bypassed_hops += 1;
                *self.bytes_this_epoch.entry(out_link).or_insert(0) += packet.size.as_u64();
                let arrive_at =
                    now + bypass.latency + link.propagation_delay() + link.fec_latency();
                packet.hop_index += 1;
                ctx.schedule_at(arrive_at, FabricEvent::HopArrive { packet, route });
                return;
            }
        }

        // Normal switched forwarding.
        let Some(out) = self.phy.link(out_link) else {
            // The route's link disappeared in a reconfiguration; resend.
            self.handle_drop(ctx, flow_idx, packet.size);
            return;
        };
        let switch_latency = self.config.switch.traversal_latency(packet.size, out);
        let ready_at = now + switch_latency;
        match self.enqueue_on_link(at_node, out_link, packet.size, ready_at) {
            None => self.handle_drop(ctx, flow_idx, packet.size),
            Some((queueing, _serialization, departs_at)) => {
                packet.breakdown.switching += switch_latency;
                packet.breakdown.switch_hops += 1;
                packet.breakdown.queueing += queueing;
                let link = self.phy.link(out_link).expect("just used");
                packet.breakdown.propagation += link.propagation_delay();
                packet.breakdown.fec += link.fec_latency();
                let arrive_at = departs_at + link.propagation_delay() + link.fec_latency();
                packet.hop_index += 1;
                ctx.schedule_at(arrive_at, FabricEvent::HopArrive { packet, route });
            }
        }
    }

    fn check_flow_completion(&mut self, ctx: &mut Context<FabricEvent>, flow_idx: usize) {
        let flow = self.flows[flow_idx];
        let p = &mut self.progress[flow_idx];
        if !p.completed && p.delivered >= flow.size.as_u64() {
            p.completed = true;
            self.completed_flows += 1;
            let fct = ctx.now().saturating_since(flow.start_at);
            self.metrics.flow_completions.push((flow.id, fct));
            if self.completed_flows == self.flows.len() {
                self.metrics.job_completion = Some(ctx.now());
                if self.config.stop_when_done {
                    ctx.stop();
                }
            }
        }
    }

    fn crc_epoch(&mut self, ctx: &mut Context<FabricEvent>) {
        let now = ctx.now();
        let epoch = now.saturating_since(self.epoch_start);
        let epoch_s = epoch.as_secs_f64().max(1e-12);

        // Assemble per-link utilization / occupancy / throughput.
        let mut utilization = HashMap::new();
        let mut throughput = HashMap::new();
        let mut queue_bytes: HashMap<rackfabric_phy::LinkId, f64> = HashMap::new();
        for id in self.phy.link_ids() {
            let bytes = self.bytes_this_epoch.get(&id).copied().unwrap_or(0);
            let bps = bytes as f64 * 8.0 / epoch_s;
            throughput.insert(id, BitRate::from_bps(bps as u64));
            let cap = self
                .phy
                .link(id)
                .map(|l| l.capacity())
                .unwrap_or(BitRate::ZERO);
            let util = if cap.is_zero() {
                0.0
            } else {
                bps / cap.as_bps() as f64
            };
            utilization.insert(id, util);
        }
        for ((_, link), q) in self.queues.iter_mut() {
            let occ = q.mean_occupancy(now);
            let entry = queue_bytes.entry(*link).or_insert(0.0);
            *entry = entry.max(occ);
        }

        let report = self
            .phy
            .telemetry_report(now, &utilization, &queue_bytes, &throughput);
        self.metrics
            .power_series
            .push_at(now, report.total_power.as_watts_f64());
        self.metrics
            .utilization_series
            .push_at(now, report.mean_utilization());
        let total_gbps: f64 = throughput.values().map(|r| r.as_gbps_f64()).sum();
        self.metrics.throughput_series.push_at(now, total_gbps);

        self.price_book = self.crc.price(&report);

        if self.config.adaptive {
            let decision = self.crc.decide(&report, &self.phy);
            for command in &decision.commands {
                match self.executor.execute(&mut self.phy, command) {
                    Ok(completion) => {
                        for link in &completion.affected {
                            let until = now + completion.duration;
                            let entry = self
                                .reconfiguring_until
                                .entry(*link)
                                .or_insert(SimTime::ZERO);
                            *entry = (*entry).max(until);
                        }
                        self.metrics
                            .reconfig_events
                            .push((now.as_micros_f64(), completion.command.clone()));
                    }
                    Err(_) => {
                        // A rejected command (e.g. a link went down between
                        // telemetry and actuation) is skipped; the next epoch
                        // will re-evaluate.
                    }
                }
            }
            if decision.escalate_topology && !self.topology_upgraded {
                if let Some(target) = self.config.upgrade_spec.clone() {
                    self.upgrade_topology(now, &target);
                }
            }
        }

        // Reset epoch accounting and reschedule.
        self.bytes_this_epoch.clear();
        self.epoch_start = now;
        ctx.schedule_in(self.config.crc.epoch, FabricEvent::CrcEpoch);
    }

    fn upgrade_topology(&mut self, now: SimTime, target: &TopologySpec) {
        match reconfigure::plan(&self.current_spec, target, &self.topo, &self.phy) {
            Ok(plan) if !plan.is_empty() => {
                if let Ok(duration) =
                    reconfigure::apply(&plan, &self.executor, &mut self.phy, &mut self.topo)
                {
                    // Traffic pauses on every link while the fabric
                    // re-trains (worst case, conservative).
                    for id in self.phy.link_ids() {
                        let entry = self.reconfiguring_until.entry(id).or_insert(SimTime::ZERO);
                        *entry = (*entry).max(now + duration);
                    }
                    self.current_spec = plan.target.clone();
                    self.topology_upgraded = true;
                    self.metrics.topology_reconfigurations += 1;
                    self.metrics
                        .reconfig_events
                        .push((now.as_micros_f64(), format!("topology->{}", target.name)));
                }
            }
            _ => {}
        }
    }
}

impl Model for AdaptiveFabric {
    type Event = FabricEvent;

    fn init(&mut self, ctx: &mut Context<FabricEvent>) {
        for (idx, flow) in self.flows.iter().enumerate() {
            ctx.schedule_at(flow.start_at, FabricEvent::FlowStart(idx));
        }
        ctx.schedule_in(self.config.crc.epoch, FabricEvent::CrcEpoch);
    }

    fn handle(&mut self, ctx: &mut Context<FabricEvent>, event: FabricEvent) {
        match event {
            FabricEvent::FlowStart(idx) | FabricEvent::InjectNext(idx) => {
                self.inject_next(ctx, idx)
            }
            FabricEvent::HopArrive { packet, route } => self.hop_arrive(ctx, packet, route),
            FabricEvent::CrcEpoch => self.crc_epoch(ctx),
            FabricEvent::PlpComplete => {}
        }
    }
}

/// Runs a fabric configuration against a workload and returns the model with
/// its collected metrics.
pub fn run_fabric(config: FabricConfig, flows: Vec<Flow>) -> AdaptiveFabric {
    let horizon = config.sim.horizon;
    let seed = config.sim.seed;
    let budget = config.sim.event_budget;
    let mut sim = rackfabric_sim::Simulator::new(AdaptiveFabric::new(config, flows), seed)
        .with_event_budget(budget);
    sim.run_until(horizon);
    sim.into_model()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rackfabric_sim::time::SimTime;
    use rackfabric_sim::DetRng;
    use rackfabric_workload::{MapReduceShuffle, Workload};

    fn small_shuffle(nodes: usize, partition: Bytes) -> Vec<Flow> {
        MapReduceShuffle::all_to_all(nodes, partition).generate(&mut DetRng::new(7))
    }

    fn quick_config(spec: TopologySpec) -> FabricConfig {
        let mut c = FabricConfig::adaptive(spec);
        c.sim = SimConfig::with_seed(1).horizon(SimTime::from_millis(50));
        c
    }

    #[test]
    fn single_flow_completes_with_sane_latency() {
        let spec = TopologySpec::line(4, 4);
        let mut config = quick_config(spec);
        config.adaptive = false;
        config.routing = RoutingAlgorithm::ShortestHop;
        let flows = vec![Flow {
            id: rackfabric_workload::WorkloadFlowId(0),
            src: NodeId(0),
            dst: NodeId(3),
            size: Bytes::from_kib(15),
            start_at: SimTime::ZERO,
        }];
        let fabric = run_fabric(config, flows);
        assert!(fabric.all_flows_complete());
        let s = fabric.metrics.summary();
        assert_eq!(s.completed_flows, 1);
        assert_eq!(s.delivered_bytes, 15 * 1024);
        assert_eq!(s.dropped_packets, 0);
        // Three switch hops... actually two intermediate switches (nodes 1, 2).
        assert!(s.packet_latency.p50 > 0.0);
        // Per-packet latency should be of order a few microseconds at most on
        // an idle 4-node line.
        assert!(
            s.packet_latency.max < 20_000_000.0,
            "p_max latency {} ps is implausibly high",
            s.packet_latency.max
        );
        assert!(fabric.metrics.breakdown.switch_hops > 0);
    }

    #[test]
    fn shuffle_completes_on_grid_baseline_and_adaptive() {
        let flows = small_shuffle(9, Bytes::from_kib(8));
        let baseline = {
            let mut c = FabricConfig::baseline(TopologySpec::grid(3, 3, 2));
            c.sim = SimConfig::with_seed(2).horizon(SimTime::from_millis(100));
            run_fabric(c, flows.clone())
        };
        let adaptive = {
            let mut c = quick_config(TopologySpec::grid(3, 3, 2));
            c.sim = SimConfig::with_seed(2).horizon(SimTime::from_millis(100));
            run_fabric(c, flows)
        };
        assert!(
            baseline.all_flows_complete(),
            "baseline must finish the shuffle"
        );
        assert!(
            adaptive.all_flows_complete(),
            "adaptive must finish the shuffle"
        );
        assert_eq!(baseline.metrics.summary().completed_flows, 72);
        assert_eq!(adaptive.metrics.summary().completed_flows, 72);
        // Both delivered the same volume.
        assert_eq!(
            baseline.metrics.delivered_bytes,
            adaptive.metrics.delivered_bytes
        );
    }

    #[test]
    fn runs_are_deterministic_for_the_same_seed() {
        let flows = small_shuffle(4, Bytes::from_kib(4));
        let run = |seed| {
            let mut c = quick_config(TopologySpec::grid(2, 2, 2));
            c.sim = SimConfig::with_seed(seed).horizon(SimTime::from_millis(50));
            let f = run_fabric(c, flows.clone());
            (
                f.metrics.summary().job_completion_us,
                f.metrics.delivered_bytes,
                f.metrics.summary().packet_latency.p99,
            )
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn self_flows_complete_trivially() {
        let spec = TopologySpec::line(2, 2);
        let config = quick_config(spec);
        let flows = vec![Flow {
            id: rackfabric_workload::WorkloadFlowId(0),
            src: NodeId(1),
            dst: NodeId(1),
            size: Bytes::from_kib(4),
            start_at: SimTime::ZERO,
        }];
        let fabric = run_fabric(config, flows);
        assert!(fabric.all_flows_complete());
    }

    #[test]
    fn adaptive_fabric_issues_plp_commands_under_idle_power_policy() {
        use crate::policy::CrcPolicy;
        use rackfabric_sim::units::Power;
        // An idle-ish fabric under a power-cap policy sheds lanes.
        let mut config = quick_config(TopologySpec::grid(3, 3, 4));
        config.crc.policy = CrcPolicy::PowerCap {
            budget: Power::from_kilowatts(10),
        };
        config.stop_when_done = false;
        config.sim = SimConfig::with_seed(3).horizon(SimTime::from_millis(2));
        let flows = vec![Flow {
            id: rackfabric_workload::WorkloadFlowId(0),
            src: NodeId(0),
            dst: NodeId(8),
            size: Bytes::from_kib(1),
            start_at: SimTime::ZERO,
        }];
        let fabric = run_fabric(config, flows);
        assert!(
            !fabric.metrics.reconfig_events.is_empty(),
            "the power-cap CRC should have shed lanes on idle links"
        );
        // Power must have gone down over the run.
        let first = fabric
            .metrics
            .power_series
            .points()
            .first()
            .map(|&(_, y)| y)
            .unwrap();
        let last = fabric.metrics.power_series.last_y().unwrap();
        assert!(
            last < first,
            "power should drop as lanes are shed ({first} -> {last})"
        );
    }

    #[test]
    fn congestion_escalates_grid_to_torus_when_upgrade_spec_is_given() {
        let flows = small_shuffle(16, Bytes::from_kib(64));
        let mut config = quick_config(TopologySpec::grid(4, 4, 2));
        config.upgrade_spec = Some(TopologySpec::torus(4, 4, 1));
        config.crc.epoch = SimDuration::from_micros(20);
        config.sim = SimConfig::with_seed(4).horizon(SimTime::from_millis(200));
        let fabric = run_fabric(config, flows);
        assert!(fabric.all_flows_complete(), "shuffle must finish");
        assert_eq!(
            fabric.metrics.topology_reconfigurations, 1,
            "sustained shuffle pressure should trigger exactly one grid->torus upgrade"
        );
        assert_eq!(fabric.current_spec.name, TopologySpec::torus(4, 4, 1).name);
        assert!(fabric.topo.diameter().unwrap() <= 4);
    }
}
