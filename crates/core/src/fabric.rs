//! The adaptive fabric simulation: PLP + CRC + switching + workload, wired
//! into one discrete-event model.
//!
//! [`AdaptiveFabric`] implements [`Model`] for the DES engine. It owns the
//! physical state (links, lanes, bypasses), the topology graph, one egress
//! queue per directed link use, the per-node NICs, the workload's flows, and
//! — when `adaptive` is enabled — a [`ClosedRingControl`] that runs every
//! control epoch. With `adaptive` disabled the very same model is the static
//! packet-switched baseline the paper compares against.
//!
//! ## Hot-path architecture
//!
//! The per-packet datapath does **zero hashing** and fires **one event per
//! link drain** rather than one per packet:
//!
//! * All per-link and per-port state (egress queues, epoch byte counters,
//!   reconfiguration fences, cached link capacities/latencies) lives in
//!   dense vectors indexed by [`LinkIdx`]/[`PortIdx`](rackfabric_topo::PortIdx),
//!   interned once per topology epoch by a [`LinkArena`]. The arena is
//!   rebuilt — and the dense state migrated by `LinkId` — only on
//!   whole-rack reconfigurations.
//! * Packets move in [`Train`]s: each injection admits a batch of
//!   back-to-back frames sized by the first link's rate window, and each hop
//!   forwards the whole batch with a single event. Per-packet latency stays
//!   exact (see [`Packet::arrived_at`](rackfabric_switch::packet::Packet)).
//! * Routes are served from an epoch-invalidated [`RouteCache`]; BFS or
//!   Dijkstra runs once per `(src, dst)` pair per epoch instead of once per
//!   packet.

use crate::controller::{ClosedRingControl, CrcConfig};
use crate::metrics::FabricMetrics;
use crate::price::PriceBook;
use crate::reconfigure;
use rackfabric_phy::{PhyState, PlpExecutor, PlpTiming};
use rackfabric_sim::config::SimConfig;
use rackfabric_sim::event::{Context, Model};
use rackfabric_sim::time::{SimDuration, SimTime};
use rackfabric_sim::units::{BitRate, Bytes};
use rackfabric_switch::model::SwitchModel;
use rackfabric_switch::nic::Nic;
use rackfabric_switch::packet::FlowId;
use rackfabric_switch::queue::EgressQueue;
use rackfabric_switch::train::{train_frames, Train};
use rackfabric_topo::arena::{LinkArena, LinkIdx};
use rackfabric_topo::cache::{InternedRoute, RouteCache};
use rackfabric_topo::routing::{self, Route, RoutingAlgorithm};
use rackfabric_topo::spec::TopologySpec;
use rackfabric_topo::{NodeId, Topology};
use rackfabric_workload::Flow;
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration of a fabric run.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Engine-level configuration (seed, horizon).
    pub sim: SimConfig,
    /// The topology the rack starts in.
    pub spec: TopologySpec,
    /// A topology the CRC may escalate to under sustained congestion (the
    /// paper's grid-to-torus move). `None` disables topology escalation.
    pub upgrade_spec: Option<TopologySpec>,
    /// Per-lane signalling rate.
    pub lane_rate: BitRate,
    /// The switch datapath model used at every node.
    pub switch: SwitchModel,
    /// Routing algorithm used when admitting flows.
    pub routing: RoutingAlgorithm,
    /// Whether the Closed Ring Control is active (false = static baseline).
    pub adaptive: bool,
    /// CRC configuration (policy, epoch, price normalisation).
    pub crc: CrcConfig,
    /// Reconfiguration latency table for the PLP executor.
    pub plp_timing: PlpTiming,
    /// Egress buffer per port.
    pub port_buffer: Bytes,
    /// Packetisation size.
    pub mtu: Bytes,
    /// How long to wait before re-injecting after a drop.
    pub retry_delay: SimDuration,
    /// The rate window that sizes packet trains: each drain event transmits
    /// up to `capacity × train_window` bytes of MTU frames back-to-back.
    /// Larger windows collapse more events per train; the default (1 µs) is
    /// a fraction of the port buffer at 100 Gb/s.
    pub train_window: SimDuration,
    /// Stop the simulation as soon as every flow completes.
    pub stop_when_done: bool,
}

impl FabricConfig {
    /// An adaptive fabric over `spec` with the default CRC (hybrid policy).
    pub fn adaptive(spec: TopologySpec) -> Self {
        FabricConfig {
            sim: SimConfig::default(),
            spec,
            upgrade_spec: None,
            lane_rate: BitRate::from_gbps(25),
            switch: SwitchModel::cut_through(),
            routing: RoutingAlgorithm::MinCost,
            adaptive: true,
            crc: CrcConfig::default(),
            plp_timing: PlpTiming::default(),
            port_buffer: Bytes::from_kib(256),
            mtu: Bytes::new(1500),
            retry_delay: SimDuration::from_micros(10),
            train_window: SimDuration::from_micros(1),
            stop_when_done: true,
        }
    }

    /// The static packet-switched baseline over the same topology: no CRC, no
    /// PLP commands, shortest-hop routing.
    pub fn baseline(spec: TopologySpec) -> Self {
        FabricConfig {
            adaptive: false,
            routing: RoutingAlgorithm::ShortestHop,
            ..FabricConfig::adaptive(spec)
        }
    }
}

/// Per-flow progress.
#[derive(Debug, Clone, Default)]
struct FlowProgress {
    injected: u64,
    delivered: u64,
    completed: bool,
    /// True while an `InjectNext` event for this flow is pending. Each flow
    /// keeps exactly **one** injector chain: without this, every drop-retry
    /// spawned an additional chain, and thousands of concurrent chains per
    /// flow re-probed full ports every retry interval (an event storm that
    /// multiplied drop counts ~100× under heavy shuffle).
    injector_armed: bool,
}

/// Cached per-link datapath constants, refreshed whenever the physical layer
/// changes (PLP commands, reconfigurations) — never consulted through a hash
/// map on the per-packet path. Shared with the sharded engine
/// ([`crate::shard`]), which broadcasts one copy per shard at sync points.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LinkHot {
    pub(crate) capacity: BitRate,
    pub(crate) propagation: SimDuration,
    pub(crate) fec: SimDuration,
    pub(crate) up: bool,
}

impl LinkHot {
    pub(crate) const DOWN: LinkHot = LinkHot {
        capacity: BitRate::ZERO,
        propagation: SimDuration::ZERO,
        fec: SimDuration::ZERO,
        up: false,
    };
}

/// Events driving the fabric model.
#[derive(Debug, Clone)]
pub enum FabricEvent {
    /// A workload flow becomes ready to send.
    FlowStart(usize),
    /// Inject the next packet train of a flow at its source.
    InjectNext(usize),
    /// A packet train finishes arriving at a node (timestamped at its last
    /// packet's arrival; earlier packets carry their own instants).
    TrainArrive {
        /// The train (packets plus shared route and hop cursor).
        train: Train,
    },
    /// One Closed Ring Control epoch.
    CrcEpoch,
    /// A set of links finishes reconfiguring (informational; availability is
    /// tracked by timestamps).
    PlpComplete,
}

/// The fabric simulation model.
pub struct AdaptiveFabric {
    /// Run configuration.
    pub config: FabricConfig,
    /// The physical interconnect state.
    pub phy: PhyState,
    /// The topology graph.
    pub topo: Topology,
    /// The spec the fabric currently matches.
    pub current_spec: TopologySpec,
    /// Per-node NICs (counters and packet-id allocation).
    pub nics: Vec<Nic>,
    /// Collected metrics.
    pub metrics: FabricMetrics,
    crc: ClosedRingControl,
    executor: PlpExecutor,
    flows: Vec<Flow>,
    progress: Vec<FlowProgress>,
    /// Dense link/port interning for the current topology epoch.
    arena: LinkArena,
    /// One egress queue per directed port, `PortIdx`-indexed.
    ports: Vec<EgressQueue>,
    /// Cached link constants, `LinkIdx`-indexed.
    link_hot: Vec<LinkHot>,
    /// Telemetry bytes per link this epoch (includes bypassed traffic).
    bytes_this_epoch: Vec<u64>,
    /// Switched wire bytes per link this epoch, flushed to lane statistics
    /// at epoch boundaries instead of per packet.
    wire_bytes_this_epoch: Vec<u64>,
    /// Per-link reconfiguration fences, `LinkIdx`-indexed.
    reconfiguring_until: Vec<SimTime>,
    route_cache: RouteCache,
    price_book: PriceBook,
    /// The price book lowered to a routing cost map, rebuilt once per price
    /// update instead of once per route-cache miss.
    cost_map: HashMap<rackfabric_phy::LinkId, f64>,
    /// Node-to-rack table of the current spec (dragonfly groups, torus
    /// rows), consumed by the rack-detour routing policies. Rebuilt with
    /// the dense state after whole-rack reconfigurations.
    racks: Vec<u32>,
    epoch_start: SimTime,
    completed_flows: usize,
    topology_upgraded: bool,
}

impl AdaptiveFabric {
    /// Builds the fabric and registers the workload's flows.
    pub fn new(config: FabricConfig, flows: Vec<Flow>) -> Self {
        let mut phy = PhyState::new();
        let topo = config.spec.instantiate(&mut phy, config.lane_rate);
        let nics = (0..config.spec.nodes as u32)
            .map(|n| Nic::new(NodeId(n), config.port_buffer))
            .collect();
        let progress = vec![FlowProgress::default(); flows.len()];
        let crc = ClosedRingControl::new(config.crc);
        let executor = PlpExecutor::new(config.plp_timing);
        let mut fabric = AdaptiveFabric {
            current_spec: config.spec.clone(),
            config,
            phy,
            topo,
            nics,
            metrics: FabricMetrics::default(),
            crc,
            executor,
            flows,
            progress,
            arena: LinkArena::default(),
            ports: Vec::new(),
            link_hot: Vec::new(),
            bytes_this_epoch: Vec::new(),
            wire_bytes_this_epoch: Vec::new(),
            reconfiguring_until: Vec::new(),
            route_cache: RouteCache::new(),
            price_book: PriceBook::default(),
            cost_map: HashMap::new(),
            racks: Vec::new(),
            epoch_start: SimTime::ZERO,
            completed_flows: 0,
            topology_upgraded: false,
        };
        fabric.rebuild_dense_state();
        fabric
    }

    /// The flows registered with the fabric.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// True once every registered flow has delivered all of its bytes.
    pub fn all_flows_complete(&self) -> bool {
        self.completed_flows == self.flows.len()
    }

    /// Route-cache hit/miss counters for this run so far.
    pub fn route_cache_stats(&self) -> rackfabric_topo::cache::RouteCacheStats {
        self.route_cache.stats()
    }

    /// (Re)interns the live links and migrates all dense per-link/per-port
    /// state into the new index space. Called at construction and after
    /// whole-rack reconfigurations; never on the per-packet path.
    fn rebuild_dense_state(&mut self) {
        let arena = LinkArena::build(&self.topo);
        let links = arena.len();
        let mut ports: Vec<EgressQueue> = (0..arena.port_count())
            .map(|_| EgressQueue::new(self.config.port_buffer))
            .collect();
        let mut bytes = vec![0u64; links];
        let mut wire = vec![0u64; links];
        let mut fences = vec![SimTime::ZERO; links];
        for (idx, id) in arena.iter() {
            if let Some(old) = self.arena.index(id) {
                bytes[idx.index()] = self.bytes_this_epoch[old.index()];
                wire[idx.index()] = self.wire_bytes_this_epoch[old.index()];
                fences[idx.index()] = self.reconfiguring_until[old.index()];
                // Endpoint sides are canonical (min, max), so port parity is
                // stable for a surviving link id.
                for side in 0..2 {
                    ports[idx.index() * 2 + side] = std::mem::replace(
                        &mut self.ports[old.index() * 2 + side],
                        EgressQueue::new(self.config.port_buffer),
                    );
                }
            }
        }
        self.arena = arena;
        self.ports = ports;
        self.bytes_this_epoch = bytes;
        self.wire_bytes_this_epoch = wire;
        self.reconfiguring_until = fences;
        self.racks = self.current_spec.rack_of();
        self.route_cache.bump_epoch();
        self.refresh_link_hot();
    }

    /// Re-reads capacity/propagation/FEC/liveness for every interned link.
    /// Called after anything that can change the physical layer.
    fn refresh_link_hot(&mut self) {
        self.link_hot.clear();
        self.link_hot.reserve(self.arena.len());
        for (_, id) in self.arena.iter() {
            let hot = match self.phy.link(id) {
                Some(l) => LinkHot {
                    capacity: l.capacity(),
                    propagation: l.propagation_delay(),
                    fec: l.fec_latency(),
                    up: matches!(l.state, rackfabric_phy::LinkState::Up),
                },
                None => LinkHot::DOWN,
            };
            self.link_hot.push(hot);
        }
    }

    /// True if the link exists, is administratively up and carries capacity.
    /// A live link may still be *fenced* (mid-reconfiguration); see
    /// [`Self::fence_lift`].
    #[inline]
    fn link_live(&self, link: LinkIdx) -> bool {
        let hot = &self.link_hot[link.index()];
        hot.up && !hot.capacity.is_zero()
    }

    /// The instant the link's reconfiguration fence lifts (`<= now` when the
    /// link is not retraining). Traffic *waits* for a fence — retraining
    /// pauses the fabric, it does not black-hole it — whereas a dead link
    /// drops.
    #[inline]
    fn fence_lift(&self, link: LinkIdx) -> SimTime {
        self.reconfiguring_until[link.index()]
    }

    /// Computes a route the slow way for the per-pair algorithms (a cache
    /// miss on ECMP or dimension-ordered routing; the single-path algorithms
    /// go through the tree branch of [`Self::cached_route`] instead).
    /// Associated function so the borrow of the route cache can coexist with
    /// the lookup state. Shared with the sharded engine's per-shard route
    /// caches.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn route_for(
        config: &FabricConfig,
        topo: &Topology,
        current_spec: &TopologySpec,
        racks: &[u32],
        cost_map: &HashMap<rackfabric_phy::LinkId, f64>,
        src: NodeId,
        dst: NodeId,
        flow_seq: u64,
    ) -> Option<Route> {
        match config.routing {
            RoutingAlgorithm::Ecmp => routing::ecmp_select(topo, src, dst, flow_seq),
            RoutingAlgorithm::Valiant => routing::valiant_route(topo, racks, src, dst, flow_seq),
            RoutingAlgorithm::Adaptive => {
                routing::adaptive_route(topo, racks, src, dst, flow_seq, cost_map, 1.0)
            }
            _ => routing::dimension_ordered(current_spec, topo, src, dst)
                .or_else(|| routing::shortest_path(topo, src, dst)),
        }
    }

    /// The interned route for `(src, dst)`, served from the epoch cache.
    ///
    /// A miss on the single-path algorithms (shortest hop, min cost) runs
    /// one whole single-source tree and pre-populates the cache for **every**
    /// destination of `src`, so one BFS/Dijkstra per source per epoch covers
    /// all-to-all traffic.
    fn cached_route(
        &mut self,
        src: NodeId,
        dst: NodeId,
        flow_seq: u64,
    ) -> Option<Arc<InternedRoute>> {
        let selector = if self.config.routing.per_flow() {
            flow_seq
        } else {
            0
        };
        let AdaptiveFabric {
            route_cache,
            arena,
            config,
            topo,
            current_spec,
            cost_map,
            racks,
            ..
        } = self;
        if let Some(cached) = route_cache.lookup(src, dst, selector) {
            return cached;
        }
        match config.routing {
            RoutingAlgorithm::ShortestHop | RoutingAlgorithm::MinCost => {
                let tree = match config.routing {
                    RoutingAlgorithm::ShortestHop => routing::shortest_path_tree(topo, src),
                    _ => routing::dijkstra_tree(topo, src, cost_map, 1.0),
                };
                let mut answer = None;
                for node in topo.nodes() {
                    let interned = routing::route_from_tree(src, node, &tree)
                        .and_then(|r| InternedRoute::intern(r, arena))
                        .map(Arc::new);
                    if node == dst {
                        answer = interned.clone();
                    }
                    route_cache.insert(src, node, selector, interned);
                }
                answer
            }
            _ => {
                let computed = Self::route_for(
                    config,
                    topo,
                    current_spec,
                    racks,
                    cost_map,
                    src,
                    dst,
                    flow_seq,
                )
                .and_then(|r| InternedRoute::intern(r, arena))
                .map(Arc::new);
                route_cache.insert(src, dst, selector, computed.clone());
                computed
            }
        }
    }

    /// Schedules the flow's injector wake-up at `at`, unless one is already
    /// pending (one injector chain per flow, see [`FlowProgress`]).
    fn arm_injector(&mut self, ctx: &mut Context<FabricEvent>, flow_idx: usize, at: SimTime) {
        if !self.progress[flow_idx].injector_armed {
            self.progress[flow_idx].injector_armed = true;
            ctx.schedule_at(at.max(ctx.now()), FabricEvent::InjectNext(flow_idx));
        }
    }

    /// Injects the next train of a flow at its source.
    fn inject_next(&mut self, ctx: &mut Context<FabricEvent>, flow_idx: usize) {
        // This call *is* the pending injector wake-up; the chain re-arms
        // below if there is more to send.
        self.progress[flow_idx].injector_armed = false;
        let flow = self.flows[flow_idx];
        let remaining = flow
            .size
            .as_u64()
            .saturating_sub(self.progress[flow_idx].injected);
        if remaining == 0 || self.progress[flow_idx].completed {
            return;
        }
        let now = ctx.now();
        let retry_at = now + self.config.retry_delay;

        let Some(route) = self.cached_route(flow.src, flow.dst, flow.id.0) else {
            // No usable path right now (mid-reconfiguration); retry later.
            self.arm_injector(ctx, flow_idx, retry_at);
            return;
        };
        if route.hops() == 0 {
            // Degenerate self-flow: no link rate bounds it, deliver all
            // remaining bytes at once.
            self.progress[flow_idx].injected += remaining;
            self.progress[flow_idx].delivered += remaining;
            self.check_flow_completion(ctx, flow_idx);
            return;
        }

        let first_link = route.links[0];
        if !self.link_live(first_link) {
            self.metrics.dropped_packets.incr();
            self.arm_injector(ctx, flow_idx, retry_at);
            return;
        }
        let fence = self.fence_lift(first_link);
        if now < fence {
            // The first hop is retraining: hold injection until it returns.
            self.arm_injector(ctx, flow_idx, fence);
            return;
        }
        let hot = self.link_hot[first_link.index()];

        // Size the train by the link's rate window.
        let mtu = self.config.mtu.as_u64();
        let budget = train_frames(hot.capacity, self.config.train_window, self.config.mtu);
        let frames = budget.min(remaining.div_ceil(mtu)).max(1);
        let mut sizes = Vec::with_capacity(frames as usize);
        let mut left = remaining;
        for _ in 0..frames {
            let size = left.min(mtu);
            sizes.push(Bytes::new(size));
            left -= size;
        }

        let mut packets =
            self.nics[flow.src.index()].build_train(now, FlowId(flow_idx as u64), flow.dst, &sizes);
        let port = self.arena.port(flow.src, first_link);
        let admission = self.ports[port.index()].enqueue_train(
            &mut packets,
            hot.capacity,
            hot.propagation,
            hot.fec,
            true,
        );
        self.nics[flow.src.index()].record_sent(admission.accepted as u64);

        let accepted_bytes: u64 = packets[..admission.accepted]
            .iter()
            .map(|p| p.size.as_u64())
            .sum();
        self.progress[flow_idx].injected += accepted_bytes;
        self.bytes_this_epoch[first_link.index()] += accepted_bytes;
        self.wire_bytes_this_epoch[first_link.index()] += accepted_bytes;

        if admission.dropped {
            self.metrics.dropped_packets.incr();
        }
        if admission.accepted > 0 {
            packets.truncate(admission.accepted);
            let train = Train {
                route,
                hop_index: 1,
                packets,
            };
            ctx.schedule_at(
                admission.last_arrives_at,
                FabricEvent::TrainArrive { train },
            );
            // Pipeline the next train right behind this one's last frame.
            self.arm_injector(ctx, flow_idx, admission.last_departs_at);
        } else {
            self.arm_injector(ctx, flow_idx, retry_at);
        }
    }

    /// Drops an in-flight train: the source re-sends its bytes after the
    /// retry delay (merged into the flow's single injector chain).
    fn drop_train(&mut self, ctx: &mut Context<FabricEvent>, flow_idx: usize, bytes: u64, n: u64) {
        self.metrics.dropped_packets.add(n);
        let p = &mut self.progress[flow_idx];
        p.injected = p.injected.saturating_sub(bytes);
        let retry_at = ctx.now() + self.config.retry_delay;
        self.arm_injector(ctx, flow_idx, retry_at);
    }

    /// Handles a train finishing arrival at its next node: final delivery or
    /// one batched forward.
    fn train_arrive(&mut self, ctx: &mut Context<FabricEvent>, mut train: Train) {
        let now = ctx.now();
        let at_node = train.route.route.nodes[train.hop_index];
        let flow_idx = train.packets[0].flow.0 as usize;

        if at_node == train.packets[0].dst {
            // Delivered: record per-packet metrics at each packet's own
            // analytic arrival instant.
            self.nics[at_node.index()].deliver_train(&train.packets);
            self.metrics
                .delivered_packets
                .add(train.packets.len() as u64);
            for packet in &train.packets {
                self.metrics.delivered_bytes += packet.size.as_u64();
                self.metrics
                    .packet_latency
                    .record_duration(packet.latency_at(packet.arrived_at));
                self.metrics
                    .queueing_latency
                    .record_duration(packet.breakdown.queueing);
                self.metrics.breakdown.accumulate(&packet.breakdown);
                self.progress[flow_idx].delivered += packet.size.as_u64();
            }
            self.check_flow_completion(ctx, flow_idx);
            return;
        }

        // Forward the whole train to the next hop.
        let in_link = train.route.links[train.hop_index - 1];
        let out_link = train.route.links[train.hop_index];
        let out_live = self.link_live(out_link);
        let fence = self.fence_lift(out_link);
        if out_live && now < fence {
            // The egress link is retraining: hold the train at this node and
            // wake when the fence lifts. Pausing (not dropping) is how the
            // paper models PLP retraining windows. Every packet's analytic
            // arrival moves to the fence; the wait is real latency and is
            // charged as queueing so breakdowns keep summing to end-to-end.
            for packet in &mut train.packets {
                packet.breakdown.queueing += fence.saturating_since(packet.arrived_at);
                packet.arrived_at = fence;
            }
            ctx.schedule_at(fence, FabricEvent::TrainArrive { train });
            return;
        }

        // PLP #2: a bypass at this node short-circuits the switching logic.
        let bypass = self
            .phy
            .bypasses
            .lookup(at_node.as_u32(), self.arena.link_id(in_link))
            .copied()
            .filter(|b| b.out_link == self.arena.link_id(out_link));
        if let Some(bypass) = bypass {
            if out_live {
                let hot = self.link_hot[out_link.index()];
                let mut last_arrive = now;
                for packet in &mut train.packets {
                    packet.breakdown.bypass += bypass.latency;
                    packet.breakdown.propagation += hot.propagation;
                    packet.breakdown.fec += hot.fec;
                    packet.breakdown.bypassed_hops += 1;
                    // Each frame re-times from its own arrival at this node.
                    packet.arrived_at =
                        packet.arrived_at + bypass.latency + hot.propagation + hot.fec;
                    last_arrive = last_arrive.max(packet.arrived_at);
                }
                self.bytes_this_epoch[out_link.index()] += train.bytes();
                train.hop_index += 1;
                ctx.schedule_at(last_arrive, FabricEvent::TrainArrive { train });
                return;
            }
        }

        // Normal switched forwarding.
        if !out_live {
            // The route's link disappeared in a reconfiguration; resend.
            let bytes = train.bytes();
            let n = train.packets.len() as u64;
            self.drop_train(ctx, flow_idx, bytes, n);
            return;
        }
        let hot = self.link_hot[out_link.index()];
        let switch = self.config.switch;
        for packet in &mut train.packets {
            let traversal = switch.traversal_latency_at(packet.size, hot.capacity);
            packet.breakdown.switching += traversal;
            packet.breakdown.switch_hops += 1;
            // Each frame becomes ready at the egress port a traversal after
            // its *own* arrival at this node, preserving the per-packet
            // pipelining across hops (the train event merely batches the
            // bookkeeping at the last frame's arrival).
            packet.arrived_at += traversal;
        }
        let port = self.arena.port(at_node, out_link);
        let admission = self.ports[port.index()].enqueue_train(
            &mut train.packets,
            hot.capacity,
            hot.propagation,
            hot.fec,
            false,
        );
        let accepted_bytes: u64 = train.packets[..admission.accepted]
            .iter()
            .map(|p| p.size.as_u64())
            .sum();
        self.bytes_this_epoch[out_link.index()] += accepted_bytes;
        self.wire_bytes_this_epoch[out_link.index()] += accepted_bytes;

        if admission.dropped {
            // Tail of the train overflowed the egress buffer: the first
            // overflow counts as a drop, the rest of the tail is re-sent.
            let tail = &train.packets[admission.accepted..];
            let tail_bytes: u64 = tail.iter().map(|p| p.size.as_u64()).sum();
            self.drop_train(ctx, flow_idx, tail_bytes, 1);
        }
        if admission.accepted > 0 {
            train.packets.truncate(admission.accepted);
            train.hop_index += 1;
            // The last accepted frame's arrival is at or after this event in
            // every reachable state; the clamp guards the engine's no-past-
            // scheduling invariant against pathological timing interleavings.
            ctx.schedule_at(
                admission.last_arrives_at.max(now),
                FabricEvent::TrainArrive { train },
            );
        }
    }

    fn check_flow_completion(&mut self, ctx: &mut Context<FabricEvent>, flow_idx: usize) {
        let flow = self.flows[flow_idx];
        let p = &mut self.progress[flow_idx];
        if !p.completed && p.delivered >= flow.size.as_u64() {
            p.completed = true;
            self.completed_flows += 1;
            let fct = ctx.now().saturating_since(flow.start_at);
            self.metrics.flow_completions.push((flow.id, fct));
            if self.completed_flows == self.flows.len() {
                self.metrics.job_completion = Some(ctx.now());
                if self.config.stop_when_done {
                    ctx.stop();
                }
            }
        }
    }

    /// Flushes the accumulated switched bytes into the per-lane statistics.
    /// Batched per epoch instead of per packet; totals are identical.
    fn flush_wire_bytes(&mut self, now: SimTime) {
        for (idx, id) in self.arena.iter() {
            let bytes = self.wire_bytes_this_epoch[idx.index()];
            if bytes > 0 {
                if let Some(l) = self.phy.link_mut(id) {
                    l.record_traffic(now, bytes);
                }
                self.wire_bytes_this_epoch[idx.index()] = 0;
            }
        }
    }

    fn crc_epoch(&mut self, ctx: &mut Context<FabricEvent>) {
        let now = ctx.now();
        let epoch = now.saturating_since(self.epoch_start);
        let epoch_s = epoch.as_secs_f64().max(1e-12);

        self.flush_wire_bytes(now);

        // Assemble per-link utilization / occupancy / throughput.
        let mut utilization = HashMap::new();
        let mut throughput = HashMap::new();
        let mut queue_bytes: HashMap<rackfabric_phy::LinkId, f64> = HashMap::new();
        for (idx, id) in self.arena.iter() {
            let bytes = self.bytes_this_epoch[idx.index()];
            let bps = bytes as f64 * 8.0 / epoch_s;
            throughput.insert(id, BitRate::from_bps(bps as u64));
            let cap = self.link_hot[idx.index()].capacity;
            let util = if cap.is_zero() {
                0.0
            } else {
                bps / cap.as_bps() as f64
            };
            utilization.insert(id, util);
        }
        for (port, q) in self.ports.iter_mut().enumerate() {
            let link = self.arena.link_id(LinkIdx(port as u32 / 2));
            let occ = q.mean_occupancy(now);
            let entry = queue_bytes.entry(link).or_insert(0.0);
            *entry = entry.max(occ);
        }

        let report = self
            .phy
            .telemetry_report(now, &utilization, &queue_bytes, &throughput);
        self.metrics
            .power_series
            .push_at(now, report.total_power.as_watts_f64());
        self.metrics
            .utilization_series
            .push_at(now, report.mean_utilization());
        let total_gbps: f64 = throughput.values().map(|r| r.as_gbps_f64()).sum();
        self.metrics.throughput_series.push_at(now, total_gbps);

        self.price_book = self.crc.price(&report);
        // Prices feed cost-aware routing (min-cost and the UGAL-style
        // adaptive policy); only then is the cost map needed, and stale
        // cached routes must not survive a price update.
        if self.config.routing.cost_aware() {
            self.cost_map = self.price_book.as_cost_map();
            self.route_cache.bump_epoch();
        }

        if self.config.adaptive {
            let decision = self.crc.decide(&report, &self.phy);
            let mut phy_changed = false;
            for command in &decision.commands {
                match self.executor.execute(&mut self.phy, command) {
                    Ok(completion) => {
                        phy_changed = true;
                        for link in &completion.affected {
                            if let Some(idx) = self.arena.index(*link) {
                                let until = now + completion.duration;
                                let fence = &mut self.reconfiguring_until[idx.index()];
                                *fence = (*fence).max(until);
                            }
                        }
                        self.metrics
                            .reconfig_events
                            .push((now.as_micros_f64(), completion.command.clone()));
                    }
                    Err(_) => {
                        // A rejected command (e.g. a link went down between
                        // telemetry and actuation) is skipped; the next epoch
                        // will re-evaluate.
                    }
                }
            }
            if phy_changed {
                self.refresh_link_hot();
            }
            if decision.escalate_topology && !self.topology_upgraded {
                if let Some(target) = self.config.upgrade_spec.clone() {
                    self.upgrade_topology(now, &target);
                }
            }
        }

        // Reset epoch accounting and reschedule.
        self.bytes_this_epoch.fill(0);
        self.epoch_start = now;
        ctx.schedule_in(self.config.crc.epoch, FabricEvent::CrcEpoch);
    }

    fn upgrade_topology(&mut self, now: SimTime, target: &TopologySpec) {
        match reconfigure::plan(&self.current_spec, target, &self.topo, &self.phy) {
            Ok(plan) if !plan.is_empty() => {
                if let Ok(duration) =
                    reconfigure::apply(&plan, &self.executor, &mut self.phy, &mut self.topo)
                {
                    self.current_spec = plan.target.clone();
                    self.topology_upgraded = true;
                    // The link set changed: re-intern and migrate the dense
                    // state (this also invalidates the route cache).
                    self.rebuild_dense_state();
                    // Traffic pauses on every link while the fabric
                    // re-trains (worst case, conservative).
                    let until = now + duration;
                    for fence in &mut self.reconfiguring_until {
                        *fence = (*fence).max(until);
                    }
                    self.metrics.topology_reconfigurations += 1;
                    self.metrics
                        .reconfig_events
                        .push((now.as_micros_f64(), format!("topology->{}", target.name)));
                }
            }
            _ => {}
        }
    }
}

impl Model for AdaptiveFabric {
    type Event = FabricEvent;

    fn init(&mut self, ctx: &mut Context<FabricEvent>) {
        // The scenario layer may have applied PLP commands (FEC, lane caps,
        // power states) between construction and the first event; re-read
        // the link constants so the datapath sees them.
        self.refresh_link_hot();
        for (idx, flow) in self.flows.iter().enumerate() {
            ctx.schedule_at(flow.start_at, FabricEvent::FlowStart(idx));
        }
        ctx.schedule_in(self.config.crc.epoch, FabricEvent::CrcEpoch);
    }

    fn handle(&mut self, ctx: &mut Context<FabricEvent>, event: FabricEvent) {
        match event {
            FabricEvent::FlowStart(idx) | FabricEvent::InjectNext(idx) => {
                self.inject_next(ctx, idx)
            }
            FabricEvent::TrainArrive { train } => self.train_arrive(ctx, train),
            FabricEvent::CrcEpoch => self.crc_epoch(ctx),
            FabricEvent::PlpComplete => {}
        }
    }

    fn finish(&mut self, ctx: &mut Context<FabricEvent>) {
        // Flush the tail of the epoch's lane statistics and publish the
        // route-cache counters into the metrics.
        self.flush_wire_bytes(ctx.now());
        let stats = self.route_cache.stats();
        self.metrics.route_cache_hits = stats.hits;
        self.metrics.route_cache_misses = stats.misses;
    }
}

/// Runs a fabric configuration against a workload and returns the model with
/// its collected metrics.
pub fn run_fabric(config: FabricConfig, flows: Vec<Flow>) -> AdaptiveFabric {
    let horizon = config.sim.horizon;
    let seed = config.sim.seed;
    let budget = config.sim.event_budget;
    let mut sim = rackfabric_sim::Simulator::new(AdaptiveFabric::new(config, flows), seed)
        .with_event_budget(budget);
    sim.run_until(horizon);
    sim.into_model()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rackfabric_sim::time::SimTime;
    use rackfabric_sim::DetRng;
    use rackfabric_workload::{MapReduceShuffle, Workload};

    fn small_shuffle(nodes: usize, partition: Bytes) -> Vec<Flow> {
        MapReduceShuffle::all_to_all(nodes, partition).generate(&mut DetRng::new(7))
    }

    fn quick_config(spec: TopologySpec) -> FabricConfig {
        let mut c = FabricConfig::adaptive(spec);
        c.sim = SimConfig::with_seed(1).horizon(SimTime::from_millis(50));
        c
    }

    #[test]
    fn single_flow_completes_with_sane_latency() {
        let spec = TopologySpec::line(4, 4);
        let mut config = quick_config(spec);
        config.adaptive = false;
        config.routing = RoutingAlgorithm::ShortestHop;
        let flows = vec![Flow {
            id: rackfabric_workload::WorkloadFlowId(0),
            src: NodeId(0),
            dst: NodeId(3),
            size: Bytes::from_kib(15),
            start_at: SimTime::ZERO,
        }];
        let fabric = run_fabric(config, flows);
        assert!(fabric.all_flows_complete());
        let s = fabric.metrics.summary();
        assert_eq!(s.completed_flows, 1);
        assert_eq!(s.delivered_bytes, 15 * 1024);
        assert_eq!(s.dropped_packets, 0);
        // Three switch hops... actually two intermediate switches (nodes 1, 2).
        assert!(s.packet_latency.p50 > 0.0);
        // Per-packet latency should be of order a few microseconds at most on
        // an idle 4-node line.
        assert!(
            s.packet_latency.max < 20_000_000.0,
            "p_max latency {} ps is implausibly high",
            s.packet_latency.max
        );
        assert!(fabric.metrics.breakdown.switch_hops > 0);
    }

    #[test]
    fn shuffle_completes_on_grid_baseline_and_adaptive() {
        let flows = small_shuffle(9, Bytes::from_kib(8));
        let baseline = {
            let mut c = FabricConfig::baseline(TopologySpec::grid(3, 3, 2));
            c.sim = SimConfig::with_seed(2).horizon(SimTime::from_millis(100));
            run_fabric(c, flows.clone())
        };
        let adaptive = {
            let mut c = quick_config(TopologySpec::grid(3, 3, 2));
            c.sim = SimConfig::with_seed(2).horizon(SimTime::from_millis(100));
            run_fabric(c, flows)
        };
        assert!(
            baseline.all_flows_complete(),
            "baseline must finish the shuffle"
        );
        assert!(
            adaptive.all_flows_complete(),
            "adaptive must finish the shuffle"
        );
        assert_eq!(baseline.metrics.summary().completed_flows, 72);
        assert_eq!(adaptive.metrics.summary().completed_flows, 72);
        // Both delivered the same volume.
        assert_eq!(
            baseline.metrics.delivered_bytes,
            adaptive.metrics.delivered_bytes
        );
    }

    #[test]
    fn runs_are_deterministic_for_the_same_seed() {
        let flows = small_shuffle(4, Bytes::from_kib(4));
        let run = |seed| {
            let mut c = quick_config(TopologySpec::grid(2, 2, 2));
            c.sim = SimConfig::with_seed(seed).horizon(SimTime::from_millis(50));
            let f = run_fabric(c, flows.clone());
            (
                f.metrics.summary().job_completion_us,
                f.metrics.delivered_bytes,
                f.metrics.summary().packet_latency.p99,
            )
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn self_flows_complete_trivially() {
        let spec = TopologySpec::line(2, 2);
        let config = quick_config(spec);
        let flows = vec![Flow {
            id: rackfabric_workload::WorkloadFlowId(0),
            src: NodeId(1),
            dst: NodeId(1),
            size: Bytes::from_kib(4),
            start_at: SimTime::ZERO,
        }];
        let fabric = run_fabric(config, flows);
        assert!(fabric.all_flows_complete());
    }

    #[test]
    fn adaptive_fabric_issues_plp_commands_under_idle_power_policy() {
        use crate::policy::CrcPolicy;
        use rackfabric_sim::units::Power;
        // An idle-ish fabric under a power-cap policy sheds lanes.
        let mut config = quick_config(TopologySpec::grid(3, 3, 4));
        config.crc.policy = CrcPolicy::PowerCap {
            budget: Power::from_kilowatts(10),
        };
        config.stop_when_done = false;
        config.sim = SimConfig::with_seed(3).horizon(SimTime::from_millis(2));
        let flows = vec![Flow {
            id: rackfabric_workload::WorkloadFlowId(0),
            src: NodeId(0),
            dst: NodeId(8),
            size: Bytes::from_kib(1),
            start_at: SimTime::ZERO,
        }];
        let fabric = run_fabric(config, flows);
        assert!(
            !fabric.metrics.reconfig_events.is_empty(),
            "the power-cap CRC should have shed lanes on idle links"
        );
        // Power must have gone down over the run.
        let first = fabric
            .metrics
            .power_series
            .points()
            .first()
            .map(|&(_, y)| y)
            .unwrap();
        let last = fabric.metrics.power_series.last_y().unwrap();
        assert!(
            last < first,
            "power should drop as lanes are shed ({first} -> {last})"
        );
    }

    #[test]
    fn congestion_escalates_grid_to_torus_when_upgrade_spec_is_given() {
        let flows = small_shuffle(16, Bytes::from_kib(64));
        let mut config = quick_config(TopologySpec::grid(4, 4, 2));
        config.upgrade_spec = Some(TopologySpec::torus(4, 4, 1));
        config.crc.epoch = SimDuration::from_micros(20);
        config.sim = SimConfig::with_seed(4).horizon(SimTime::from_millis(200));
        let fabric = run_fabric(config, flows);
        assert!(fabric.all_flows_complete(), "shuffle must finish");
        assert_eq!(
            fabric.metrics.topology_reconfigurations, 1,
            "sustained shuffle pressure should trigger exactly one grid->torus upgrade"
        );
        assert_eq!(fabric.current_spec.name, TopologySpec::torus(4, 4, 1).name);
        assert!(fabric.topo.diameter().unwrap() <= 4);
    }

    #[test]
    fn route_cache_serves_repeat_admissions() {
        let flows = small_shuffle(9, Bytes::from_kib(32));
        let mut c = FabricConfig::baseline(TopologySpec::grid(3, 3, 2));
        c.sim = SimConfig::with_seed(6).horizon(SimTime::from_millis(100));
        let fabric = run_fabric(c, flows);
        assert!(fabric.all_flows_complete());
        let stats = fabric.route_cache_stats();
        assert!(stats.hits > 0, "repeat admissions must hit the cache");
        assert!(
            stats.hit_rate() > 0.5,
            "static routing should be overwhelmingly cached (rate {})",
            stats.hit_rate()
        );
        let s = fabric.metrics.summary();
        assert_eq!(s.route_cache_hits, stats.hits);
        assert_eq!(s.route_cache_misses, stats.misses);
        assert!(s.route_cache_hit_rate > 0.5);
    }

    #[test]
    fn trains_batch_multiple_frames_per_event() {
        // A single large flow on an idle line: packets must travel in
        // multi-frame trains, i.e. far fewer events than frames.
        let spec = TopologySpec::line(2, 4);
        let mut config = quick_config(spec);
        config.adaptive = false;
        config.routing = RoutingAlgorithm::ShortestHop;
        let flows = vec![Flow {
            id: rackfabric_workload::WorkloadFlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            size: Bytes::from_kib(600),
            start_at: SimTime::ZERO,
        }];
        let horizon = config.sim.horizon;
        let seed = config.sim.seed;
        let mut sim = rackfabric_sim::Simulator::new(AdaptiveFabric::new(config, flows), seed);
        sim.run_until(horizon);
        let events = sim.events_processed();
        let fabric = sim.into_model();
        assert!(fabric.all_flows_complete());
        let frames = fabric.metrics.delivered_packets.get();
        assert!(frames > 100, "600 KiB is hundreds of MTU frames");
        assert!(
            events < frames,
            "batching must use fewer events ({events}) than frames ({frames})"
        );
    }
}
