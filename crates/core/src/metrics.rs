//! Experiment metrics collected by the fabric simulation.

use rackfabric_sim::stats::{Counter, Histogram, Series, Summary};
use rackfabric_sim::time::{SimDuration, SimTime};
use rackfabric_switch::packet::LatencyBreakdown;
use rackfabric_topo::cache::RouteCacheStats;
use rackfabric_workload::WorkloadFlowId;
use serde::{Deserialize, Serialize};

/// Everything the fabric records during a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FabricMetrics {
    /// End-to-end latency of every delivered packet (picoseconds).
    pub packet_latency: Histogram,
    /// Queueing component of every delivered packet (picoseconds).
    pub queueing_latency: Histogram,
    /// Flow completion times.
    pub flow_completions: Vec<(WorkloadFlowId, SimDuration)>,
    /// Packets delivered.
    pub delivered_packets: Counter,
    /// Packets dropped (buffer overflow or link unavailable).
    pub dropped_packets: Counter,
    /// Bytes delivered to their destination.
    pub delivered_bytes: u64,
    /// Aggregated latency breakdown over all delivered packets.
    pub breakdown: LatencyBreakdown,
    /// Interconnect power sampled every control epoch (x = microseconds,
    /// y = watts).
    pub power_series: Series,
    /// Mean link utilization sampled every control epoch.
    pub utilization_series: Series,
    /// Aggregate fabric throughput sampled every control epoch (Gb/s).
    pub throughput_series: Series,
    /// PLP commands applied, with timestamps (microseconds) and names.
    pub reconfig_events: Vec<(f64, String)>,
    /// Instant the last flow completed, if every flow finished.
    pub job_completion: Option<SimTime>,
    /// Number of whole-topology reconfigurations performed.
    pub topology_reconfigurations: u32,
    /// Route-cache lookups answered from the cache.
    pub route_cache_hits: u64,
    /// Route-cache lookups that recomputed a route.
    pub route_cache_misses: u64,
}

impl Default for FabricMetrics {
    fn default() -> Self {
        FabricMetrics {
            packet_latency: Histogram::new(),
            queueing_latency: Histogram::new(),
            flow_completions: Vec::new(),
            delivered_packets: Counter::new(),
            dropped_packets: Counter::new(),
            delivered_bytes: 0,
            breakdown: LatencyBreakdown::default(),
            power_series: Series::new("power_w"),
            utilization_series: Series::new("mean_utilization"),
            throughput_series: Series::new("throughput_gbps"),
            reconfig_events: Vec::new(),
            job_completion: None,
            topology_reconfigurations: 0,
            route_cache_hits: 0,
            route_cache_misses: 0,
        }
    }
}

impl FabricMetrics {
    /// Condenses the run into the row format printed by the experiment
    /// harness.
    pub fn summary(&self) -> RunSummary {
        let latency = self.packet_latency.summary();
        let queueing = self.queueing_latency.summary();
        let fct_max = self
            .flow_completions
            .iter()
            .map(|(_, d)| *d)
            .max()
            .unwrap_or(SimDuration::ZERO);
        let fct_mean_us = if self.flow_completions.is_empty() {
            0.0
        } else {
            self.flow_completions
                .iter()
                .map(|(_, d)| d.as_micros_f64())
                .sum::<f64>()
                / self.flow_completions.len() as f64
        };
        RunSummary {
            delivered_packets: self.delivered_packets.get(),
            dropped_packets: self.dropped_packets.get(),
            delivered_bytes: self.delivered_bytes,
            packet_latency: latency,
            queueing_latency: queueing,
            completed_flows: self.flow_completions.len(),
            flow_completion_mean_us: fct_mean_us,
            flow_completion_max_us: fct_max.as_micros_f64(),
            job_completion_us: self.job_completion.map(|t| t.as_micros_f64()),
            mean_power_w: mean_y(&self.power_series),
            max_power_w: self.power_series.max_y().unwrap_or(0.0),
            plp_commands: self.reconfig_events.len(),
            topology_reconfigurations: self.topology_reconfigurations,
            switching_fraction: self.breakdown.switching_fraction(),
            propagation_fraction: self.breakdown.propagation_fraction(),
            route_cache_hits: self.route_cache_hits,
            route_cache_misses: self.route_cache_misses,
            route_cache_hit_rate: RouteCacheStats {
                hits: self.route_cache_hits,
                misses: self.route_cache_misses,
            }
            .hit_rate(),
        }
    }
}

fn mean_y(series: &Series) -> f64 {
    if series.is_empty() {
        0.0
    } else {
        series.points().iter().map(|&(_, y)| y).sum::<f64>() / series.len() as f64
    }
}

/// The condensed result of one fabric run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Packets delivered end to end.
    pub delivered_packets: u64,
    /// Packets lost to drops.
    pub dropped_packets: u64,
    /// Bytes delivered.
    pub delivered_bytes: u64,
    /// End-to-end packet latency statistics (picoseconds).
    pub packet_latency: Summary,
    /// Queueing-delay statistics (picoseconds).
    pub queueing_latency: Summary,
    /// Flows that finished.
    pub completed_flows: usize,
    /// Mean flow completion time in microseconds.
    pub flow_completion_mean_us: f64,
    /// Slowest flow completion time in microseconds (the shuffle barrier).
    pub flow_completion_max_us: f64,
    /// Time the whole job finished, if it did.
    pub job_completion_us: Option<f64>,
    /// Mean interconnect power over the run, in watts.
    pub mean_power_w: f64,
    /// Peak interconnect power, in watts.
    pub max_power_w: f64,
    /// PLP commands applied.
    pub plp_commands: usize,
    /// Whole-topology reconfigurations.
    pub topology_reconfigurations: u32,
    /// Fraction of delivered-packet latency spent in switching logic.
    pub switching_fraction: f64,
    /// Fraction of delivered-packet latency spent in media propagation.
    pub propagation_fraction: f64,
    /// Route-cache lookups served from the cache.
    pub route_cache_hits: u64,
    /// Route-cache lookups that recomputed a route.
    pub route_cache_misses: u64,
    /// Fraction of route lookups served from the cache (0 when none ran).
    pub route_cache_hit_rate: f64,
}

impl RunSummary {
    /// Mean goodput in Gb/s over the job duration (0 when the job never
    /// completed).
    pub fn goodput_gbps(&self) -> f64 {
        match self.job_completion_us {
            Some(us) if us > 0.0 => self.delivered_bytes as f64 * 8.0 / (us * 1e-6) / 1e9,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics_summarise_to_zeroes() {
        let m = FabricMetrics::default();
        let s = m.summary();
        assert_eq!(s.delivered_packets, 0);
        assert_eq!(s.completed_flows, 0);
        assert_eq!(s.job_completion_us, None);
        assert_eq!(s.goodput_gbps(), 0.0);
        assert_eq!(s.mean_power_w, 0.0);
    }

    #[test]
    fn summary_aggregates_flow_completions() {
        let mut m = FabricMetrics::default();
        m.flow_completions
            .push((WorkloadFlowId(0), SimDuration::from_micros(10)));
        m.flow_completions
            .push((WorkloadFlowId(1), SimDuration::from_micros(30)));
        m.delivered_bytes = 1_000_000;
        m.job_completion = Some(SimTime::from_micros(40));
        m.packet_latency
            .record_duration(SimDuration::from_nanos(500));
        m.delivered_packets.add(1);
        let s = m.summary();
        assert_eq!(s.completed_flows, 2);
        assert!((s.flow_completion_mean_us - 20.0).abs() < 1e-9);
        assert!((s.flow_completion_max_us - 30.0).abs() < 1e-9);
        assert_eq!(s.job_completion_us, Some(40.0));
        // 1 MB in 40 us = 200 Gb/s.
        assert!((s.goodput_gbps() - 0.2e3).abs() < 1.0);
        assert!(s.packet_latency.count == 1);
    }

    #[test]
    fn power_series_mean_and_max() {
        let mut m = FabricMetrics::default();
        m.power_series.push(0.0, 100.0);
        m.power_series.push(1.0, 200.0);
        m.power_series.push(2.0, 300.0);
        let s = m.summary();
        assert!((s.mean_power_w - 200.0).abs() < 1e-9);
        assert!((s.max_power_w - 300.0).abs() < 1e-9);
    }
}
