//! The sharded multi-rack fabric engine.
//!
//! [`run_fabric`](crate::fabric::run_fabric) simulates the whole fabric on
//! one core. This module splits the same model across **shards** — rack
//! groups of nodes, see [`FabricPartition`] — and drives them with the
//! conservative time-window engine in [`rackfabric_sim::windowed`]:
//!
//! * Every shard owns the dense per-link/per-port state its nodes transmit
//!   on (egress queues, epoch byte counters, NICs) plus the flow progress of
//!   the flows *sourced* in the shard, and runs its own calendar queue.
//! * Packet trains whose next hop crosses a **cut link** are handed to the
//!   destination shard through a mailbox envelope timestamped with the
//!   train's exact analytic arrival; the cut link's propagation + FEC
//!   latency is what funds the conservative lookahead.
//! * Flow accounting that the monolithic engine did across nodes in one
//!   address space becomes explicit messages: a delivery at the destination
//!   sends a **delivery ack** to the source shard after `ack_delay`, and a
//!   mid-route drop sends a **drop ack** after the retry delay. The acks
//!   travel through the same keyed mailbox path even when source and
//!   destination share a shard, which is precisely why a 1-shard run is
//!   bit-identical to an N-shard run: every shard sees the same events, at
//!   the same instants, in the same content-keyed order.
//! * The Closed Ring Control runs at **sync points** aligned with its
//!   control epoch: the coordinator merges per-shard telemetry (byte
//!   counters summed per link in dense order, port occupancies from their
//!   owning shards), prices and decides exactly like the monolithic engine,
//!   and broadcasts the results — link constants, price-derived cost maps,
//!   and **reconfiguration fences that span shards** (a fence on a cut link
//!   pauses traffic on both sides) — back to every shard.
//!
//! ## Determinism contract
//!
//! N-shard runs export byte-identical results for every N (enforced by
//! `tests/shard_determinism.rs` and the CI gate): event order is
//! content-keyed rather than allocation-ordered, metric merges are integer
//! or sorted, windows are planned from shard-count-independent quantities
//! (the global earliest pending event and the minimum live-link latency),
//! and the CRC consumes telemetry merged in dense link order.
//!
//! Because flow acks are modelled as messages with real latency, the
//! sharded engine is a *different model* from the monolithic one (a drop is
//! known to the source a retry-delay later, completion an ack-delay later):
//! its exports are internally consistent across shard counts, not
//! byte-comparable to `run_fabric`.

use crate::controller::ClosedRingControl;
use crate::fabric::{FabricConfig, LinkHot};
use crate::metrics::FabricMetrics;
use crate::price::PriceBook;
use crate::reconfigure;
use rackfabric_obs::profile::{WindowProfile, WindowProfiler};
use rackfabric_obs::{Observer, TimeDomain};
use rackfabric_phy::{LinkId, PhyState, PlpExecutor};
use rackfabric_sim::engine::RunOutcome;
use rackfabric_sim::time::{SimDuration, SimTime};
use rackfabric_sim::units::{BitRate, Bytes};
use rackfabric_sim::windowed::{ShardModel, ShardsView, SyncHook, WindowCtx, WindowedSim};
use rackfabric_switch::nic::Nic;
use rackfabric_switch::packet::{FlowId, Packet};
use rackfabric_switch::queue::EgressQueue;
use rackfabric_switch::train::train_frames;
use rackfabric_topo::arena::{LinkArena, LinkIdx};
use rackfabric_topo::cache::{InternedRoute, RouteCache};
use rackfabric_topo::partition::FabricPartition;
use rackfabric_topo::routing::RoutingAlgorithm;
use rackfabric_topo::spec::TopologySpec;
use rackfabric_topo::{NodeId, Topology};
use rackfabric_workload::Flow;
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration of a sharded fabric run.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// The underlying fabric configuration (topology, workload knobs, CRC).
    pub fabric: FabricConfig,
    /// Number of shards (rack groups). Clamped to the node count; `1` runs
    /// the reference single-shard engine with identical semantics.
    pub shards: usize,
    /// Latency of a delivery acknowledgement back to the flow's source
    /// shard. Defaults to the fabric's retry delay.
    pub ack_delay: SimDuration,
    /// Worker threads for window execution (0 = one per shard, capped at
    /// the machine's parallelism). Never affects results.
    pub workers: usize,
    /// When true, a [`WindowProfiler`] is attached to the run and its
    /// snapshot returned in [`ShardedRun::profile`]. Profiling reads
    /// wall clocks but never influences the simulation.
    pub profile: bool,
    /// Trace/metrics observer threaded into the windowed engine (window
    /// and drain spans, engine counters). Disabled by default.
    pub observer: Observer,
    /// Deterministic wall-clock jitter seed for stress-testing the window
    /// executor (injected sleeps/yields per worker round). Never affects
    /// results; `None` (the default) runs clean.
    pub stagger: Option<u64>,
}

impl ShardedConfig {
    /// A sharded run over `fabric` with `shards` rack groups.
    pub fn new(fabric: FabricConfig, shards: usize) -> Self {
        let ack_delay = fabric.retry_delay;
        ShardedConfig {
            fabric,
            shards,
            ack_delay,
            workers: 0,
            profile: false,
            observer: Observer::off(),
            stagger: None,
        }
    }
}

/// Read-shared state all shards reference within one topology epoch;
/// replaced wholesale (behind a fresh [`Arc`]) on whole-rack
/// reconfigurations.
struct SharedState {
    topo: Topology,
    arena: LinkArena,
    spec: TopologySpec,
    partition: FabricPartition,
    /// `LinkIdx -> joins two different racks` (dense arena order). A
    /// topology property — not a partition property — that upper-bounds the
    /// cut: shards group whole racks, so every cut link is inter-rack. The
    /// conservative lookahead minimises latency over this class only.
    inter_mask: Vec<bool>,
    /// Node-to-rack table of `spec` — the input of the rack-detour routing
    /// policies. Shared read-only so every shard's route cache computes the
    /// same detours from the same table.
    racks: Vec<u32>,
}

/// Event tie-break key classes (see the key layout in [`event_key`]).
const CLASS_INJECT: u64 = 0;
const CLASS_TRAIN: u64 = 1;
const CLASS_DELIVERED: u64 = 2;
const CLASS_DROPPED: u64 = 3;

/// Packs a content-derived event key: `[class:2][flow:22][seq:32][hop:8]`.
/// Same-instant events deliver in ascending key order on every shard, so the
/// key layout — not allocation order — defines simultaneous-event semantics.
fn event_key(class: u64, flow: usize, seq: u32, hop: usize) -> u64 {
    debug_assert!(flow < (1 << 22), "flow index exceeds the 22-bit key field");
    debug_assert!(hop < (1 << 8), "hop index exceeds the 8-bit key field");
    (class << 62) | ((flow as u64) << 40) | ((seq as u64) << 8) | hop as u64
}

/// A packet train in flight between shards: the interned route, the next
/// hop's index, the per-flow train sequence number (the key ingredient), and
/// the packets with their analytic arrival instants.
#[derive(Debug)]
pub struct ShardTrain {
    route: Arc<InternedRoute>,
    hop: usize,
    seq: u32,
    packets: Vec<Packet>,
}

/// Events driving one fabric shard. Local events and mailbox envelopes share
/// this type; acks always travel the mailbox path so that shard placement
/// never changes semantics.
#[derive(Debug)]
pub enum ShardEvent {
    /// Inject the next packet train of a flow at its source (also the
    /// flow-start event).
    Inject(u32),
    /// A packet train finishes arriving at its next node.
    Train(ShardTrain),
    /// Delivery acknowledgement to the flow's source shard.
    Delivered {
        /// Flow index.
        flow: u32,
        /// Bytes the destination received from the acked train.
        bytes: u64,
    },
    /// Drop notification to the flow's source shard (the retry trigger).
    Dropped {
        /// Flow index.
        flow: u32,
        /// Bytes to re-send.
        bytes: u64,
    },
}

/// Per-flow progress at the flow's source shard.
#[derive(Debug, Clone, Default)]
struct FlowProgress {
    injected: u64,
    delivered: u64,
    completed: bool,
    /// True while an [`ShardEvent::Inject`] is pending (one injector chain
    /// per flow, exactly like the monolithic engine).
    injector_armed: bool,
}

/// One rack group of the sharded fabric.
pub struct ShardFabric {
    id: usize,
    shared: Arc<SharedState>,
    config: Arc<FabricConfig>,
    ack_delay: SimDuration,
    flows: Arc<Vec<Flow>>,
    /// Flow progress; only entries whose flow is sourced in this shard are
    /// ever touched.
    progress: Vec<FlowProgress>,
    /// Per-flow train sequence numbers (source shard only).
    train_seq: Vec<u32>,
    /// Per-node NICs; only this shard's nodes are touched.
    nics: Vec<Nic>,
    /// Full-width egress queues; only ports transmitted by this shard's
    /// nodes are touched.
    ports: Vec<EgressQueue>,
    /// Link constants, broadcast by the coordinator at sync points.
    link_hot: Vec<LinkHot>,
    /// Read-only copy of the bypass table, broadcast at sync points.
    bypasses: rackfabric_phy::bypass::BypassTable,
    /// Reconfiguration fences, broadcast by the coordinator. A fence on a
    /// cut link is visible on both sides — fences span shards.
    fences: Vec<SimTime>,
    /// Telemetry bytes per link this epoch (this shard's contribution).
    bytes_epoch: Vec<u64>,
    /// Switched wire bytes per link this epoch (this shard's contribution).
    wire_epoch: Vec<u64>,
    route_cache: RouteCache,
    cost_map: HashMap<LinkId, f64>,
    metrics: FabricMetrics,
    own_flows: usize,
    completed_flows: usize,
    last_completion: SimTime,
    /// Packet trains this shard handed to the mailbox (deterministic count;
    /// surfaced through the observer's metrics registry).
    trains_sent: u64,
}

impl ShardFabric {
    #[inline]
    fn link_live(&self, link: LinkIdx) -> bool {
        let hot = &self.link_hot[link.index()];
        hot.up && !hot.capacity.is_zero()
    }

    #[inline]
    fn owner_of(&self, node: NodeId) -> usize {
        self.shared.partition.owner(node)
    }

    /// The interned route for `(src, dst)` from this shard's epoch cache;
    /// mirrors the monolithic engine's cache policy (whole single-source
    /// trees for the single-path algorithms).
    fn cached_route(
        &mut self,
        src: NodeId,
        dst: NodeId,
        flow_seq: u64,
    ) -> Option<Arc<InternedRoute>> {
        let selector = if self.config.routing.per_flow() {
            flow_seq
        } else {
            0
        };
        if let Some(cached) = self.route_cache.lookup(src, dst, selector) {
            return cached;
        }
        let shared = &self.shared;
        match self.config.routing {
            RoutingAlgorithm::ShortestHop | RoutingAlgorithm::MinCost => {
                let tree = match self.config.routing {
                    RoutingAlgorithm::ShortestHop => {
                        rackfabric_topo::routing::shortest_path_tree(&shared.topo, src)
                    }
                    _ => rackfabric_topo::routing::dijkstra_tree(
                        &shared.topo,
                        src,
                        &self.cost_map,
                        1.0,
                    ),
                };
                let mut answer = None;
                for node in shared.topo.nodes() {
                    let interned = rackfabric_topo::routing::route_from_tree(src, node, &tree)
                        .and_then(|r| InternedRoute::intern(r, &shared.arena))
                        .map(Arc::new);
                    if node == dst {
                        answer = interned.clone();
                    }
                    self.route_cache.insert(src, node, selector, interned);
                }
                answer
            }
            _ => {
                let computed = crate::fabric::AdaptiveFabric::route_for(
                    &self.config,
                    &shared.topo,
                    &shared.spec,
                    &shared.racks,
                    &self.cost_map,
                    src,
                    dst,
                    flow_seq,
                )
                .and_then(|r| InternedRoute::intern(r, &shared.arena))
                .map(Arc::new);
                self.route_cache
                    .insert(src, dst, selector, computed.clone());
                computed
            }
        }
    }

    /// Arms the flow's single injector chain at `at` (no-op when armed).
    fn arm_injector(&mut self, ctx: &mut WindowCtx<'_, ShardEvent>, flow_idx: usize, at: SimTime) {
        if !self.progress[flow_idx].injector_armed {
            self.progress[flow_idx].injector_armed = true;
            ctx.schedule(
                at.max(ctx.now()),
                event_key(CLASS_INJECT, flow_idx, 0, 0),
                ShardEvent::Inject(flow_idx as u32),
            );
        }
    }

    /// Emits a train arrival toward the shard owning the arrival node.
    fn emit_train(
        &mut self,
        ctx: &mut WindowCtx<'_, ShardEvent>,
        at: SimTime,
        flow_idx: usize,
        train: ShardTrain,
    ) {
        let node = train.route.route.nodes[train.hop];
        let to = self.owner_of(node);
        let key = event_key(CLASS_TRAIN, flow_idx, train.seq, train.hop);
        self.trains_sent += 1;
        ctx.send(to, at, key, ShardEvent::Train(train));
    }

    /// Records a flow completion at the source shard.
    fn check_completion(&mut self, now: SimTime, flow_idx: usize) {
        let flow = self.flows[flow_idx];
        let p = &mut self.progress[flow_idx];
        if !p.completed && p.delivered >= flow.size.as_u64() {
            p.completed = true;
            self.completed_flows += 1;
            let fct = now.saturating_since(flow.start_at);
            self.metrics.flow_completions.push((flow.id, fct));
            self.last_completion = self.last_completion.max(now);
        }
    }

    /// Injects the next train of a flow at its source (mirrors the
    /// monolithic `inject_next`).
    fn inject(&mut self, ctx: &mut WindowCtx<'_, ShardEvent>, flow_idx: usize) {
        self.progress[flow_idx].injector_armed = false;
        let flow = self.flows[flow_idx];
        debug_assert_eq!(
            self.owner_of(flow.src),
            self.id,
            "flow injected at a shard that does not own its source"
        );
        let remaining = flow
            .size
            .as_u64()
            .saturating_sub(self.progress[flow_idx].injected);
        if remaining == 0 || self.progress[flow_idx].completed {
            return;
        }
        let now = ctx.now();
        let retry_at = now + self.config.retry_delay;

        let Some(route) = self.cached_route(flow.src, flow.dst, flow.id.0) else {
            self.arm_injector(ctx, flow_idx, retry_at);
            return;
        };
        if route.hops() == 0 {
            // Degenerate self-flow: delivered in place, no wire involved.
            self.progress[flow_idx].injected += remaining;
            self.progress[flow_idx].delivered += remaining;
            self.check_completion(now, flow_idx);
            return;
        }

        let first_link = route.links[0];
        if !self.link_live(first_link) {
            self.metrics.dropped_packets.incr();
            self.arm_injector(ctx, flow_idx, retry_at);
            return;
        }
        let fence = self.fences[first_link.index()];
        if now < fence {
            self.arm_injector(ctx, flow_idx, fence);
            return;
        }
        let hot = self.link_hot[first_link.index()];

        let mtu = self.config.mtu.as_u64();
        let budget = train_frames(hot.capacity, self.config.train_window, self.config.mtu);
        let frames = budget.min(remaining.div_ceil(mtu)).max(1);
        let mut sizes = Vec::with_capacity(frames as usize);
        let mut left = remaining;
        for _ in 0..frames {
            let size = left.min(mtu);
            sizes.push(Bytes::new(size));
            left -= size;
        }

        let mut packets =
            self.nics[flow.src.index()].build_train(now, FlowId(flow_idx as u64), flow.dst, &sizes);
        let port = self.shared.arena.port(flow.src, first_link);
        let admission = self.ports[port.index()].enqueue_train(
            &mut packets,
            hot.capacity,
            hot.propagation,
            hot.fec,
            true,
        );
        self.nics[flow.src.index()].record_sent(admission.accepted as u64);

        let accepted_bytes: u64 = packets[..admission.accepted]
            .iter()
            .map(|p| p.size.as_u64())
            .sum();
        self.progress[flow_idx].injected += accepted_bytes;
        self.bytes_epoch[first_link.index()] += accepted_bytes;
        self.wire_epoch[first_link.index()] += accepted_bytes;

        if admission.dropped {
            self.metrics.dropped_packets.incr();
        }
        if admission.accepted > 0 {
            packets.truncate(admission.accepted);
            let seq = self.train_seq[flow_idx];
            self.train_seq[flow_idx] = seq.wrapping_add(1);
            let train = ShardTrain {
                route,
                hop: 1,
                seq,
                packets,
            };
            self.emit_train(ctx, admission.last_arrives_at, flow_idx, train);
            self.arm_injector(ctx, flow_idx, admission.last_departs_at);
        } else {
            self.arm_injector(ctx, flow_idx, retry_at);
        }
    }

    /// Sends a drop notification to the flow's source shard: `n` packets
    /// carrying `bytes` were lost by the train with `(seq, hop)` identity.
    fn notify_drop(
        &mut self,
        ctx: &mut WindowCtx<'_, ShardEvent>,
        flow_idx: usize,
        bytes: u64,
        n: u64,
        seq: u32,
        hop: usize,
    ) {
        self.metrics.dropped_packets.add(n);
        let src = self.flows[flow_idx].src;
        let to = self.owner_of(src);
        ctx.send(
            to,
            ctx.now() + self.config.retry_delay,
            event_key(CLASS_DROPPED, flow_idx, seq, hop),
            ShardEvent::Dropped {
                flow: flow_idx as u32,
                bytes,
            },
        );
    }

    /// Handles a train finishing arrival at its next node (mirrors the
    /// monolithic `train_arrive`, with acks instead of cross-node state).
    fn train_arrive(&mut self, ctx: &mut WindowCtx<'_, ShardEvent>, mut train: ShardTrain) {
        let now = ctx.now();
        let at_node = train.route.route.nodes[train.hop];
        let flow_idx = train.packets[0].flow.0 as usize;

        if at_node == train.packets[0].dst {
            // Delivered: per-packet metrics at each packet's own analytic
            // arrival instant, then one ack back to the source shard.
            self.nics[at_node.index()].deliver_train(&train.packets);
            self.metrics
                .delivered_packets
                .add(train.packets.len() as u64);
            let mut bytes = 0u64;
            for packet in &train.packets {
                bytes += packet.size.as_u64();
                self.metrics.delivered_bytes += packet.size.as_u64();
                self.metrics
                    .packet_latency
                    .record_duration(packet.latency_at(packet.arrived_at));
                self.metrics
                    .queueing_latency
                    .record_duration(packet.breakdown.queueing);
                self.metrics.breakdown.accumulate(&packet.breakdown);
            }
            let src = self.flows[flow_idx].src;
            let to = self.owner_of(src);
            ctx.send(
                to,
                now + self.ack_delay,
                event_key(CLASS_DELIVERED, flow_idx, train.seq, 0),
                ShardEvent::Delivered {
                    flow: flow_idx as u32,
                    bytes,
                },
            );
            return;
        }

        let in_link = train.route.links[train.hop - 1];
        let out_link = train.route.links[train.hop];
        let out_live = self.link_live(out_link);
        let fence = self.fences[out_link.index()];
        if out_live && now < fence {
            // The egress link is retraining: hold the train here and wake at
            // the fence (the wait is charged as queueing, like the
            // monolithic engine).
            for packet in &mut train.packets {
                packet.breakdown.queueing += fence.saturating_since(packet.arrived_at);
                packet.arrived_at = fence;
            }
            let key = event_key(CLASS_TRAIN, flow_idx, train.seq, train.hop);
            ctx.schedule(fence, key, ShardEvent::Train(train));
            return;
        }

        // PLP #2: a bypass at this node short-circuits the switching logic.
        // The bypass table is a read-only copy broadcast at sync points.
        let arena = &self.shared.arena;
        let bypass = self
            .bypasses
            .lookup(at_node.as_u32(), arena.link_id(in_link))
            .copied()
            .filter(|b| b.out_link == arena.link_id(out_link));
        if let Some(bypass) = bypass {
            if out_live {
                let hot = self.link_hot[out_link.index()];
                let mut last_arrive = now;
                for packet in &mut train.packets {
                    packet.breakdown.bypass += bypass.latency;
                    packet.breakdown.propagation += hot.propagation;
                    packet.breakdown.fec += hot.fec;
                    packet.breakdown.bypassed_hops += 1;
                    packet.arrived_at =
                        packet.arrived_at + bypass.latency + hot.propagation + hot.fec;
                    last_arrive = last_arrive.max(packet.arrived_at);
                }
                self.bytes_epoch[out_link.index()] +=
                    train.packets.iter().map(|p| p.size.as_u64()).sum::<u64>();
                train.hop += 1;
                self.emit_train(ctx, last_arrive, flow_idx, train);
                return;
            }
        }

        if !out_live {
            // The route's link disappeared in a reconfiguration; the source
            // re-sends after the retry delay.
            let bytes: u64 = train.packets.iter().map(|p| p.size.as_u64()).sum();
            let n = train.packets.len() as u64;
            self.notify_drop(ctx, flow_idx, bytes, n, train.seq, train.hop);
            return;
        }
        let hot = self.link_hot[out_link.index()];
        let switch = self.config.switch;
        for packet in &mut train.packets {
            let traversal = switch.traversal_latency_at(packet.size, hot.capacity);
            packet.breakdown.switching += traversal;
            packet.breakdown.switch_hops += 1;
            packet.arrived_at += traversal;
        }
        let port = arena.port(at_node, out_link);
        let admission = self.ports[port.index()].enqueue_train(
            &mut train.packets,
            hot.capacity,
            hot.propagation,
            hot.fec,
            false,
        );
        let accepted_bytes: u64 = train.packets[..admission.accepted]
            .iter()
            .map(|p| p.size.as_u64())
            .sum();
        self.bytes_epoch[out_link.index()] += accepted_bytes;
        self.wire_epoch[out_link.index()] += accepted_bytes;

        if admission.dropped {
            let tail = &train.packets[admission.accepted..];
            let tail_bytes: u64 = tail.iter().map(|p| p.size.as_u64()).sum();
            self.notify_drop(ctx, flow_idx, tail_bytes, 1, train.seq, train.hop);
        }
        if admission.accepted > 0 {
            train.packets.truncate(admission.accepted);
            train.hop += 1;
            self.emit_train(ctx, admission.last_arrives_at.max(now), flow_idx, train);
        }
    }

    /// Migrates the dense per-link/per-port state into a rebuilt arena
    /// (whole-rack reconfigurations only).
    fn migrate(&mut self, old: &LinkArena, shared: Arc<SharedState>) {
        let arena = &shared.arena;
        let links = arena.len();
        let mut ports: Vec<EgressQueue> = (0..arena.port_count())
            .map(|_| EgressQueue::new(self.config.port_buffer))
            .collect();
        let mut bytes = vec![0u64; links];
        let mut wire = vec![0u64; links];
        let mut fences = vec![SimTime::ZERO; links];
        for (idx, id) in arena.iter() {
            if let Some(old_idx) = old.index(id) {
                bytes[idx.index()] = self.bytes_epoch[old_idx.index()];
                wire[idx.index()] = self.wire_epoch[old_idx.index()];
                fences[idx.index()] = self.fences[old_idx.index()];
                for side in 0..2 {
                    ports[idx.index() * 2 + side] = std::mem::replace(
                        &mut self.ports[old_idx.index() * 2 + side],
                        EgressQueue::new(self.config.port_buffer),
                    );
                }
            }
        }
        self.ports = ports;
        self.bytes_epoch = bytes;
        self.wire_epoch = wire;
        self.fences = fences;
        self.shared = shared;
        self.route_cache.bump_epoch();
    }
}

impl ShardModel for ShardFabric {
    type Event = ShardEvent;

    fn handle(&mut self, ctx: &mut WindowCtx<'_, ShardEvent>, event: ShardEvent) {
        match event {
            ShardEvent::Inject(flow) => self.inject(ctx, flow as usize),
            ShardEvent::Train(train) => self.train_arrive(ctx, train),
            ShardEvent::Delivered { flow, bytes } => {
                let flow = flow as usize;
                self.progress[flow].delivered += bytes;
                self.check_completion(ctx.now(), flow);
            }
            ShardEvent::Dropped { flow, bytes } => {
                let flow = flow as usize;
                let p = &mut self.progress[flow];
                p.injected = p.injected.saturating_sub(bytes);
                let now = ctx.now();
                self.arm_injector(ctx, flow, now);
            }
        }
    }

    /// Delivery acks only fold bytes into flow progress — they never
    /// schedule or send — so the window executor may fuse over stretches
    /// where nothing but deliveries is pending (the ack tail of a run).
    fn passive_key(key: u64) -> bool {
        key >> 62 == CLASS_DELIVERED
    }

    fn stop_contribution(&self) -> u64 {
        self.completed_flows as u64
    }
}

/// Reads the dense link constants out of the physical state.
fn compute_link_hot(phy: &PhyState, arena: &LinkArena) -> Vec<LinkHot> {
    arena
        .iter()
        .map(|(_, id)| match phy.link(id) {
            Some(l) => LinkHot {
                capacity: l.capacity(),
                propagation: l.propagation_delay(),
                fec: l.fec_latency(),
                up: matches!(l.state, rackfabric_phy::LinkState::Up),
            },
            None => LinkHot::DOWN,
        })
        .collect()
}

/// The global control side of the sharded engine: owns the physical state
/// and the CRC, and runs them at window-aligned sync points.
struct Coordinator {
    config: Arc<FabricConfig>,
    ack_delay: SimDuration,
    phy: PhyState,
    crc: ClosedRingControl,
    executor: PlpExecutor,
    price_book: PriceBook,
    /// Holds the coordinator-side metrics: telemetry series, reconfiguration
    /// events, topology counters. Merged with the shard metrics at the end.
    metrics: FabricMetrics,
    shared: Arc<SharedState>,
    link_hot: Vec<LinkHot>,
    lookahead: SimDuration,
    epoch_start: SimTime,
    next_epoch: SimTime,
    topology_upgraded: bool,
    total_flows: usize,
}

impl Coordinator {
    /// Recomputes the conservative lookahead from the **inter-rack link
    /// class**. Shards group whole racks ([`FabricPartition`] never splits
    /// one), so every cut link joins two racks by construction and the
    /// minimum live inter-rack latency lower-bounds every cross-shard
    /// envelope. The class is a topology property — not a partition
    /// property — so the value (and with it the window sequence and where
    /// stop/budget checks land) is identical for every shard count. Longer
    /// inter-rack cables directly buy longer windows; intra-rack hops no
    /// longer throttle them. Falls back to the all-links minimum when no
    /// live inter-rack link exists (a single-rack fabric never hands off,
    /// and the fallback keeps its window lattice unchanged).
    fn refresh_lookahead(&mut self) {
        let mask = &self.shared.inter_mask;
        let live_min = |inter_only: bool| {
            self.link_hot
                .iter()
                .enumerate()
                .filter(|(i, h)| (!inter_only || mask[*i]) && h.up && !h.capacity.is_zero())
                .map(|(_, h)| h.propagation + h.fec)
                .min()
        };
        let link_min = live_min(true)
            .or_else(|| live_min(false))
            .unwrap_or(SimDuration::MAX);
        self.lookahead = link_min
            .min(self.config.retry_delay)
            .min(self.ack_delay)
            .max(SimDuration::from_picos(1));
    }

    /// Pushes the current link constants and bypass table to every shard.
    fn broadcast_hot(&self, shards: &mut ShardsView<'_, ShardFabric>) {
        for shard in shards.models_mut() {
            shard.link_hot = self.link_hot.clone();
            shard.bypasses = self.phy.bypasses.clone();
        }
    }

    /// One Closed Ring Control epoch over merged shard telemetry (mirrors
    /// the monolithic `crc_epoch`).
    fn crc_epoch(&mut self, now: SimTime, shards: &mut ShardsView<'_, ShardFabric>) {
        let epoch = now.saturating_since(self.epoch_start);
        let epoch_s = epoch.as_secs_f64().max(1e-12);
        let arena_iter: Vec<(LinkIdx, LinkId)> = self.shared.arena.iter().collect();
        let shard_count = shards.len();

        // Flush merged wire bytes into the per-lane statistics, dense order.
        for &(idx, id) in &arena_iter {
            let mut total = 0u64;
            for s in 0..shard_count {
                let shard = shards.model(s);
                total += shard.wire_epoch[idx.index()];
                shard.wire_epoch[idx.index()] = 0;
            }
            if total > 0 {
                if let Some(l) = self.phy.link_mut(id) {
                    l.record_traffic(now, total);
                }
            }
        }

        // Merge per-link utilization / occupancy / throughput.
        let mut utilization = HashMap::new();
        let mut throughput = HashMap::new();
        let mut queue_bytes: HashMap<LinkId, f64> = HashMap::new();
        for &(idx, id) in &arena_iter {
            let mut bytes = 0u64;
            for s in 0..shard_count {
                bytes += shards.model(s).bytes_epoch[idx.index()];
            }
            let bps = bytes as f64 * 8.0 / epoch_s;
            throughput.insert(id, BitRate::from_bps(bps as u64));
            let cap = self.link_hot[idx.index()].capacity;
            let util = if cap.is_zero() {
                0.0
            } else {
                bps / cap.as_bps() as f64
            };
            utilization.insert(id, util);

            // Each directed port is owned by its transmitting node's shard.
            let mut occ = 0.0f64;
            for side in 0..2u32 {
                let port = rackfabric_topo::arena::PortIdx(idx.0 * 2 + side);
                let owner = self.shared.partition.port_owner(&self.shared.arena, port);
                let value = shards.model(owner).ports[port.index()].mean_occupancy(now);
                occ = occ.max(value);
            }
            queue_bytes.insert(id, occ);
        }

        let report = self
            .phy
            .telemetry_report(now, &utilization, &queue_bytes, &throughput);
        self.metrics
            .power_series
            .push_at(now, report.total_power.as_watts_f64());
        self.metrics
            .utilization_series
            .push_at(now, report.mean_utilization());
        // Sum throughput in dense link order (not map order) so the series
        // is deterministic.
        let total_gbps: f64 = arena_iter
            .iter()
            .map(|&(_, id)| throughput.get(&id).map(|r| r.as_gbps_f64()).unwrap_or(0.0))
            .sum();
        self.metrics.throughput_series.push_at(now, total_gbps);

        self.price_book = self.crc.price(&report);
        // Cost-aware routing (min-cost, UGAL-style adaptive): broadcast one
        // price snapshot to every shard and invalidate their caches together,
        // so per-shard routing decisions stay shard-count-independent.
        if self.config.routing.cost_aware() {
            let cost_map = self.price_book.as_cost_map();
            for shard in shards.models_mut() {
                shard.cost_map = cost_map.clone();
                shard.route_cache.bump_epoch();
            }
        }

        if self.config.adaptive {
            let decision = self.crc.decide(&report, &self.phy);
            let mut phy_changed = false;
            for command in &decision.commands {
                match self.executor.execute(&mut self.phy, command) {
                    Ok(completion) => {
                        phy_changed = true;
                        for link in &completion.affected {
                            if let Some(idx) = self.shared.arena.index(*link) {
                                let until = now + completion.duration;
                                // Reconfiguration fences span shards: every
                                // shard sees the pause, including both sides
                                // of a cut link.
                                for shard in shards.models_mut() {
                                    let fence = &mut shard.fences[idx.index()];
                                    *fence = (*fence).max(until);
                                }
                            }
                        }
                        self.metrics
                            .reconfig_events
                            .push((now.as_micros_f64(), completion.command.clone()));
                    }
                    Err(_) => {
                        // Rejected commands are skipped; the next epoch
                        // re-evaluates.
                    }
                }
            }
            if phy_changed {
                self.link_hot = compute_link_hot(&self.phy, &self.shared.arena);
                self.broadcast_hot(shards);
                self.refresh_lookahead();
            }
            if decision.escalate_topology && !self.topology_upgraded {
                if let Some(target) = self.config.upgrade_spec.clone() {
                    self.upgrade_topology(now, &target, shards);
                }
            }
        }

        for shard in shards.models_mut() {
            shard.bytes_epoch.fill(0);
        }
        self.epoch_start = now;
        self.next_epoch = now + self.config.crc.epoch;
    }

    /// Whole-rack reconfiguration at a sync point: stop-the-world while the
    /// link set, arena, partition cut and every shard's dense state are
    /// rebuilt.
    fn upgrade_topology(
        &mut self,
        now: SimTime,
        target: &TopologySpec,
        shards: &mut ShardsView<'_, ShardFabric>,
    ) {
        let plan = match reconfigure::plan(&self.shared.spec, target, &self.shared.topo, &self.phy)
        {
            Ok(plan) if !plan.is_empty() => plan,
            _ => return,
        };
        let mut topo = self.shared.topo.clone();
        let Ok(duration) = reconfigure::apply(&plan, &self.executor, &mut self.phy, &mut topo)
        else {
            return;
        };
        let old_arena = self.shared.arena.clone();
        let arena = LinkArena::build(&topo);
        // In-flight trains hold routes interned against the old arena; the
        // upgrade is only safe when surviving links keep their dense index
        // (true for add-only plans — splits allocate fresh, higher ids).
        for (idx, id) in old_arena.iter() {
            if let Some(new_idx) = arena.index(id) {
                assert_eq!(
                    idx, new_idx,
                    "topology upgrade shifted dense link indices; in-flight \
                     routes would corrupt (link {id:?})"
                );
            }
        }
        let mut partition = self.shared.partition.clone();
        partition.recut(&arena);
        // Re-derive the inter-rack class for the new link set by the same
        // rack rule the partition groups by, so reconfiguration-added links
        // land in the right lookahead class.
        let inter_mask = plan.target.inter_rack_mask(&arena);
        let racks = plan.target.rack_of();
        let shared = Arc::new(SharedState {
            topo,
            arena,
            spec: plan.target.clone(),
            partition,
            inter_mask,
            racks,
        });
        self.shared = shared.clone();
        self.link_hot = compute_link_hot(&self.phy, &self.shared.arena);
        let until = now + duration;
        for shard in shards.models_mut() {
            shard.migrate(&old_arena, shared.clone());
            for fence in &mut shard.fences {
                *fence = (*fence).max(until);
            }
        }
        self.broadcast_hot(shards);
        self.refresh_lookahead();
        self.topology_upgraded = true;
        self.metrics.topology_reconfigurations += 1;
        self.metrics
            .reconfig_events
            .push((now.as_micros_f64(), format!("topology->{}", target.name)));
    }
}

impl SyncHook<ShardFabric> for Coordinator {
    fn next_sync(&self) -> SimTime {
        self.next_epoch
    }

    fn on_sync(&mut self, at: SimTime, shards: &mut ShardsView<'_, ShardFabric>) {
        self.crc_epoch(at, shards);
    }

    fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    fn stop_threshold(&self) -> u64 {
        if self.config.stop_when_done {
            self.total_flows as u64
        } else {
            u64::MAX
        }
    }
}

/// The result of a sharded fabric run.
#[derive(Debug)]
pub struct ShardedRun {
    /// Merged run metrics (summaries are byte-stable across shard counts).
    pub metrics: FabricMetrics,
    /// Why the run ended.
    pub outcome: RunOutcome,
    /// Engine events processed across all shards.
    pub events_processed: u64,
    /// Conservative windows executed.
    pub windows: u64,
    /// Control sync points executed.
    pub syncs: u64,
    /// Number of shards the fabric was partitioned into.
    pub shards: usize,
    /// True once every flow delivered all of its bytes.
    pub all_flows_complete: bool,
    /// The window profile of the run, when [`ShardedConfig::profile`] was
    /// set: per-shard events and drain time, per-worker barrier waits,
    /// window-length and events-per-window histograms. Wall-clock numbers
    /// inside belong to perf artifacts only — never to result exports.
    pub profile: Option<WindowProfile>,
}

/// A sharded fabric ready to run: the shard models inside the windowed
/// driver plus the coordinator.
pub struct ShardedFabric {
    sim: WindowedSim<ShardFabric>,
    coordinator: Coordinator,
    horizon: SimTime,
    profiler: Option<Arc<WindowProfiler>>,
    observer: Observer,
}

impl ShardedFabric {
    /// Builds the sharded fabric and seeds every flow's start event at its
    /// source shard.
    pub fn new(config: ShardedConfig, flows: Vec<Flow>) -> Self {
        let ShardedConfig {
            fabric: fabric_config,
            shards,
            ack_delay,
            workers,
            profile,
            observer,
            stagger,
        } = config;
        assert!(shards >= 1, "a sharded fabric needs at least one shard");
        let horizon = fabric_config.sim.horizon;
        let budget = fabric_config.sim.event_budget;
        let mut phy = PhyState::new();
        let topo = fabric_config
            .spec
            .instantiate(&mut phy, fabric_config.lane_rate);
        let arena = LinkArena::build(&topo);
        let racks = fabric_config.spec.rack_of();
        let partition = FabricPartition::build(&racks, shards, &arena);
        let inter_mask = fabric_config.spec.inter_rack_mask(&arena);
        debug_assert!(
            partition.cut_links().all(|idx| inter_mask[idx.index()]),
            "partition cut a link inside a rack; the inter-rack lookahead \
             class would not cover it"
        );
        let shard_count = partition.shards();
        let shared = Arc::new(SharedState {
            topo,
            arena,
            spec: fabric_config.spec.clone(),
            partition,
            inter_mask,
            racks,
        });
        let link_hot = compute_link_hot(&phy, &shared.arena);
        let bypasses = phy.bypasses.clone();
        let config = Arc::new(fabric_config);
        let flows = Arc::new(flows);
        assert!(
            flows.len() < (1 << 22),
            "the keyed event layout supports up to 4M flows"
        );

        let models: Vec<ShardFabric> = (0..shard_count)
            .map(|id| {
                let own_flows = flows
                    .iter()
                    .filter(|f| shared.partition.owner(f.src) == id)
                    .count();
                ShardFabric {
                    id,
                    shared: shared.clone(),
                    config: config.clone(),
                    ack_delay,
                    flows: flows.clone(),
                    progress: vec![FlowProgress::default(); flows.len()],
                    train_seq: vec![0; flows.len()],
                    nics: (0..shared.spec.nodes as u32)
                        .map(|n| Nic::new(NodeId(n), config.port_buffer))
                        .collect(),
                    ports: (0..shared.arena.port_count())
                        .map(|_| EgressQueue::new(config.port_buffer))
                        .collect(),
                    link_hot: link_hot.clone(),
                    bypasses: bypasses.clone(),
                    fences: vec![SimTime::ZERO; shared.arena.len()],
                    bytes_epoch: vec![0; shared.arena.len()],
                    wire_epoch: vec![0; shared.arena.len()],
                    route_cache: RouteCache::new(),
                    cost_map: HashMap::new(),
                    metrics: FabricMetrics::default(),
                    own_flows,
                    completed_flows: 0,
                    last_completion: SimTime::ZERO,
                    trains_sent: 0,
                }
            })
            .collect();

        let profiler = profile.then(|| Arc::new(WindowProfiler::new(shard_count)));
        let mut sim = WindowedSim::new(models)
            .with_event_budget(budget)
            .with_workers(workers)
            .with_observer(observer.clone());
        if let Some(p) = &profiler {
            sim = sim.with_profiler(p.clone());
        }
        if let Some(seed) = stagger {
            sim = sim.with_stagger(seed);
        }
        for (idx, flow) in flows.iter().enumerate() {
            let shard = shared.partition.owner(flow.src);
            sim.schedule(
                shard,
                flow.start_at,
                event_key(CLASS_INJECT, idx, 0, 0),
                ShardEvent::Inject(idx as u32),
            );
        }
        // The seeded Inject doubles as the armed injector chain.
        for s in 0..shard_count {
            let model = sim.model_mut(s);
            for (idx, flow) in flows.iter().enumerate() {
                if shared.partition.owner(flow.src) == s {
                    model.progress[idx].injector_armed = true;
                }
            }
        }

        let mut coordinator = Coordinator {
            crc: ClosedRingControl::new(config.crc),
            executor: PlpExecutor::new(config.plp_timing),
            ack_delay,
            phy,
            price_book: PriceBook::default(),
            metrics: FabricMetrics::default(),
            shared,
            link_hot,
            lookahead: SimDuration::from_picos(1),
            epoch_start: SimTime::ZERO,
            next_epoch: SimTime::ZERO + config.crc.epoch,
            topology_upgraded: false,
            total_flows: flows.len(),
            config,
        };
        coordinator.refresh_lookahead();

        ShardedFabric {
            sim,
            coordinator,
            horizon,
            profiler,
            observer,
        }
    }

    /// Mutable access to the physical state before the run (the scenario
    /// layer applies its initial PLP policy here).
    pub fn phy_mut(&mut self) -> &mut PhyState {
        &mut self.coordinator.phy
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.sim.shard_count()
    }

    /// Runs to the configured horizon and merges the per-shard metrics.
    pub fn run(mut self) -> ShardedRun {
        // The phy may have been reconfigured between construction and the
        // run (initial PLP policy); re-read the constants, like the
        // monolithic engine's `init`.
        self.coordinator.link_hot =
            compute_link_hot(&self.coordinator.phy, &self.coordinator.shared.arena);
        self.coordinator.refresh_lookahead();
        {
            let hot = self.coordinator.link_hot.clone();
            for s in 0..self.sim.shard_count() {
                self.sim.model_mut(s).link_hot = hot.clone();
            }
        }

        let out = self.sim.run(self.horizon, &mut self.coordinator);
        let shards = self.sim.shard_count();
        let models = self.sim.into_models();
        let mut metrics = self.coordinator.metrics;
        let mut total_flows_done = 0usize;
        let mut own_total = 0usize;
        let mut last_completion = SimTime::ZERO;
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut trains = 0u64;
        for model in &models {
            metrics.packet_latency.merge(&model.metrics.packet_latency);
            metrics
                .queueing_latency
                .merge(&model.metrics.queueing_latency);
            metrics
                .delivered_packets
                .add(model.metrics.delivered_packets.get());
            metrics
                .dropped_packets
                .add(model.metrics.dropped_packets.get());
            metrics.delivered_bytes += model.metrics.delivered_bytes;
            metrics.breakdown.accumulate(&model.metrics.breakdown);
            metrics
                .flow_completions
                .extend(model.metrics.flow_completions.iter().copied());
            total_flows_done += model.completed_flows;
            own_total += model.own_flows;
            last_completion = last_completion.max(model.last_completion);
            let stats = model.route_cache.stats();
            hits += stats.hits;
            misses += stats.misses;
            trains += model.trains_sent;
        }
        // Engine-level counters into the observer's registry: deterministic
        // sim-domain counts, surfaced for telemetry only (exports never read
        // the registry).
        if let Some(registry) = self.observer.registry() {
            registry
                .counter("engine.events", TimeDomain::Sim)
                .add(out.events);
            registry
                .counter("engine.windows", TimeDomain::Sim)
                .add(out.windows);
            registry
                .counter("engine.syncs", TimeDomain::Sim)
                .add(out.syncs);
            registry
                .counter("engine.mailbox_trains", TimeDomain::Sim)
                .add(trains);
            registry
                .counter("engine.route_cache_hits", TimeDomain::Sim)
                .add(hits);
            registry
                .counter("engine.route_cache_misses", TimeDomain::Sim)
                .add(misses);
        }
        debug_assert_eq!(own_total, self.coordinator.total_flows);
        // Merge order must not leak into exports: completions sort by flow
        // id (unique per flow), making the merged vector — and the f64 mean
        // computed over it — a pure function of the simulation content.
        metrics.flow_completions.sort_by_key(|&(id, _)| id.0);
        metrics.route_cache_hits = hits;
        metrics.route_cache_misses = misses;
        let all_complete = total_flows_done == self.coordinator.total_flows;
        if all_complete && self.coordinator.total_flows > 0 {
            metrics.job_completion = Some(last_completion);
        }
        ShardedRun {
            metrics,
            outcome: out.outcome,
            events_processed: out.events,
            windows: out.windows,
            syncs: out.syncs,
            shards,
            all_flows_complete: all_complete,
            profile: self.profiler.as_ref().map(|p| p.snapshot()),
        }
    }
}

/// Runs a fabric configuration through the sharded engine.
pub fn run_sharded(config: ShardedConfig, flows: Vec<Flow>) -> ShardedRun {
    ShardedFabric::new(config, flows).run()
}
