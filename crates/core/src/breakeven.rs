//! Reconfiguration break-even analysis.
//!
//! "The problem that arises in all reconfigurable fabrics is finding the
//! minimum flow size for which reconfiguration is worth the cost." This
//! module answers that question analytically: a reconfiguration that takes
//! `reconfig_time` and lifts a transfer's bottleneck bandwidth from
//! `before` to `after` pays off exactly when the serialization time saved
//! exceeds the time lost waiting for the fabric to reconfigure.

use rackfabric_sim::time::SimDuration;
use rackfabric_sim::units::{BitRate, Bytes};
use serde::{Deserialize, Serialize};

/// Inputs to one break-even decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakEvenInput {
    /// Bottleneck bandwidth available without reconfiguring.
    pub before: BitRate,
    /// Bottleneck bandwidth after the reconfiguration.
    pub after: BitRate,
    /// Time the reconfiguration takes (traffic cannot use the new capacity
    /// until it completes).
    pub reconfig_time: SimDuration,
}

/// The outcome of evaluating a flow against a reconfiguration opportunity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakEvenDecision {
    /// Completion time if the fabric stays as it is.
    pub stay_time: SimDuration,
    /// Completion time if the fabric reconfigures first.
    pub reconfigure_time: SimDuration,
    /// True when reconfiguring is the faster option.
    pub worth_it: bool,
    /// Net saving (positive when `worth_it`).
    pub saving: f64,
}

/// Completion time of `size` at `rate` (infinite when rate is zero).
fn transfer_time(size: Bytes, rate: BitRate) -> SimDuration {
    rate.serialization_delay(size)
}

/// Evaluates whether reconfiguring before sending `size` bytes pays off.
pub fn evaluate(size: Bytes, input: &BreakEvenInput) -> BreakEvenDecision {
    let stay = transfer_time(size, input.before);
    let go = input.reconfig_time + transfer_time(size, input.after);
    let stay_s = stay.as_secs_f64();
    let go_s = go.as_secs_f64();
    BreakEvenDecision {
        stay_time: stay,
        reconfigure_time: go,
        worth_it: go < stay,
        saving: stay_s - go_s,
    }
}

/// The minimum flow size for which reconfiguration is worth the cost:
///
/// ```text
/// size / before > reconfig + size / after
/// size * (1/before - 1/after) > reconfig
/// size > reconfig / (1/before - 1/after)
/// ```
///
/// Returns `None` when the reconfiguration does not increase bandwidth (no
/// finite flow size can ever justify it).
pub fn min_flow_size(input: &BreakEvenInput) -> Option<Bytes> {
    let before = input.before.as_bps() as f64;
    let after = input.after.as_bps() as f64;
    if after <= before || before <= 0.0 {
        return None;
    }
    let seconds = input.reconfig_time.as_secs_f64();
    let inv_delta = 1.0 / before - 1.0 / after; // seconds per bit saved
    let bits = seconds / inv_delta;
    Some(Bytes::new((bits / 8.0).ceil() as u64))
}

/// Sweeps the minimum worthwhile flow size across a range of reconfiguration
/// times (the x-axis of experiment E5). Returns (reconfig_time, min_size)
/// pairs; entries where reconfiguration can never pay off are skipped.
pub fn sweep_min_flow_size(
    before: BitRate,
    after: BitRate,
    reconfig_times: &[SimDuration],
) -> Vec<(SimDuration, Bytes)> {
    reconfig_times
        .iter()
        .filter_map(|&t| {
            min_flow_size(&BreakEvenInput {
                before,
                after,
                reconfig_time: t,
            })
            .map(|s| (t, s))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(before_g: u64, after_g: u64, us: u64) -> BreakEvenInput {
        BreakEvenInput {
            before: BitRate::from_gbps(before_g),
            after: BitRate::from_gbps(after_g),
            reconfig_time: SimDuration::from_micros(us),
        }
    }

    #[test]
    fn large_flows_justify_reconfiguration() {
        // 25 -> 100 Gb/s with a 20 us reconfiguration.
        let inp = input(25, 100, 20);
        let small = evaluate(Bytes::from_kib(10), &inp);
        let large = evaluate(Bytes::from_mib(10), &inp);
        assert!(
            !small.worth_it,
            "a 10 KiB flow finishes before the fabric even reconfigures"
        );
        assert!(large.worth_it);
        assert!(large.saving > 0.0);
        assert!(small.saving < 0.0);
    }

    #[test]
    fn min_flow_size_matches_direct_evaluation() {
        let inp = input(25, 100, 20);
        let threshold = min_flow_size(&inp).unwrap();
        // Just below the threshold: not worth it. Just above: worth it.
        let below = Bytes::new(threshold.as_u64() * 9 / 10);
        let above = Bytes::new(threshold.as_u64() * 11 / 10);
        assert!(!evaluate(below, &inp).worth_it);
        assert!(evaluate(above, &inp).worth_it);
        // Analytical value: 20 us / (1/25G - 1/100G) = 20e-6 / 3e-11 bits ≈ 83.3 kB.
        let kb = threshold.as_u64() as f64 / 1e3;
        assert!((80.0..90.0).contains(&kb), "threshold was {kb} kB");
    }

    #[test]
    fn no_bandwidth_gain_is_never_worth_it() {
        assert!(min_flow_size(&input(100, 100, 1)).is_none());
        assert!(min_flow_size(&input(100, 50, 1)).is_none());
        let d = evaluate(Bytes::from_gib(1), &input(100, 50, 1));
        assert!(!d.worth_it);
    }

    #[test]
    fn threshold_scales_linearly_with_reconfig_time() {
        let t1 = min_flow_size(&input(25, 100, 10)).unwrap().as_u64() as f64;
        let t2 = min_flow_size(&input(25, 100, 100)).unwrap().as_u64() as f64;
        let ratio = t2 / t1;
        assert!(
            (9.5..10.5).contains(&ratio),
            "10x slower reconfig needs ~10x larger flows"
        );
    }

    #[test]
    fn sweep_skips_impossible_entries_and_is_monotone() {
        let times: Vec<SimDuration> = [1u64, 10, 100, 1000, 10000]
            .iter()
            .map(|&us| SimDuration::from_micros(us))
            .collect();
        let sweep = sweep_min_flow_size(BitRate::from_gbps(50), BitRate::from_gbps(100), &times);
        assert_eq!(sweep.len(), times.len());
        assert!(sweep.windows(2).all(|w| w[0].1 <= w[1].1));
        let empty = sweep_min_flow_size(BitRate::from_gbps(100), BitRate::from_gbps(100), &times);
        assert!(empty.is_empty());
    }
}
