//! Topology reconfiguration planning.
//!
//! Turns a structural diff between two topology specs (see
//! [`rackfabric_topo::reconfig`]) into a concrete sequence of
//! [`PlpCommand`]s against the live physical state, and applies it. This is
//! the machinery behind the paper's Figure 2: the rack starts as a grid with
//! two lanes per link; the CRC decides a torus at one lane per link serves
//! the traffic better within the same lane (and therefore power) budget; the
//! wrap-around links of the torus are created by *breaking* one lane off each
//! edge-of-grid link and re-pointing it (PLP #1), while the remaining mesh
//! links are thinned to one active lane.

use rackfabric_phy::{PhyError, PhyState, PlpCommand, PlpExecutor};
use rackfabric_sim::time::SimDuration;
use rackfabric_topo::reconfig::{EdgeChange, SpecDiff};
use rackfabric_topo::spec::TopologySpec;
use rackfabric_topo::{NodeId, Topology};
use serde::{Deserialize, Serialize};

/// A planned reconfiguration: the PLP commands to issue and the spec the
/// fabric will match once they complete.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReconfigPlan {
    /// Commands, in issue order.
    pub commands: Vec<PlpCommand>,
    /// The target spec.
    pub target: TopologySpec,
}

impl ReconfigPlan {
    /// The time until traffic can use the new fabric, assuming the CRC issues
    /// every command in parallel (commands touch disjoint links by
    /// construction), i.e. the maximum single-command latency.
    pub fn duration(&self, executor: &PlpExecutor) -> SimDuration {
        self.commands
            .iter()
            .map(|c| executor.timing.latency_of(c))
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Number of planned commands.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// True when nothing needs to change.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }
}

/// Errors from planning or applying a reconfiguration.
#[derive(Debug, Clone, PartialEq)]
pub enum ReconfigError {
    /// An added edge needs lanes but no link had spare lanes to donate.
    NoLaneSource {
        /// The endpoints of the edge that could not be realised.
        edge: (NodeId, NodeId),
    },
    /// A change referenced a node pair with no physical link.
    MissingLink {
        /// The endpoints with no link between them.
        pair: (NodeId, NodeId),
    },
    /// A PLP command failed during application.
    Phy(PhyError),
}

impl std::fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReconfigError::NoLaneSource { edge } => {
                write!(f, "no lane source available for new edge {edge:?}")
            }
            ReconfigError::MissingLink { pair } => {
                write!(f, "no physical link between {pair:?}")
            }
            ReconfigError::Phy(e) => write!(f, "physical layer rejected a command: {e}"),
        }
    }
}
impl std::error::Error for ReconfigError {}

impl From<PhyError> for ReconfigError {
    fn from(e: PhyError) -> Self {
        ReconfigError::Phy(e)
    }
}

/// Plans the PLP command sequence taking the fabric from `current` to
/// `target`.
///
/// Strategy, per change in the diff:
///
/// * **Added edges** are realised by [`PlpCommand::SplitLink`]: lanes are
///   taken from a link whose lane count is being reduced anyway (preferring a
///   donor that touches one of the new edge's endpoints), or failing that
///   from any link with spare lanes.
/// * **Re-laned edges** that were not consumed as donors get
///   [`PlpCommand::SetActiveLanes`].
/// * **Removed edges** are powered off.
pub fn plan(
    current: &TopologySpec,
    target: &TopologySpec,
    topo: &Topology,
    phy: &PhyState,
) -> Result<ReconfigPlan, ReconfigError> {
    let diff = SpecDiff::between(current, target);
    let mut commands = Vec::new();

    // Remaining lane budget we may still take from each link: starts at the
    // planned reduction (from - to) for re-laned edges.
    let mut donor_spare: Vec<(rackfabric_phy::LinkId, NodeId, NodeId, usize)> = Vec::new();
    let mut relane_targets: Vec<(rackfabric_phy::LinkId, usize)> = Vec::new();

    for change in &diff.changes {
        match change {
            EdgeChange::Relane {
                a,
                b,
                from_lanes,
                to_lanes,
            } => {
                let link = link_between(topo, *a, *b)
                    .ok_or(ReconfigError::MissingLink { pair: (*a, *b) })?;
                if to_lanes < from_lanes {
                    donor_spare.push((link, *a, *b, from_lanes - to_lanes));
                }
                relane_targets.push((link, *to_lanes));
            }
            EdgeChange::Remove { edge } => {
                let link =
                    link_between(topo, edge.a, edge.b).ok_or(ReconfigError::MissingLink {
                        pair: (edge.a, edge.b),
                    })?;
                commands.push(PlpCommand::SetPower {
                    link,
                    state: rackfabric_phy::PowerState::Off,
                });
            }
            EdgeChange::Add { .. } => {}
        }
    }

    // Realise added edges from donor lanes.
    for change in &diff.changes {
        if let EdgeChange::Add { edge } = change {
            let needed = edge.lanes;
            // Prefer a donor touching one endpoint of the new edge (shorter
            // re-cabling), then any donor with enough spare.
            let donor_idx = donor_spare
                .iter()
                .position(|(_, a, b, spare)| {
                    *spare >= needed
                        && (*a == edge.a || *b == edge.a || *a == edge.b || *b == edge.b)
                })
                .or_else(|| {
                    donor_spare
                        .iter()
                        .position(|(_, _, _, spare)| *spare >= needed)
                });
            let Some(idx) = donor_idx else {
                // Fall back to any physical link with more than `needed` lanes
                // that is not itself being re-laned.
                let fallback = phy.link_ids().into_iter().find(|id| {
                    phy.link(*id)
                        .map(|l| l.total_lanes() > needed)
                        .unwrap_or(false)
                        && !relane_targets.iter().any(|(rid, _)| rid == id)
                });
                match fallback {
                    Some(link) => {
                        commands.push(PlpCommand::SplitLink {
                            link,
                            lanes: needed,
                            new_a: edge.a.as_u32(),
                            new_b: edge.b.as_u32(),
                        });
                        continue;
                    }
                    None => {
                        return Err(ReconfigError::NoLaneSource {
                            edge: (edge.a, edge.b),
                        })
                    }
                }
            };
            let (link, _, _, spare) = &mut donor_spare[idx];
            commands.push(PlpCommand::SplitLink {
                link: *link,
                lanes: needed,
                new_a: edge.a.as_u32(),
                new_b: edge.b.as_u32(),
            });
            *spare -= needed;
            // Splitting already removed the donated lanes, so reduce the
            // pending SetActiveLanes target bookkeeping accordingly: the
            // remaining lanes after the split already equal the relane target
            // when the donation equals the reduction, in which case drop the
            // explicit relane command.
            if *spare == 0 {
                relane_targets.retain(|(rid, _)| rid != link);
            }
        }
    }

    // Any re-laned edge not fully handled by donations gets an explicit lane
    // count change.
    for (link, to_lanes) in relane_targets {
        commands.push(PlpCommand::SetActiveLanes {
            link,
            lanes: to_lanes,
        });
    }

    Ok(ReconfigPlan {
        commands,
        target: target.clone(),
    })
}

fn link_between(topo: &Topology, a: NodeId, b: NodeId) -> Option<rackfabric_phy::LinkId> {
    topo.links_between(a, b).into_iter().next()
}

/// Applies a plan: executes every command against `phy` and updates `topo` so
/// that the graph matches the new physical reality (new links become edges,
/// dissolved/powered-off links lose theirs). Returns the reconfiguration
/// duration (the longest single command).
pub fn apply(
    plan: &ReconfigPlan,
    executor: &PlpExecutor,
    phy: &mut PhyState,
    topo: &mut Topology,
) -> Result<SimDuration, ReconfigError> {
    let mut duration = SimDuration::ZERO;
    for command in &plan.commands {
        let completion = executor.execute(phy, command)?;
        duration = duration.max(completion.duration);
        match command {
            PlpCommand::SplitLink { new_a, new_b, .. } => {
                let new_link = completion
                    .new_link
                    .expect("split always reports the created link");
                topo.add_edge(NodeId(*new_a), NodeId(*new_b), new_link);
            }
            PlpCommand::BundleLinks { from, .. } => {
                topo.remove_edge(*from);
            }
            PlpCommand::SetPower {
                link,
                state: rackfabric_phy::PowerState::Off,
            } => {
                topo.remove_edge(*link);
            }
            _ => {}
        }
    }
    Ok(duration)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rackfabric_sim::units::BitRate;

    fn grid_fabric() -> (TopologySpec, PhyState, Topology) {
        let spec = TopologySpec::grid(4, 4, 2);
        let mut phy = PhyState::new();
        let topo = spec.instantiate(&mut phy, BitRate::from_gbps(25));
        (spec, phy, topo)
    }

    #[test]
    fn grid_to_torus_plan_has_the_expected_shape() {
        let (grid, phy, topo) = grid_fabric();
        let torus = TopologySpec::torus(4, 4, 1);
        let plan = plan(&grid, &torus, &topo, &phy).unwrap();
        // 8 wrap-around links to create.
        let splits = plan
            .commands
            .iter()
            .filter(|c| matches!(c, PlpCommand::SplitLink { .. }))
            .count();
        assert_eq!(splits, 8);
        // Mesh links not used as donors are thinned to 1 lane.
        let relanes = plan
            .commands
            .iter()
            .filter(|c| matches!(c, PlpCommand::SetActiveLanes { lanes: 1, .. }))
            .count();
        assert_eq!(
            splits + relanes,
            24 + 8 - 8,
            "every mesh link is either a donor or re-laned"
        );
        assert!(!plan.is_empty());
        assert!(plan.duration(&PlpExecutor::default()) > SimDuration::ZERO);
    }

    #[test]
    fn applying_the_plan_yields_a_connected_torus_with_lower_diameter() {
        let (grid, mut phy, mut topo) = grid_fabric();
        let torus = TopologySpec::torus(4, 4, 1);
        let before_diameter = topo.diameter().unwrap();
        let before_links = phy.link_count();
        let plan = plan(&grid, &torus, &topo, &phy).unwrap();
        let executor = PlpExecutor::default();
        let duration = apply(&plan, &executor, &mut phy, &mut topo).unwrap();
        assert!(duration >= executor.timing.split);
        assert!(topo.is_connected());
        assert_eq!(topo.edge_count(), 32, "24 mesh + 8 wrap links");
        assert_eq!(phy.link_count(), before_links + 8);
        let after_diameter = topo.diameter().unwrap();
        assert!(
            after_diameter < before_diameter,
            "the torus must shrink the diameter ({before_diameter} -> {after_diameter})"
        );
        // The lane budget went down (32 active links x1 lane vs 24 x2): check
        // the active lane count across the fabric.
        let active_lanes: usize = phy.links().map(|l| l.active_lanes()).sum();
        assert!(
            active_lanes <= 48,
            "torus must not use more lanes than the grid had"
        );
    }

    #[test]
    fn identical_specs_plan_nothing() {
        let (grid, phy, topo) = grid_fabric();
        let plan = plan(&grid, &grid.clone(), &topo, &phy).unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.duration(&PlpExecutor::default()), SimDuration::ZERO);
    }

    #[test]
    fn missing_physical_link_is_reported() {
        let (grid, phy, _) = grid_fabric();
        let torus = TopologySpec::torus(4, 4, 1);
        // An empty topology graph has no links to re-lane.
        let empty = Topology::new(16);
        let err = plan(&grid, &torus, &empty, &phy).unwrap_err();
        assert!(matches!(err, ReconfigError::MissingLink { .. }));
    }

    #[test]
    fn thin_fabric_without_spare_lanes_cannot_grow_a_torus() {
        // A 1-lane grid has no lanes to donate and no link with spare lanes.
        let spec = TopologySpec::grid(3, 3, 1);
        let mut phy = PhyState::new();
        let topo = spec.instantiate(&mut phy, BitRate::from_gbps(25));
        let torus = TopologySpec::torus(3, 3, 1);
        let result = plan(&spec, &torus, &topo, &phy);
        assert!(matches!(result, Err(ReconfigError::NoLaneSource { .. })));
    }
}
