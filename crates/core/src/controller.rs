//! The Closed Ring Control decision engine.
//!
//! Once per control epoch the CRC receives a [`TelemetryReport`] from the
//! interconnect (the "closed ring" of feedback), prices every link, and emits
//! the [`PlpCommand`]s that move the fabric toward the policy's objective:
//!
//! * **adaptive FEC** — strengthen or relax codecs as per-lane BER drifts;
//! * **lane scaling** — power spare lanes up on congested links, shed lanes
//!   on idle ones;
//! * **power capping** — when the interconnect exceeds its budget, shed lanes
//!   on the least-utilised links until the estimate fits again;
//! * **topology escalation** — report when sustained congestion justifies a
//!   whole-fabric reconfiguration (the grid-to-torus move of Figure 2), which
//!   the fabric layer then plans via [`crate::reconfigure`].

use crate::policy::{CrcPolicy, PolicyThresholds};
use crate::price::{PriceBook, PriceNormalization};
use rackfabric_phy::adaptive_fec::AdaptiveFecController;
use rackfabric_phy::stats::TelemetryReport;
use rackfabric_phy::{PhyState, PlpCommand};
use rackfabric_sim::time::SimDuration;
use rackfabric_sim::units::Power;
use serde::{Deserialize, Serialize};

/// Configuration of the Closed Ring Control loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrcConfig {
    /// The optimisation policy.
    pub policy: CrcPolicy,
    /// Control epoch: how often telemetry is gathered and decisions made.
    pub epoch: SimDuration,
    /// Normalisation constants for the price book.
    pub normalization: PriceNormalization,
    /// Post-FEC BER target for the adaptive FEC primitive.
    pub fec_ber_target: f64,
}

impl Default for CrcConfig {
    fn default() -> Self {
        CrcConfig {
            policy: CrcPolicy::default(),
            epoch: SimDuration::from_micros(100),
            normalization: PriceNormalization::default(),
            fec_ber_target: 1e-12,
        }
    }
}

/// The decisions produced by one control epoch.
#[derive(Debug, Clone, Default)]
pub struct CrcDecision {
    /// PLP commands to apply this epoch.
    pub commands: Vec<PlpCommand>,
    /// True when sustained congestion justifies a whole-topology
    /// reconfiguration (handled by the fabric layer, not as a PLP command).
    pub escalate_topology: bool,
    /// Estimated power saving of the commands (static component), used for
    /// bookkeeping in the power-cap experiments.
    pub estimated_power_saving: Power,
}

/// The Closed Ring Control.
#[derive(Debug, Clone)]
pub struct ClosedRingControl {
    /// Static configuration.
    pub config: CrcConfig,
    thresholds: PolicyThresholds,
    fec: AdaptiveFecController,
    /// Number of epochs evaluated.
    pub epochs: u64,
    /// Number of PLP commands issued over the run.
    pub commands_issued: u64,
    /// Consecutive epochs with mean utilization above the topology threshold.
    hot_epochs: u32,
}

impl ClosedRingControl {
    /// Creates a controller.
    pub fn new(config: CrcConfig) -> Self {
        ClosedRingControl {
            thresholds: config.policy.thresholds(),
            fec: AdaptiveFecController::with_target(config.fec_ber_target),
            config,
            epochs: 0,
            commands_issued: 0,
            hot_epochs: 0,
        }
    }

    /// The thresholds the active policy implies.
    pub fn thresholds(&self) -> &PolicyThresholds {
        &self.thresholds
    }

    /// Prices every link from the latest telemetry.
    pub fn price(&self, report: &TelemetryReport) -> PriceBook {
        PriceBook::from_telemetry(report, self.thresholds.weights, &self.config.normalization)
    }

    /// Evaluates one control epoch: prices links and emits PLP commands.
    pub fn decide(&mut self, report: &TelemetryReport, phy: &PhyState) -> CrcDecision {
        self.epochs += 1;
        let mut decision = CrcDecision::default();

        // 1. Adaptive FEC (PLP #4): keep every link at its BER target with
        //    the cheapest sufficient codec.
        for id in phy.link_ids() {
            let link = phy.link(id).expect("id from link_ids");
            if !matches!(link.state, rackfabric_phy::LinkState::Up) {
                continue;
            }
            if let Some(mode) = self.fec.recommend(link) {
                decision
                    .commands
                    .push(PlpCommand::SetFec { link: id, mode });
            }
        }

        // 2. Congestion relief: power up spare lanes on hot links.
        for t in &report.links {
            if !t.up {
                continue;
            }
            let congested = t.utilization >= self.thresholds.congestion_high
                || t.congestion_score(self.config.normalization.queue_reference_bytes)
                    >= self.thresholds.congestion_high;
            if congested && t.active_lanes < t.total_lanes {
                decision.commands.push(PlpCommand::SetActiveLanes {
                    link: t.link,
                    lanes: t.total_lanes,
                });
            }
        }

        // 3. Power management: shed lanes on idle links, and if a budget is
        //    set and exceeded, keep shedding from the least utilised links
        //    until the estimated draw fits.
        if self.thresholds.power_budget.is_some() {
            for t in &report.links {
                if t.up && t.utilization <= self.thresholds.utilization_low && t.active_lanes > 1 {
                    let target = (t.active_lanes / 2).max(1);
                    decision.commands.push(PlpCommand::SetActiveLanes {
                        link: t.link,
                        lanes: target,
                    });
                    if let Some(link) = phy.link(t.link) {
                        decision.estimated_power_saving +=
                            phy.power_model
                                .lane_reduction_saving(link, t.active_lanes, target);
                    }
                }
            }
            if let Some(budget) = self.thresholds.power_budget {
                if report.total_power > budget {
                    let overshoot = report.total_power.saturating_sub(budget);
                    let mut recovered = decision.estimated_power_saving;
                    // Shed further lanes starting from the least utilised up
                    // links that were not already handled above.
                    let mut candidates: Vec<_> = report
                        .links
                        .iter()
                        .filter(|t| {
                            t.up && t.active_lanes > 1
                                && t.utilization > self.thresholds.utilization_low
                                && t.utilization < self.thresholds.congestion_high
                        })
                        .collect();
                    candidates.sort_by(|a, b| {
                        a.utilization
                            .partial_cmp(&b.utilization)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.link.cmp(&b.link))
                    });
                    for t in candidates {
                        if recovered >= overshoot {
                            break;
                        }
                        let target = (t.active_lanes / 2).max(1);
                        decision.commands.push(PlpCommand::SetActiveLanes {
                            link: t.link,
                            lanes: target,
                        });
                        if let Some(link) = phy.link(t.link) {
                            let saving =
                                phy.power_model
                                    .lane_reduction_saving(link, t.active_lanes, target);
                            recovered += saving;
                        }
                    }
                    decision.estimated_power_saving = recovered;
                }
            }
        }

        // 4. Topology escalation: sustained fabric-wide pressure means local
        //    lane tweaks are not enough and a topology change (e.g. the
        //    paper's grid -> torus) should be planned.
        if report.mean_utilization() >= self.thresholds.topology_reconfig_mean_utilization {
            self.hot_epochs += 1;
        } else {
            self.hot_epochs = 0;
        }
        decision.escalate_topology = self.hot_epochs >= 2;

        self.commands_issued += decision.commands.len() as u64;
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rackfabric_phy::media::Media;
    use rackfabric_sim::time::SimTime;
    use rackfabric_sim::units::{BitRate, Length};
    use std::collections::HashMap;

    fn rack(n_links: usize, lanes: usize) -> PhyState {
        let mut phy = PhyState::new();
        for i in 0..n_links {
            phy.add_link(
                i as u32,
                (i + 1) as u32,
                Media::optical_fiber(),
                Length::from_m(2),
                lanes,
                BitRate::from_gbps(25),
            );
        }
        phy
    }

    fn report_with_util(phy: &PhyState, util: f64) -> TelemetryReport {
        let utilization: HashMap<_, _> = phy.link_ids().into_iter().map(|id| (id, util)).collect();
        phy.telemetry_report(
            SimTime::from_micros(100),
            &utilization,
            &HashMap::new(),
            &HashMap::new(),
        )
    }

    #[test]
    fn idle_links_are_shedded_under_a_power_policy() {
        let phy = rack(4, 4);
        let mut crc = ClosedRingControl::new(CrcConfig {
            policy: CrcPolicy::PowerCap {
                budget: Power::from_kilowatts(10),
            },
            ..Default::default()
        });
        let report = report_with_util(&phy, 0.01);
        let d = crc.decide(&report, &phy);
        let sheds = d
            .commands
            .iter()
            .filter(|c| matches!(c, PlpCommand::SetActiveLanes { lanes, .. } if *lanes < 4))
            .count();
        assert_eq!(sheds, 4, "all idle links shed lanes");
        assert!(d.estimated_power_saving > Power::ZERO);
        assert!(!d.escalate_topology);
    }

    #[test]
    fn latency_policy_does_not_shed_lanes() {
        let phy = rack(4, 4);
        let mut crc = ClosedRingControl::new(CrcConfig {
            policy: CrcPolicy::LatencyMinimize,
            ..Default::default()
        });
        let report = report_with_util(&phy, 0.01);
        let d = crc.decide(&report, &phy);
        assert!(
            d.commands
                .iter()
                .all(|c| !matches!(c, PlpCommand::SetActiveLanes { .. })),
            "latency policy keeps lanes hot: {:?}",
            d.commands
        );
    }

    #[test]
    fn congested_links_get_their_spare_lanes_back() {
        let mut phy = rack(2, 4);
        // Halve the lanes on every link first.
        let ids = phy.link_ids();
        for id in &ids {
            phy.link_mut(*id).unwrap().set_active_lanes(2).unwrap();
        }
        let mut crc = ClosedRingControl::new(CrcConfig::default());
        let report = report_with_util(&phy, 0.9);
        let d = crc.decide(&report, &phy);
        let widened = d
            .commands
            .iter()
            .filter(|c| matches!(c, PlpCommand::SetActiveLanes { lanes, .. } if *lanes == 4))
            .count();
        assert_eq!(widened, 2, "both hot links should be widened");
    }

    #[test]
    fn sustained_congestion_escalates_to_topology_reconfiguration() {
        let phy = rack(4, 2);
        let mut crc = ClosedRingControl::new(CrcConfig::default());
        let hot = report_with_util(&phy, 0.9);
        let cool = report_with_util(&phy, 0.1);
        assert!(
            !crc.decide(&hot, &phy).escalate_topology,
            "one hot epoch is not enough"
        );
        assert!(
            crc.decide(&hot, &phy).escalate_topology,
            "two consecutive hot epochs escalate"
        );
        // A cool epoch resets the streak.
        assert!(!crc.decide(&cool, &phy).escalate_topology);
        assert!(!crc.decide(&hot, &phy).escalate_topology);
        assert_eq!(crc.epochs, 4);
    }

    #[test]
    fn power_budget_overshoot_sheds_moderately_used_links_too() {
        let phy = rack(8, 4);
        // A tiny budget that an 8-link 4-lane optical fabric certainly exceeds.
        let mut crc = ClosedRingControl::new(CrcConfig {
            policy: CrcPolicy::PowerCap {
                budget: Power::from_watts(5),
            },
            ..Default::default()
        });
        // Moderate utilization: not idle, not congested.
        let report = report_with_util(&phy, 0.4);
        let d = crc.decide(&report, &phy);
        assert!(
            d.commands
                .iter()
                .any(|c| matches!(c, PlpCommand::SetActiveLanes { .. })),
            "over budget, the CRC must shed lanes even on moderately used links"
        );
        assert!(d.estimated_power_saving > Power::ZERO);
    }

    #[test]
    fn pricing_uses_the_policy_weights() {
        let phy = rack(2, 4);
        let crc = ClosedRingControl::new(CrcConfig {
            policy: CrcPolicy::LatencyMinimize,
            ..Default::default()
        });
        let report = report_with_util(&phy, 0.5);
        let book = crc.price(&report);
        assert_eq!(book.len(), 2);
        assert_eq!(book.weights.power, 0.0);
    }
}
