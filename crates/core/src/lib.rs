//! # rackfabric
//!
//! A reproduction of **"High speed adaptive rack-scale fabrics"** (Sella,
//! Moore, Zilberman — SIGCOMM 2018): an adaptive rack-scale interconnect
//! built from *Physical Layer Primitives* (PLP) orchestrated by a *Closed
//! Ring Control* (CRC).
//!
//! The architecture's premise is that at rack scale the latency bottleneck is
//! packet switching itself, not the medium, and that the power budget of a
//! traditional rack must be respected. The fabric therefore exposes the
//! physical layer's reconfigurability (lane bundling/breaking, bypass,
//! power gating, adaptive FEC, per-lane statistics) as a uniform command set,
//! and closes a control loop over per-link telemetry to decide when spending
//! a reconfiguration is worth it.
//!
//! ## Crate layout
//!
//! * [`price`] — per-link price tags built from telemetry (latency,
//!   congestion, power, health) and the cost map handed to routing.
//! * [`policy`] — what the control loop optimises for (latency, power cap,
//!   congestion balance, hybrid).
//! * [`controller`] — the Closed Ring Control decision engine.
//! * [`breakeven`] — the minimum-flow-size-for-reconfiguration analysis.
//! * [`reconfigure`] — planning and applying whole-topology changes
//!   (e.g. grid → torus) as PLP command sequences.
//! * [`fabric`] — the discrete-event fabric simulation tying the physical
//!   layer, switching, workloads and the CRC together.
//! * [`shard`] — the sharded multi-rack engine: the same fabric partitioned
//!   into rack groups, advanced in conservative time windows with
//!   bit-identical results for any shard count.
//! * [`baseline`] — the same fabric with the CRC disabled (the static
//!   packet-switched comparison point).
//! * [`metrics`] — per-run metrics and summaries.
//!
//! ## Quick start
//!
//! ```
//! use rackfabric::prelude::*;
//! use rackfabric_sim::prelude::*;
//! use rackfabric_workload::{MapReduceShuffle, Workload};
//!
//! // A 3x3 grid rack, two lanes per link, running a small shuffle.
//! let spec = TopologySpec::grid(3, 3, 2);
//! let flows = MapReduceShuffle::all_to_all(9, Bytes::from_kib(8))
//!     .generate(&mut DetRng::new(42));
//!
//! let mut config = FabricConfig::adaptive(spec);
//! config.sim = SimConfig::with_seed(42).horizon(SimTime::from_millis(100));
//! let fabric = run_fabric(config, flows);
//!
//! assert!(fabric.all_flows_complete());
//! let summary = fabric.metrics.summary();
//! assert!(summary.packet_latency.p99 > 0.0);
//! ```

pub mod baseline;
pub mod breakeven;
pub mod controller;
pub mod fabric;
pub mod metrics;
pub mod policy;
pub mod price;
pub mod reconfigure;
pub mod shard;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use crate::baseline::{baseline_config, run_baseline};
    pub use crate::breakeven::{evaluate as breakeven_evaluate, min_flow_size, BreakEvenInput};
    pub use crate::controller::{ClosedRingControl, CrcConfig, CrcDecision};
    pub use crate::fabric::{run_fabric, AdaptiveFabric, FabricConfig, FabricEvent};
    pub use crate::metrics::{FabricMetrics, RunSummary};
    pub use crate::policy::CrcPolicy;
    pub use crate::price::{LinkPrice, PriceBook, PriceNormalization, PriceWeights};
    pub use crate::reconfigure::{plan as plan_reconfiguration, ReconfigPlan};
    pub use crate::shard::{run_sharded, ShardedConfig, ShardedFabric, ShardedRun};
    pub use rackfabric_phy::{FecMode, PlpCommand, PlpTiming, PowerState};
    pub use rackfabric_topo::routing::RoutingAlgorithm;
    pub use rackfabric_topo::spec::TopologySpec;
}

pub use baseline::run_baseline;
pub use controller::{ClosedRingControl, CrcConfig};
pub use fabric::{run_fabric, AdaptiveFabric, FabricConfig};
pub use metrics::{FabricMetrics, RunSummary};
pub use policy::CrcPolicy;
pub use price::{PriceBook, PriceWeights};
