//! The static packet-switched baseline.
//!
//! The baseline is the *same* substrate (same switches, same links, same
//! workload) with the Closed Ring Control switched off and hop-count routing:
//! no lane scaling, no adaptive FEC, no bypasses, no topology changes. Every
//! experiment that claims a win for the adaptive fabric compares against this
//! configuration, exactly as the paper's "backwards compatibility" section
//! implies (the baseline is what you get if you never issue a PLP command).

use crate::fabric::{run_fabric, AdaptiveFabric, FabricConfig};
use rackfabric_topo::spec::TopologySpec;
use rackfabric_workload::Flow;

/// Builds the baseline configuration for a topology (thin wrapper around
/// [`FabricConfig::baseline`] so call sites read clearly).
pub fn baseline_config(spec: TopologySpec) -> FabricConfig {
    FabricConfig::baseline(spec)
}

/// Runs the static baseline over a workload.
pub fn run_baseline(spec: TopologySpec, flows: Vec<Flow>) -> AdaptiveFabric {
    run_fabric(FabricConfig::baseline(spec), flows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rackfabric_sim::units::Bytes;
    use rackfabric_topo::routing::RoutingAlgorithm;

    #[test]
    fn baseline_config_disables_the_crc() {
        let c = baseline_config(TopologySpec::grid(2, 2, 2));
        assert!(!c.adaptive);
        assert_eq!(c.routing, RoutingAlgorithm::ShortestHop);
        assert!(c.upgrade_spec.is_none());
    }

    #[test]
    fn baseline_never_issues_plp_commands() {
        use rackfabric_sim::config::SimConfig;
        use rackfabric_sim::time::SimTime;
        use rackfabric_sim::DetRng;
        use rackfabric_workload::{MapReduceShuffle, Workload};
        let flows =
            MapReduceShuffle::all_to_all(4, Bytes::from_kib(4)).generate(&mut DetRng::new(1));
        let mut config = baseline_config(TopologySpec::grid(2, 2, 2));
        config.sim = SimConfig::with_seed(1).horizon(SimTime::from_millis(50));
        let fabric = crate::fabric::run_fabric(config, flows);
        assert!(fabric.all_flows_complete());
        assert!(fabric.metrics.reconfig_events.is_empty());
        assert_eq!(fabric.metrics.topology_reconfigurations, 0);
    }
}
