//! Per-link price tags.
//!
//! "The Closed Ring Control uses per-link price tags, with respect to metrics
//! such as latency, congestion, link health etc. to allocate PLPs and
//! schedule flows." A [`LinkPrice`] decomposes a link's cost into those
//! components; a [`PriceBook`] holds the price of every link and doubles as
//! the cost map handed to the routing layer, which is how "both routing as
//! well as changes to the topology are subject to the tools of control
//! theory".

use rackfabric_phy::stats::{LinkTelemetry, TelemetryReport};
use rackfabric_phy::LinkId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Relative weights of the price components.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriceWeights {
    /// Weight of the latency component.
    pub latency: f64,
    /// Weight of the congestion component.
    pub congestion: f64,
    /// Weight of the power component.
    pub power: f64,
    /// Weight of the health (error-rate) component.
    pub health: f64,
}

impl Default for PriceWeights {
    fn default() -> Self {
        PriceWeights {
            latency: 1.0,
            congestion: 1.0,
            power: 0.3,
            health: 2.0,
        }
    }
}

impl PriceWeights {
    /// Weights that only care about latency (used by the latency-minimising
    /// policy).
    pub fn latency_only() -> Self {
        PriceWeights {
            latency: 1.0,
            congestion: 0.5,
            power: 0.0,
            health: 1.0,
        }
    }
    /// Weights that make power expensive (used by the power-cap policy).
    pub fn power_aware() -> Self {
        PriceWeights {
            latency: 0.5,
            congestion: 0.5,
            power: 2.0,
            health: 1.0,
        }
    }
}

/// The price of one link, decomposed by component. All components are
/// normalised to roughly [0, 1] so the weights are comparable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkPrice {
    /// Which link this price describes.
    pub link: LinkId,
    /// Normalised one-way latency (1.0 at `latency_reference_ns`).
    pub latency: f64,
    /// Congestion score in [0, 1].
    pub congestion: f64,
    /// Normalised power draw (1.0 at `power_reference_w`).
    pub power: f64,
    /// Health penalty in [0, 1]: 0 for a clean link, 1 for an unusable one.
    pub health_penalty: f64,
}

impl LinkPrice {
    /// The scalar price under `weights`.
    pub fn total(&self, weights: &PriceWeights) -> f64 {
        weights.latency * self.latency
            + weights.congestion * self.congestion
            + weights.power * self.power
            + weights.health * self.health_penalty
    }
}

/// Normalisation constants for the price components.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriceNormalization {
    /// Latency that maps to a price of 1.0.
    pub latency_reference_ns: f64,
    /// Power that maps to a price of 1.0, in watts.
    pub power_reference_w: f64,
    /// Queue depth (bytes) treated as fully congested.
    pub queue_reference_bytes: f64,
    /// Post-FEC BER target used for the health score.
    pub ber_target: f64,
}

impl Default for PriceNormalization {
    fn default() -> Self {
        PriceNormalization {
            latency_reference_ns: 1_000.0,
            power_reference_w: 10.0,
            queue_reference_bytes: 64_000.0,
            ber_target: 1e-12,
        }
    }
}

/// The current price of every link.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PriceBook {
    prices: HashMap<LinkId, LinkPrice>,
    /// The weights the book was built with.
    pub weights: PriceWeights,
}

impl PriceBook {
    /// Builds a price book from a telemetry report.
    pub fn from_telemetry(
        report: &TelemetryReport,
        weights: PriceWeights,
        norm: &PriceNormalization,
    ) -> PriceBook {
        let mut prices = HashMap::new();
        for t in &report.links {
            prices.insert(t.link, Self::price_link(t, norm));
        }
        PriceBook { prices, weights }
    }

    fn price_link(t: &LinkTelemetry, norm: &PriceNormalization) -> LinkPrice {
        let latency = (t.latency.as_nanos_f64() / norm.latency_reference_ns).max(0.0);
        let congestion = t.congestion_score(norm.queue_reference_bytes);
        let power = (t.power.as_watts_f64() / norm.power_reference_w).max(0.0);
        let health_penalty = 1.0 - t.health_score(norm.ber_target);
        LinkPrice {
            link: t.link,
            latency,
            congestion,
            power,
            health_penalty,
        }
    }

    /// The price of one link, if known.
    pub fn price(&self, link: LinkId) -> Option<&LinkPrice> {
        self.prices.get(&link)
    }

    /// The scalar cost map consumed by the routing layer: down links get an
    /// infinite cost and are therefore never routed over.
    pub fn as_cost_map(&self) -> HashMap<LinkId, f64> {
        self.prices
            .iter()
            .map(|(id, p)| {
                let cost = if p.health_penalty >= 1.0 {
                    f64::INFINITY
                } else {
                    // Strictly positive so Dijkstra terminates.
                    p.total(&self.weights).max(1e-6)
                };
                (*id, cost)
            })
            .collect()
    }

    /// Links sorted from most to least expensive.
    pub fn most_expensive(&self) -> Vec<LinkId> {
        let mut v: Vec<(&LinkId, f64)> = self
            .prices
            .iter()
            .map(|(id, p)| (id, p.total(&self.weights)))
            .collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(b.0))
        });
        v.into_iter().map(|(id, _)| *id).collect()
    }

    /// Number of priced links.
    pub fn len(&self) -> usize {
        self.prices.len()
    }
    /// True if no links are priced.
    pub fn is_empty(&self) -> bool {
        self.prices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rackfabric_phy::fec::FecMode;
    use rackfabric_sim::time::{SimDuration, SimTime};
    use rackfabric_sim::units::{BitRate, Power};

    fn telemetry(link: u64, util: f64, latency_ns: u64, power_w: u64, up: bool) -> LinkTelemetry {
        LinkTelemetry {
            link: LinkId(link),
            at: SimTime::from_micros(1),
            active_lanes: 4,
            total_lanes: 4,
            capacity: BitRate::from_gbps(100),
            utilization: util,
            worst_pre_fec_ber: 1e-13,
            post_fec_ber: 1e-15,
            fec_mode: FecMode::None,
            latency: SimDuration::from_nanos(latency_ns),
            queue_occupancy_bytes: 0.0,
            power: Power::from_watts(power_w),
            up,
        }
    }

    fn report(links: Vec<LinkTelemetry>) -> TelemetryReport {
        let mut r = TelemetryReport::new(SimTime::from_micros(1));
        r.links = links;
        r
    }

    #[test]
    fn congested_links_are_priced_higher() {
        let r = report(vec![
            telemetry(0, 0.1, 200, 3, true),
            telemetry(1, 0.95, 200, 3, true),
        ]);
        let book =
            PriceBook::from_telemetry(&r, PriceWeights::default(), &PriceNormalization::default());
        assert_eq!(book.len(), 2);
        let p0 = book.price(LinkId(0)).unwrap().total(&book.weights);
        let p1 = book.price(LinkId(1)).unwrap().total(&book.weights);
        assert!(p1 > p0);
        assert_eq!(book.most_expensive()[0], LinkId(1));
    }

    #[test]
    fn down_links_are_unroutable() {
        let r = report(vec![
            telemetry(0, 0.1, 200, 3, true),
            telemetry(1, 0.1, 200, 3, false),
        ]);
        let book =
            PriceBook::from_telemetry(&r, PriceWeights::default(), &PriceNormalization::default());
        let costs = book.as_cost_map();
        assert!(costs[&LinkId(0)].is_finite());
        assert!(costs[&LinkId(1)].is_infinite());
        assert!(costs[&LinkId(0)] > 0.0, "costs must be strictly positive");
    }

    #[test]
    fn weights_change_the_ordering() {
        // Link 0: high latency, low power. Link 1: low latency, high power.
        let r = report(vec![
            telemetry(0, 0.1, 2_000, 1, true),
            telemetry(1, 0.1, 100, 20, true),
        ]);
        let latency_book = PriceBook::from_telemetry(
            &r,
            PriceWeights::latency_only(),
            &PriceNormalization::default(),
        );
        let power_book = PriceBook::from_telemetry(
            &r,
            PriceWeights::power_aware(),
            &PriceNormalization::default(),
        );
        assert_eq!(latency_book.most_expensive()[0], LinkId(0));
        assert_eq!(power_book.most_expensive()[0], LinkId(1));
    }

    #[test]
    fn empty_report_gives_empty_book() {
        let book = PriceBook::from_telemetry(
            &TelemetryReport::new(SimTime::ZERO),
            PriceWeights::default(),
            &PriceNormalization::default(),
        );
        assert!(book.is_empty());
        assert!(book.as_cost_map().is_empty());
        assert!(book.most_expensive().is_empty());
    }
}
