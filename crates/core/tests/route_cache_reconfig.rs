//! `RouteCache` epoch invalidation across a reconfiguration fence.
//!
//! The route cache must serve whole epochs from memory, yet recompute every
//! route after a whole-rack reconfiguration (the grid→torus escalation):
//! stale routes reference links that may have been re-laned or split, and
//! traffic resuming after the fence must see the new fabric. Before this
//! test the property was only exercised indirectly through scenario
//! determinism; here it is pinned directly on both engines.

use rackfabric::fabric::{run_fabric, FabricConfig};
use rackfabric::shard::{run_sharded, ShardedConfig};
use rackfabric_sim::config::SimConfig;
use rackfabric_sim::time::{SimDuration, SimTime};
use rackfabric_sim::units::Bytes;
use rackfabric_sim::DetRng;
use rackfabric_topo::routing::RoutingAlgorithm;
use rackfabric_topo::spec::TopologySpec;
use rackfabric_workload::{Flow, MapReduceShuffle, Workload};

fn shuffle_flows() -> Vec<Flow> {
    MapReduceShuffle::all_to_all(16, Bytes::from_kib(64)).generate(&mut DetRng::new(7))
}

/// Shortest-hop adaptive config: the cache is invalidated **only** by
/// reconfigurations (min-cost routing would also bump it on every price
/// update and wash the signal out).
fn config(upgrade: bool) -> FabricConfig {
    let mut c = FabricConfig::adaptive(TopologySpec::grid(4, 4, 2));
    c.routing = RoutingAlgorithm::ShortestHop;
    c.upgrade_spec = upgrade.then(|| TopologySpec::torus(4, 4, 1));
    c.crc.epoch = SimDuration::from_micros(20);
    c.sim = SimConfig::with_seed(4).horizon(SimTime::from_millis(200));
    c
}

#[test]
fn reconfiguration_fence_invalidates_the_route_cache() {
    let static_run = run_fabric(config(false), shuffle_flows());
    let upgraded = run_fabric(config(true), shuffle_flows());

    assert!(static_run.all_flows_complete());
    assert!(upgraded.all_flows_complete());
    assert_eq!(
        upgraded.metrics.topology_reconfigurations, 1,
        "the upgraded run must actually reconfigure"
    );

    let before = static_run.route_cache_stats();
    let after = upgraded.route_cache_stats();
    // Without an invalidation the post-upgrade routes would be served stale
    // from the cache and the miss counts would match; the epoch bump forces
    // at least one fresh tree per active source after the fence.
    assert!(
        after.misses > before.misses,
        "upgrade must force route recomputation (static misses {}, upgraded misses {})",
        before.misses,
        after.misses
    );
    // The cache still carries the bulk of the traffic in both runs.
    assert!(
        before.hit_rate() > 0.5,
        "static hit rate {}",
        before.hit_rate()
    );
    assert!(
        after.hit_rate() > 0.5,
        "upgraded hit rate {}",
        after.hit_rate()
    );
    // The metrics surface agrees with the cache's own counters.
    let summary = upgraded.metrics.summary();
    assert_eq!(summary.route_cache_misses, after.misses);
    assert_eq!(summary.route_cache_hits, after.hits);
}

#[test]
fn sharded_engine_invalidates_per_shard_caches_across_the_fence() {
    let run = |upgrade: bool| {
        let mut c = config(upgrade);
        // The sharded engine completes the same shuffle on its own timeline
        // (acks add latency); keep the same horizon.
        c.sim = SimConfig::with_seed(4).horizon(SimTime::from_millis(250));
        run_sharded(ShardedConfig::new(c, 4), shuffle_flows())
    };
    let static_run = run(false);
    let upgraded = run(true);
    assert!(static_run.all_flows_complete);
    assert!(upgraded.all_flows_complete);
    assert_eq!(upgraded.metrics.topology_reconfigurations, 1);
    let before = static_run.metrics.summary();
    let after = upgraded.metrics.summary();
    assert!(
        after.route_cache_misses > before.route_cache_misses,
        "per-shard caches must all recompute after the fence \
         (static misses {}, upgraded misses {})",
        before.route_cache_misses,
        after.route_cache_misses
    );
    assert!(after.route_cache_hit_rate > 0.5);
}
