//! # rackfabric-topo
//!
//! Topologies and routing for the adaptive rack-scale fabric.
//!
//! Rack-scale systems in the paper are direct-connect fabrics: every node
//! (compute sled, NVMe sled, DRAM sled) embeds a small switch and links run
//! node-to-node, so the interconnect's shape — grid, torus, ring, hypercube —
//! is itself reconfigurable through the Physical Layer Primitives. This crate
//! provides:
//!
//! * [`graph`] — the runtime topology graph ([`Topology`]) mapping node pairs
//!   to the physical [`LinkId`](rackfabric_phy::LinkId)s that realise them.
//! * [`spec`] — declarative topology descriptions ([`TopologySpec`]) and
//!   builders for grids, tori, rings, lines, hypercubes and fat-trees, plus
//!   instantiation against a [`PhyState`](rackfabric_phy::PhyState).
//! * [`routing`] — shortest-path, cost-aware (Dijkstra), ECMP and
//!   dimension-ordered routing, the substrate over which the Closed Ring
//!   Control applies its per-link prices.
//! * [`reconfig`] — structural diffs between two topology specs, the input to
//!   the reconfiguration planner in the core crate (e.g. the paper's
//!   grid-at-2-lanes to torus-at-1-lane example).
//! * [`arena`] — dense [`LinkIdx`]/[`PortIdx`] interning of the live links,
//!   built once per topology epoch so per-packet state lives in plain
//!   vectors instead of hash maps.
//! * [`cache`] — the epoch-invalidated [`RouteCache`] that amortises route
//!   computation across every train of a `(src, dst)` pair.
//! * [`partition`] — node-to-shard rack grouping and the per-epoch cut-edge
//!   metadata (which links cross shards) the sharded engine synchronises on.

pub mod arena;
pub mod cache;
pub mod graph;
pub mod partition;
pub mod reconfig;
pub mod routing;
pub mod spec;

pub use arena::{LinkArena, LinkIdx, PortIdx};
pub use cache::{InternedRoute, RouteCache, RouteCacheStats};
pub use graph::{NodeId, Topology};
pub use partition::FabricPartition;
pub use reconfig::{EdgeChange, SpecDiff};
pub use routing::{dijkstra, ecmp_paths, shortest_path, Route, RoutingAlgorithm};
pub use spec::{EdgeSpec, TopologyKind, TopologySpec};
