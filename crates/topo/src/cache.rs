//! Epoch-invalidated route caching.
//!
//! Flow admission used to re-run BFS/Dijkstra for every injected packet —
//! by far the most expensive per-packet work in the fabric model. Within one
//! *topology epoch* (the interval between reconfigurations, and between
//! price updates for cost-aware routing) the route for a `(src, dst)` pair
//! is a pure function, so it can be computed once, interned against the
//! [`LinkArena`], and reused by every subsequent
//! train of that pair.
//!
//! Invalidation is by epoch counter: bumping the epoch makes every cached
//! entry stale without touching the map (stale entries are overwritten on
//! next access), so invalidation is O(1) no matter how many pairs are
//! cached.

use crate::arena::{LinkArena, LinkIdx};
use crate::graph::NodeId;
use crate::routing::Route;
use std::collections::HashMap;
use std::sync::Arc;

/// A route resolved against a [`LinkArena`]: the public [`Route`] plus the
/// dense link indices the hot path consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternedRoute {
    /// The underlying node/link route.
    pub route: Route,
    /// `route.links` interned to dense indices, same order.
    pub links: Vec<LinkIdx>,
}

impl InternedRoute {
    /// Interns `route` against `arena`. Returns `None` when the route
    /// references a link the arena does not know (a torn-down link id from a
    /// previous epoch) — callers should recompute the route.
    pub fn intern(route: Route, arena: &LinkArena) -> Option<InternedRoute> {
        let links = route
            .links
            .iter()
            .map(|&id| arena.index(id))
            .collect::<Option<Vec<_>>>()?;
        Some(InternedRoute { route, links })
    }

    /// Number of hops.
    #[inline]
    pub fn hops(&self) -> usize {
        self.links.len()
    }
}

/// Hit/miss counters of a [`RouteCache`], cheap to copy into run metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to recompute (cold or stale entry).
    pub misses: u64,
}

impl RouteCacheStats {
    /// Fraction of lookups served from the cache (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Cache key: a source/destination pair plus a selector discriminating
/// routes that legitimately differ per flow on the same pair (ECMP).
type Key = (NodeId, NodeId, u64);

/// An epoch-tagged cache of interned routes.
///
/// `None` values are cached too: "no route exists right now" is just as
/// expensive to recompute as a route.
#[derive(Debug, Default)]
pub struct RouteCache {
    epoch: u64,
    entries: HashMap<Key, (u64, Option<Arc<InternedRoute>>)>,
    stats: RouteCacheStats,
}

impl RouteCache {
    /// An empty cache at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current epoch.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Invalidates every cached route in O(1) by advancing the epoch. Call
    /// on reconfiguration, and on every price update when routing is
    /// cost-aware.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Looks up `(src, dst, selector)` in the current epoch. The outer
    /// `Option` is hit/miss; the inner one is the cached answer (which may
    /// be "no route"). Counts towards the hit/miss statistics.
    pub fn lookup(
        &mut self,
        src: NodeId,
        dst: NodeId,
        selector: u64,
    ) -> Option<Option<Arc<InternedRoute>>> {
        if let Some((epoch, cached)) = self.entries.get(&(src, dst, selector)) {
            if *epoch == self.epoch {
                self.stats.hits += 1;
                return Some(cached.clone());
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Stores an answer for `(src, dst, selector)` at the current epoch.
    /// Used to pre-populate whole single-source route trees after one miss.
    pub fn insert(
        &mut self,
        src: NodeId,
        dst: NodeId,
        selector: u64,
        value: Option<Arc<InternedRoute>>,
    ) {
        self.entries
            .insert((src, dst, selector), (self.epoch, value));
    }

    /// Looks up the route for `(src, dst, selector)` in the current epoch,
    /// computing and caching it via `compute` on a miss.
    pub fn get_or_compute(
        &mut self,
        src: NodeId,
        dst: NodeId,
        selector: u64,
        compute: impl FnOnce() -> Option<Arc<InternedRoute>>,
    ) -> Option<Arc<InternedRoute>> {
        match self.lookup(src, dst, selector) {
            Some(cached) => cached,
            None => {
                let computed = compute();
                self.insert(src, dst, selector, computed.clone());
                computed
            }
        }
    }

    /// Hit/miss counters accumulated since construction.
    #[inline]
    pub fn stats(&self) -> RouteCacheStats {
        self.stats
    }

    /// Number of stored entries (live and stale).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every entry and resets the counters (the epoch is retained).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.stats = RouteCacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::shortest_path;
    use crate::spec::TopologySpec;
    use rackfabric_phy::PhyState;
    use rackfabric_sim::units::BitRate;

    fn setup() -> (crate::graph::Topology, LinkArena) {
        let mut phy = PhyState::new();
        let topo = TopologySpec::grid(3, 3, 1).instantiate(&mut phy, BitRate::from_gbps(25));
        let arena = LinkArena::build(&topo);
        (topo, arena)
    }

    #[test]
    fn caches_within_an_epoch_and_recomputes_after_bump() {
        let (topo, arena) = setup();
        let mut cache = RouteCache::new();
        let mut computes = 0;
        for _ in 0..5 {
            let r = cache.get_or_compute(NodeId(0), NodeId(8), 0, || {
                computes += 1;
                shortest_path(&topo, NodeId(0), NodeId(8))
                    .and_then(|r| InternedRoute::intern(r, &arena))
                    .map(Arc::new)
            });
            assert_eq!(r.unwrap().hops(), 4);
        }
        assert_eq!(computes, 1, "one compute serves the whole epoch");
        assert_eq!(cache.stats().hits, 4);
        assert_eq!(cache.stats().misses, 1);

        cache.bump_epoch();
        cache.get_or_compute(NodeId(0), NodeId(8), 0, || {
            computes += 1;
            None
        });
        assert_eq!(computes, 2, "bumping the epoch invalidates the entry");
    }

    #[test]
    fn selector_discriminates_ecmp_flows() {
        let (_, _) = setup();
        let mut cache = RouteCache::new();
        cache.get_or_compute(NodeId(0), NodeId(1), 7, || None);
        cache.get_or_compute(NodeId(0), NodeId(1), 8, || None);
        assert_eq!(cache.stats().misses, 2, "different selectors are distinct");
        cache.get_or_compute(NodeId(0), NodeId(1), 7, || None);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn negative_results_are_cached() {
        let mut cache = RouteCache::new();
        let mut computes = 0;
        for _ in 0..3 {
            let r = cache.get_or_compute(NodeId(0), NodeId(5), 0, || {
                computes += 1;
                None
            });
            assert!(r.is_none());
        }
        assert_eq!(computes, 1, "'no route' is cached like any other answer");
    }

    #[test]
    fn interning_fails_for_unknown_links() {
        let (topo, arena) = setup();
        let route = shortest_path(&topo, NodeId(0), NodeId(8)).unwrap();
        let mut broken = route.clone();
        broken.links[0] = rackfabric_phy::LinkId(9999);
        assert!(InternedRoute::intern(route, &arena).is_some());
        assert!(InternedRoute::intern(broken, &arena).is_none());
    }

    #[test]
    fn hit_rate_counts() {
        let stats = RouteCacheStats { hits: 3, misses: 1 };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(RouteCacheStats::default().hit_rate(), 0.0);
    }
}
