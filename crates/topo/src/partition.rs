//! Partitioning a fabric into shards (rack groups).
//!
//! The sharded engine splits the fabric's dense per-link/per-port state
//! along the [`LinkIdx`]/[`PortIdx`] boundary: every
//! node — and with it every directed port the node transmits on — is owned
//! by exactly one **shard**, and links whose endpoints live in different
//! shards form the **cut**. Packet trains crossing a cut link are handed
//! between shards through mailboxes; the minimum latency across the cut
//! bounds how far shards may run ahead of each other (the conservative
//! lookahead).
//!
//! Shards are built from whole **racks** (the connected components of the
//! intra-rack link subgraph, [`TopologySpec::rack_of`](crate::spec::TopologySpec::rack_of)):
//! consecutive rack ids are grouped into contiguous rack ranges, and a node
//! belongs to the shard of its rack. Because intra-rack links by definition
//! join nodes of the same rack — and racks are never split across shards —
//! **every cut link is inter-rack by construction**. That is the invariant
//! the conservative lookahead relies on: it minimises latency over the
//! inter-rack link class only, and no envelope can cross shards faster than
//! that minimum. Every builder numbers racks in node order (row bands of a
//! torus, host-block+leaf cells of a Clos), so rack ranges are the same
//! grouping a multi-rack deployment would cable.
//!
//! Rack ranges are balanced (sizes differ by at most one rack) and then
//! greedily min-cut refined: shard boundaries shift one rack at a time,
//! staying balanced, whenever that strictly reduces the number of cut
//! links. A partition is a pure function of `(rack table, shard count,
//! arena)`; the cut mask additionally depends on the link set and is
//! rebuilt together with the [`LinkArena`] after whole-rack
//! reconfigurations. Requesting more shards than there are racks clamps to
//! the rack count (a rack is never split).

use crate::arena::{LinkArena, LinkIdx, PortIdx};
use crate::graph::NodeId;

/// A node-to-shard assignment plus the derived cut-edge metadata for one
/// topology epoch.
#[derive(Debug, Clone)]
pub struct FabricPartition {
    shards: usize,
    /// `node index -> shard`.
    owner: Vec<u32>,
    /// `LinkIdx -> crosses a shard boundary`.
    cut: Vec<bool>,
    cut_count: usize,
}

impl FabricPartition {
    /// Partitions the fabric into `shards` contiguous **rack** groups and
    /// derives the cut mask from `arena`. `racks` is the node-to-rack table
    /// from [`TopologySpec::rack_of`](crate::spec::TopologySpec::rack_of);
    /// whole racks are never split, so `shards` is clamped to
    /// `1..=rack_count`.
    ///
    /// The rack ranges are **balanced** (sizes differ by at most one rack)
    /// and then **min-cut refined**: boundaries between adjacent shards are
    /// greedily nudged one rack at a time — staying balanced and keeping
    /// every shard non-empty — whenever the shift strictly reduces the
    /// number of links crossing shard boundaries. On a dragonfly sharded by
    /// group the cut is invariant (all group pairs are linked), but on
    /// fabrics with uneven inter-rack wiring the refinement parks the
    /// remainder racks where the cut is thinnest. The whole construction is
    /// a pure function of `(rack table, shard count, arena link endpoints)`,
    /// and results never depend on it — ownership only decides *where* an
    /// event executes, never what it computes.
    pub fn build(racks: &[u32], shards: usize, arena: &LinkArena) -> Self {
        assert!(!racks.is_empty(), "cannot partition an empty fabric");
        let rack_count = racks.iter().map(|&r| r as usize + 1).max().unwrap_or(1);
        let shards = shards.clamp(1, rack_count);
        // Balanced contiguous chunking: the first `rem` shards carry one
        // extra rack. `boundary[i]` is the first rack of shard `i + 1`.
        let base = rack_count / shards;
        let rem = rack_count % shards;
        let mut boundary: Vec<usize> = Vec::with_capacity(shards - 1);
        let mut start = 0;
        for s in 0..shards - 1 {
            start += base + usize::from(s < rem);
            boundary.push(start);
        }
        // Link weight between each rack pair, for the cut-aware refinement.
        let mut weights: std::collections::HashMap<(u32, u32), usize> =
            std::collections::HashMap::new();
        for (idx, _) in arena.iter() {
            let (a, b) = arena.endpoints(idx);
            if let (Some(&ra), Some(&rb)) = (racks.get(a.index()), racks.get(b.index())) {
                if ra != rb {
                    let pair = if ra < rb { (ra, rb) } else { (rb, ra) };
                    *weights.entry(pair).or_insert(0) += 1;
                }
            }
        }
        let mut weights: Vec<((u32, u32), usize)> = weights.into_iter().collect();
        weights.sort_unstable();
        let shard_of = |boundary: &[usize], rack: u32| -> usize {
            boundary.partition_point(|&b| b <= rack as usize)
        };
        let cut_of = |boundary: &[usize]| -> usize {
            weights
                .iter()
                .filter(|((ra, rb), _)| shard_of(boundary, *ra) != shard_of(boundary, *rb))
                .map(|(_, w)| w)
                .sum()
        };
        let balanced = |boundary: &[usize]| -> bool {
            let mut lo = rack_count;
            let mut hi = 0;
            let mut prev = 0;
            for &b in boundary.iter().chain(std::iter::once(&rack_count)) {
                if b <= prev {
                    return false; // an empty shard
                }
                lo = lo.min(b - prev);
                hi = hi.max(b - prev);
                prev = b;
            }
            hi - lo <= 1
        };
        // Greedy first-improvement passes: deterministic (left to right,
        // strict decrease only) and bounded.
        let mut best = cut_of(&boundary);
        for _ in 0..rack_count {
            let mut improved = false;
            for i in 0..boundary.len() {
                for delta in [-1isize, 1] {
                    let shifted = boundary[i].wrapping_add_signed(delta);
                    let mut candidate = boundary.clone();
                    candidate[i] = shifted;
                    if !balanced(&candidate) {
                        continue;
                    }
                    let cut = cut_of(&candidate);
                    if cut < best {
                        boundary = candidate;
                        best = cut;
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        let owner: Vec<u32> = racks
            .iter()
            .map(|&r| shard_of(&boundary, r) as u32)
            .collect();
        let cut = arena.cut_mask(&owner);
        let cut_count = cut.iter().filter(|&&c| c).count();
        FabricPartition {
            shards,
            owner,
            cut,
            cut_count,
        }
    }

    /// Rebuilds the cut mask against a fresh arena (the ownership is
    /// unchanged — reconfigurations alter links, not nodes).
    pub fn recut(&mut self, arena: &LinkArena) {
        self.cut = arena.cut_mask(&self.owner);
        self.cut_count = self.cut.iter().filter(|&&c| c).count();
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of nodes partitioned.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.owner.len()
    }

    /// The shard owning `node`.
    #[inline]
    pub fn owner(&self, node: NodeId) -> usize {
        self.owner[node.index()] as usize
    }

    /// The full node-to-shard table.
    #[inline]
    pub fn owners(&self) -> &[u32] {
        &self.owner
    }

    /// True when `link` crosses a shard boundary.
    #[inline]
    pub fn is_cut(&self, link: LinkIdx) -> bool {
        self.cut[link.index()]
    }

    /// Number of cut links in this epoch.
    #[inline]
    pub fn cut_count(&self) -> usize {
        self.cut_count
    }

    /// Iterates the cut links in dense order.
    pub fn cut_links(&self) -> impl Iterator<Item = LinkIdx> + '_ {
        self.cut
            .iter()
            .enumerate()
            .filter(|(_, &c)| c)
            .map(|(i, _)| LinkIdx(i as u32))
    }

    /// The shard owning a directed port (the shard of its transmitting
    /// node).
    #[inline]
    pub fn port_owner(&self, arena: &LinkArena, port: PortIdx) -> usize {
        self.owner(arena.port_node(port))
    }

    /// Number of nodes owned by `shard`.
    pub fn shard_size(&self, shard: usize) -> usize {
        self.owner.iter().filter(|&&o| o as usize == shard).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TopologySpec;
    use rackfabric_phy::PhyState;
    use rackfabric_sim::units::BitRate;

    fn arena_of(spec: &TopologySpec) -> LinkArena {
        let mut phy = PhyState::new();
        let topo = spec.instantiate(&mut phy, BitRate::from_gbps(25));
        LinkArena::build(&topo)
    }

    #[test]
    fn contiguous_ranges_cover_every_node() {
        let spec = TopologySpec::grid(4, 4, 1);
        let arena = arena_of(&spec);
        let p = FabricPartition::build(&spec.rack_of(), 4, &arena);
        assert_eq!(p.shards(), 4);
        assert_eq!(p.nodes(), 16);
        // Row-major grid + contiguous ranges = one row per shard.
        for n in 0..16u32 {
            assert_eq!(p.owner(NodeId(n)), (n / 4) as usize);
        }
        let sizes: Vec<usize> = (0..4).map(|s| p.shard_size(s)).collect();
        assert_eq!(sizes, vec![4, 4, 4, 4]);
    }

    #[test]
    fn cut_links_are_exactly_the_inter_row_links() {
        let spec = TopologySpec::grid(4, 4, 1);
        let arena = arena_of(&spec);
        let p = FabricPartition::build(&spec.rack_of(), 4, &arena);
        // A 4x4 grid split into rows cuts the 12 vertical links.
        assert_eq!(p.cut_count(), 12);
        for link in p.cut_links() {
            let (a, b) = arena.endpoints(link);
            assert_ne!(p.owner(a), p.owner(b));
        }
        let uncut = arena.len() - p.cut_count();
        assert_eq!(uncut, 12, "the 12 horizontal links stay internal");
    }

    #[test]
    fn single_shard_has_no_cut() {
        let spec = TopologySpec::torus(4, 4, 1);
        let arena = arena_of(&spec);
        let p = FabricPartition::build(&spec.rack_of(), 1, &arena);
        assert_eq!(p.shards(), 1);
        assert_eq!(p.cut_count(), 0);
        assert_eq!(p.cut_links().count(), 0);
    }

    #[test]
    fn shard_count_is_clamped_to_node_count() {
        let spec = TopologySpec::line(3, 1);
        let arena = arena_of(&spec);
        let p = FabricPartition::build(&spec.rack_of(), 64, &arena);
        assert_eq!(p.shards(), 3);
        assert_eq!(p.cut_count(), 2);
    }

    #[test]
    fn port_owner_follows_the_transmitting_node() {
        let spec = TopologySpec::grid(2, 2, 1);
        let arena = arena_of(&spec);
        let p = FabricPartition::build(&spec.rack_of(), 2, &arena);
        for (idx, _) in arena.iter() {
            let (a, b) = arena.endpoints(idx);
            let pa = arena.port(a, idx);
            let pb = arena.port(b, idx);
            assert_eq!(p.port_owner(&arena, pa), p.owner(a));
            assert_eq!(p.port_owner(&arena, pb), p.owner(b));
            assert_eq!(arena.port_node(pa), a);
            assert_eq!(arena.port_node(pb), b);
        }
    }

    #[test]
    fn dragonfly_group_sharding_cuts_only_global_links() {
        let spec = TopologySpec::dragonfly(4, 2, 2, 1);
        let arena = arena_of(&spec);
        let racks = spec.rack_of();
        // One shard per group: every cut link is a global (inter-rack) link.
        let p = FabricPartition::build(&racks, 4, &arena);
        assert_eq!(p.shards(), 4);
        assert_eq!(p.cut_count(), 6, "C(4,2) global links, all cut");
        let inter = spec.inter_rack_mask(&arena);
        for link in p.cut_links() {
            assert!(inter[link.index()], "cut links must be inter-rack");
        }
        // Fewer shards than groups: still balanced whole-group chunks.
        let p2 = FabricPartition::build(&racks, 3, &arena);
        assert_eq!(p2.shards(), 3);
        let sizes: Vec<usize> = (0..3).map(|s| p2.shard_size(s)).collect();
        let group = 2 * (1 + 2);
        assert!(
            sizes.iter().all(|&s| s == group || s == 2 * group),
            "{sizes:?}"
        );
    }

    #[test]
    fn remainder_racks_never_collapse_a_shard() {
        // 9 racks over 4 shards used to chunk div_ceil = 3,3,3,<empty>;
        // balanced chunking keeps all four shards populated.
        let spec = TopologySpec::grid(9, 2, 1);
        let arena = arena_of(&spec);
        let p = FabricPartition::build(&spec.rack_of(), 4, &arena);
        assert_eq!(p.shards(), 4);
        let mut sizes: Vec<usize> = (0..4).map(|s| p.shard_size(s)).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![4, 4, 4, 6], "2-node racks, sizes 2/2/2/3 racks");
    }

    #[test]
    fn refinement_moves_the_boundary_off_the_fat_seam() {
        use crate::spec::{EdgeSpec, LinkClass, TopologyKind};
        use rackfabric_phy::media::MediaKind;
        use rackfabric_sim::units::Length;
        // Five 2-node racks in a chain; the r2-r3 seam carries 5 parallel
        // links, every other seam 1. A balanced 2-way split is 3+2 racks:
        // the naive boundary after rack 2 cuts the fat seam (5 links), the
        // refined boundary after rack 1 cuts a thin one (1 link).
        let mut edges = Vec::new();
        let edge = |a: u32, b: u32, class: LinkClass| EdgeSpec {
            a: NodeId(a),
            b: NodeId(b),
            lanes: 1,
            length: Length::from_m(2),
            media: MediaKind::OpticalFiber,
            class,
        };
        for r in 0..5u32 {
            edges.push(edge(2 * r, 2 * r + 1, LinkClass::IntraRack));
        }
        for (a, b, n) in [(1, 2, 1), (3, 4, 1), (5, 6, 5), (7, 8, 1)] {
            for _ in 0..n {
                edges.push(edge(a, b, LinkClass::InterRack));
            }
        }
        let spec = TopologySpec {
            name: "seam-chain".into(),
            kind: TopologyKind::Line,
            nodes: 10,
            edges,
            dims: None,
        };
        let arena = arena_of(&spec);
        let racks = spec.rack_of();
        assert_eq!(spec.rack_count(), 5);
        let p = FabricPartition::build(&racks, 2, &arena);
        assert_eq!(p.shards(), 2);
        assert_eq!(p.cut_count(), 1, "refinement must dodge the 5-link seam");
        assert_eq!(p.owner(NodeId(4)), 1, "rack 2 moves to the second shard");
        assert_eq!(p.shard_size(0), 4, "racks 0..2");
        assert_eq!(p.shard_size(1), 6, "racks 2..5");
    }

    #[test]
    fn recut_tracks_a_rebuilt_arena() {
        let spec = TopologySpec::grid(2, 2, 1);
        let mut phy = PhyState::new();
        let mut topo = spec.instantiate(&mut phy, BitRate::from_gbps(25));
        let arena = LinkArena::build(&topo);
        let mut p = FabricPartition::build(&spec.rack_of(), 2, &arena);
        let before = p.cut_count();
        // Remove one cut link and recut.
        let victim = p.cut_links().next().unwrap();
        topo.remove_edge(arena.link_id(victim));
        let rebuilt = LinkArena::build(&topo);
        p.recut(&rebuilt);
        assert_eq!(p.cut_count(), before - 1);
    }
}
