//! Partitioning a fabric into shards (rack groups).
//!
//! The sharded engine splits the fabric's dense per-link/per-port state
//! along the [`LinkIdx`]/[`PortIdx`] boundary: every
//! node — and with it every directed port the node transmits on — is owned
//! by exactly one **shard**, and links whose endpoints live in different
//! shards form the **cut**. Packet trains crossing a cut link are handed
//! between shards through mailboxes; the minimum latency across the cut
//! bounds how far shards may run ahead of each other (the conservative
//! lookahead).
//!
//! Shards are built from whole **racks** (the connected components of the
//! intra-rack link subgraph, [`TopologySpec::rack_of`](crate::spec::TopologySpec::rack_of)):
//! consecutive rack ids are grouped into contiguous rack ranges, and a node
//! belongs to the shard of its rack. Because intra-rack links by definition
//! join nodes of the same rack — and racks are never split across shards —
//! **every cut link is inter-rack by construction**. That is the invariant
//! the conservative lookahead relies on: it minimises latency over the
//! inter-rack link class only, and no envelope can cross shards faster than
//! that minimum. Every builder numbers racks in node order (row bands of a
//! torus, host-block+leaf cells of a Clos), so rack ranges are the same
//! grouping a multi-rack deployment would cable.
//!
//! A partition is a pure function of `(rack table, shard count)`; the cut
//! mask additionally depends on the link set and is rebuilt together with
//! the [`LinkArena`] after whole-rack reconfigurations. Requesting more
//! shards than there are racks clamps to the rack count (a rack is never
//! split), so the effective shard count can be lower than requested.

use crate::arena::{LinkArena, LinkIdx, PortIdx};
use crate::graph::NodeId;

/// A node-to-shard assignment plus the derived cut-edge metadata for one
/// topology epoch.
#[derive(Debug, Clone)]
pub struct FabricPartition {
    shards: usize,
    /// `node index -> shard`.
    owner: Vec<u32>,
    /// `LinkIdx -> crosses a shard boundary`.
    cut: Vec<bool>,
    cut_count: usize,
}

impl FabricPartition {
    /// Partitions the fabric into up to `shards` contiguous **rack** groups
    /// and derives the cut mask from `arena`. `racks` is the node-to-rack
    /// table from
    /// [`TopologySpec::rack_of`](crate::spec::TopologySpec::rack_of);
    /// whole racks are never split, so `shards` is clamped to
    /// `1..=rack_count` and the effective shard count (`max owner + 1`)
    /// can be lower than requested when rack chunks collapse.
    pub fn build(racks: &[u32], shards: usize, arena: &LinkArena) -> Self {
        assert!(!racks.is_empty(), "cannot partition an empty fabric");
        let rack_count = racks.iter().map(|&r| r as usize + 1).max().unwrap_or(1);
        let shards = shards.clamp(1, rack_count);
        let chunk = rack_count.div_ceil(shards);
        let owner: Vec<u32> = racks.iter().map(|&r| r / chunk as u32).collect();
        let shards = owner.iter().map(|&o| o as usize + 1).max().unwrap_or(1);
        let cut = arena.cut_mask(&owner);
        let cut_count = cut.iter().filter(|&&c| c).count();
        FabricPartition {
            shards,
            owner,
            cut,
            cut_count,
        }
    }

    /// Rebuilds the cut mask against a fresh arena (the ownership is
    /// unchanged — reconfigurations alter links, not nodes).
    pub fn recut(&mut self, arena: &LinkArena) {
        self.cut = arena.cut_mask(&self.owner);
        self.cut_count = self.cut.iter().filter(|&&c| c).count();
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of nodes partitioned.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.owner.len()
    }

    /// The shard owning `node`.
    #[inline]
    pub fn owner(&self, node: NodeId) -> usize {
        self.owner[node.index()] as usize
    }

    /// The full node-to-shard table.
    #[inline]
    pub fn owners(&self) -> &[u32] {
        &self.owner
    }

    /// True when `link` crosses a shard boundary.
    #[inline]
    pub fn is_cut(&self, link: LinkIdx) -> bool {
        self.cut[link.index()]
    }

    /// Number of cut links in this epoch.
    #[inline]
    pub fn cut_count(&self) -> usize {
        self.cut_count
    }

    /// Iterates the cut links in dense order.
    pub fn cut_links(&self) -> impl Iterator<Item = LinkIdx> + '_ {
        self.cut
            .iter()
            .enumerate()
            .filter(|(_, &c)| c)
            .map(|(i, _)| LinkIdx(i as u32))
    }

    /// The shard owning a directed port (the shard of its transmitting
    /// node).
    #[inline]
    pub fn port_owner(&self, arena: &LinkArena, port: PortIdx) -> usize {
        self.owner(arena.port_node(port))
    }

    /// Number of nodes owned by `shard`.
    pub fn shard_size(&self, shard: usize) -> usize {
        self.owner.iter().filter(|&&o| o as usize == shard).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TopologySpec;
    use rackfabric_phy::PhyState;
    use rackfabric_sim::units::BitRate;

    fn arena_of(spec: &TopologySpec) -> LinkArena {
        let mut phy = PhyState::new();
        let topo = spec.instantiate(&mut phy, BitRate::from_gbps(25));
        LinkArena::build(&topo)
    }

    #[test]
    fn contiguous_ranges_cover_every_node() {
        let spec = TopologySpec::grid(4, 4, 1);
        let arena = arena_of(&spec);
        let p = FabricPartition::build(&spec.rack_of(), 4, &arena);
        assert_eq!(p.shards(), 4);
        assert_eq!(p.nodes(), 16);
        // Row-major grid + contiguous ranges = one row per shard.
        for n in 0..16u32 {
            assert_eq!(p.owner(NodeId(n)), (n / 4) as usize);
        }
        let sizes: Vec<usize> = (0..4).map(|s| p.shard_size(s)).collect();
        assert_eq!(sizes, vec![4, 4, 4, 4]);
    }

    #[test]
    fn cut_links_are_exactly_the_inter_row_links() {
        let spec = TopologySpec::grid(4, 4, 1);
        let arena = arena_of(&spec);
        let p = FabricPartition::build(&spec.rack_of(), 4, &arena);
        // A 4x4 grid split into rows cuts the 12 vertical links.
        assert_eq!(p.cut_count(), 12);
        for link in p.cut_links() {
            let (a, b) = arena.endpoints(link);
            assert_ne!(p.owner(a), p.owner(b));
        }
        let uncut = arena.len() - p.cut_count();
        assert_eq!(uncut, 12, "the 12 horizontal links stay internal");
    }

    #[test]
    fn single_shard_has_no_cut() {
        let spec = TopologySpec::torus(4, 4, 1);
        let arena = arena_of(&spec);
        let p = FabricPartition::build(&spec.rack_of(), 1, &arena);
        assert_eq!(p.shards(), 1);
        assert_eq!(p.cut_count(), 0);
        assert_eq!(p.cut_links().count(), 0);
    }

    #[test]
    fn shard_count_is_clamped_to_node_count() {
        let spec = TopologySpec::line(3, 1);
        let arena = arena_of(&spec);
        let p = FabricPartition::build(&spec.rack_of(), 64, &arena);
        assert_eq!(p.shards(), 3);
        assert_eq!(p.cut_count(), 2);
    }

    #[test]
    fn port_owner_follows_the_transmitting_node() {
        let spec = TopologySpec::grid(2, 2, 1);
        let arena = arena_of(&spec);
        let p = FabricPartition::build(&spec.rack_of(), 2, &arena);
        for (idx, _) in arena.iter() {
            let (a, b) = arena.endpoints(idx);
            let pa = arena.port(a, idx);
            let pb = arena.port(b, idx);
            assert_eq!(p.port_owner(&arena, pa), p.owner(a));
            assert_eq!(p.port_owner(&arena, pb), p.owner(b));
            assert_eq!(arena.port_node(pa), a);
            assert_eq!(arena.port_node(pb), b);
        }
    }

    #[test]
    fn recut_tracks_a_rebuilt_arena() {
        let spec = TopologySpec::grid(2, 2, 1);
        let mut phy = PhyState::new();
        let mut topo = spec.instantiate(&mut phy, BitRate::from_gbps(25));
        let arena = LinkArena::build(&topo);
        let mut p = FabricPartition::build(&spec.rack_of(), 2, &arena);
        let before = p.cut_count();
        // Remove one cut link and recut.
        let victim = p.cut_links().next().unwrap();
        topo.remove_edge(arena.link_id(victim));
        let rebuilt = LinkArena::build(&topo);
        p.recut(&rebuilt);
        assert_eq!(p.cut_count(), before - 1);
    }
}
