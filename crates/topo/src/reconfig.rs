//! Structural diffs between topology specifications.
//!
//! The Closed Ring Control plans a reconfiguration by comparing the spec the
//! fabric is currently wired as with a candidate spec (the paper's Figure 2
//! compares a 2-lane grid with a 1-lane torus). The [`SpecDiff`] lists, per
//! node pair, whether an edge must be added, removed, or re-laned; the core
//! crate's reconfiguration planner turns those changes into concrete PLP
//! command sequences against the live physical state.

use crate::graph::NodeId;
use crate::spec::{EdgeSpec, TopologySpec};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One change required to move from the current spec to the target spec.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EdgeChange {
    /// A new edge must be created between the pair with this many lanes.
    Add {
        /// The edge to create.
        edge: EdgeSpec,
    },
    /// The existing edge between the pair must be removed entirely.
    Remove {
        /// The edge to remove (as described by the current spec).
        edge: EdgeSpec,
    },
    /// The edge stays but its lane count changes.
    Relane {
        /// First endpoint.
        a: NodeId,
        /// Second endpoint.
        b: NodeId,
        /// Lanes in the current spec.
        from_lanes: usize,
        /// Lanes in the target spec.
        to_lanes: usize,
    },
}

/// The full difference between two topology specs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SpecDiff {
    /// All required changes, in a deterministic order (removals, then
    /// re-lanings, then additions — freeing lanes before they are consumed).
    pub changes: Vec<EdgeChange>,
}

impl SpecDiff {
    /// Computes the diff taking the fabric from `current` to `target`.
    ///
    /// Both specs must describe the same node count; edges are matched by
    /// unordered node pair (parallel edges between the same pair are summed
    /// into one lane figure).
    pub fn between(current: &TopologySpec, target: &TopologySpec) -> SpecDiff {
        assert_eq!(
            current.nodes, target.nodes,
            "reconfiguration cannot change the number of nodes"
        );
        let cur = pair_lanes(current);
        let tgt = pair_lanes(target);

        let mut removals = Vec::new();
        let mut relanes = Vec::new();
        let mut additions = Vec::new();

        let mut pairs: Vec<(NodeId, NodeId)> = cur.keys().chain(tgt.keys()).copied().collect();
        pairs.sort();
        pairs.dedup();

        for pair in pairs {
            let c = cur.get(&pair);
            let t = tgt.get(&pair);
            match (c, t) {
                (Some(ce), None) => removals.push(EdgeChange::Remove { edge: *ce }),
                (None, Some(te)) => additions.push(EdgeChange::Add { edge: *te }),
                (Some(ce), Some(te)) if ce.lanes != te.lanes => relanes.push(EdgeChange::Relane {
                    a: pair.0,
                    b: pair.1,
                    from_lanes: ce.lanes,
                    to_lanes: te.lanes,
                }),
                _ => {}
            }
        }

        let mut changes = removals;
        changes.extend(relanes);
        changes.extend(additions);
        SpecDiff { changes }
    }

    /// Number of changes of each kind: (adds, removes, relanes).
    pub fn counts(&self) -> (usize, usize, usize) {
        let adds = self
            .changes
            .iter()
            .filter(|c| matches!(c, EdgeChange::Add { .. }))
            .count();
        let removes = self
            .changes
            .iter()
            .filter(|c| matches!(c, EdgeChange::Remove { .. }))
            .count();
        let relanes = self
            .changes
            .iter()
            .filter(|c| matches!(c, EdgeChange::Relane { .. }))
            .count();
        (adds, removes, relanes)
    }

    /// True when the two specs already match.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Net change in total lane demand (positive means the target needs more
    /// SerDes lanes powered than the current spec).
    pub fn net_lane_delta(&self) -> i64 {
        self.changes
            .iter()
            .map(|c| match c {
                EdgeChange::Add { edge } => edge.lanes as i64,
                EdgeChange::Remove { edge } => -(edge.lanes as i64),
                EdgeChange::Relane {
                    from_lanes,
                    to_lanes,
                    ..
                } => *to_lanes as i64 - *from_lanes as i64,
            })
            .sum()
    }
}

/// Collapses a spec into a map from unordered node pair to a representative
/// edge whose lane count is the sum over parallel edges.
fn pair_lanes(spec: &TopologySpec) -> HashMap<(NodeId, NodeId), EdgeSpec> {
    let mut map: HashMap<(NodeId, NodeId), EdgeSpec> = HashMap::new();
    for e in &spec.edges {
        map.entry(e.pair())
            .and_modify(|acc| acc.lanes += e.lanes)
            .or_insert_with(|| {
                let mut c = *e;
                let (a, b) = e.pair();
                c.a = a;
                c.b = b;
                c
            });
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TopologySpec;

    #[test]
    fn identical_specs_produce_empty_diff() {
        let g = TopologySpec::grid(4, 4, 2);
        let d = SpecDiff::between(&g, &g.clone());
        assert!(d.is_empty());
        assert_eq!(d.net_lane_delta(), 0);
    }

    #[test]
    fn grid_to_torus_diff_matches_figure_2() {
        // The paper's Figure 2: a grid at two lanes per link becomes a torus
        // at one lane per link.
        let grid = TopologySpec::grid(4, 4, 2);
        let torus = TopologySpec::torus(4, 4, 1);
        let d = SpecDiff::between(&grid, &torus);
        let (adds, removes, relanes) = d.counts();
        // 8 wrap-around links are added, nothing is removed, and every one of
        // the 24 mesh links is thinned from 2 lanes to 1.
        assert_eq!(adds, 8);
        assert_eq!(removes, 0);
        assert_eq!(relanes, 24);
        // Net lane demand goes down: 24*2=48 lanes -> 24 + 8 = 32 lanes.
        assert_eq!(d.net_lane_delta(), -16);
        // Removals/relanes are ordered before additions so freed lanes exist
        // before they are consumed.
        let first_add = d
            .changes
            .iter()
            .position(|c| matches!(c, EdgeChange::Add { .. }))
            .unwrap();
        let last_relane = d
            .changes
            .iter()
            .rposition(|c| matches!(c, EdgeChange::Relane { .. }))
            .unwrap();
        assert!(last_relane < first_add);
    }

    #[test]
    fn torus_back_to_grid_reverses_the_changes() {
        let grid = TopologySpec::grid(4, 4, 2);
        let torus = TopologySpec::torus(4, 4, 1);
        let forward = SpecDiff::between(&grid, &torus);
        let back = SpecDiff::between(&torus, &grid);
        let (fa, fr, fl) = forward.counts();
        let (ba, br, bl) = back.counts();
        assert_eq!(fa, br);
        assert_eq!(fr, ba);
        assert_eq!(fl, bl);
        assert_eq!(forward.net_lane_delta(), -back.net_lane_delta());
    }

    #[test]
    fn lane_only_changes_are_relanes() {
        let thin = TopologySpec::ring(5, 1);
        let thick = TopologySpec::ring(5, 4);
        let d = SpecDiff::between(&thin, &thick);
        let (adds, removes, relanes) = d.counts();
        assert_eq!((adds, removes, relanes), (0, 0, 5));
        assert_eq!(d.net_lane_delta(), 15);
    }

    #[test]
    #[should_panic(expected = "cannot change the number of nodes")]
    fn node_count_mismatch_panics() {
        let a = TopologySpec::ring(5, 1);
        let b = TopologySpec::ring(6, 1);
        let _ = SpecDiff::between(&a, &b);
    }

    #[test]
    fn line_to_ring_adds_the_closing_edge() {
        let line = TopologySpec::line(6, 1);
        let ring = TopologySpec::ring(6, 1);
        let d = SpecDiff::between(&line, &ring);
        let (adds, removes, relanes) = d.counts();
        assert_eq!((adds, removes, relanes), (1, 0, 0));
    }
}
