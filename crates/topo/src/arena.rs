//! Dense interning of links and directed ports.
//!
//! `LinkId`s are global, sparse physical identities (they survive
//! reconfigurations and keep growing as links are split and re-bundled), so
//! per-link simulation state keyed by `LinkId` needs a hash map — and the
//! per-packet datapath was paying one or more hash lookups per hop. A
//! [`LinkArena`] is built once per topology epoch and assigns every live
//! link a dense [`LinkIdx`] (and every *directed use* of a link a dense
//! [`PortIdx`]), so the hot path indexes plain vectors instead.
//!
//! The arena is rebuilt — and every consumer's dense state migrated — only
//! when the topology itself changes (a whole-rack reconfiguration), which is
//! rare and slow-path by construction.

use crate::graph::{NodeId, Topology};
use rackfabric_phy::LinkId;
use std::collections::HashMap;

/// Dense index of a live link within one topology epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkIdx(pub u32);

impl LinkIdx {
    /// The raw index as usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense index of a directed port (one endpoint's transmitting use of a
/// link) within one topology epoch. Each link owns exactly two ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortIdx(pub u32);

impl PortIdx {
    /// The raw index as usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A dense link/port interning table built from a [`Topology`].
///
/// Link ids are interned in sorted order, so the mapping is deterministic
/// for a given topology regardless of construction history.
#[derive(Debug, Clone, Default)]
pub struct LinkArena {
    /// `LinkIdx -> LinkId`.
    ids: Vec<LinkId>,
    /// `LinkIdx -> (endpoint_a, endpoint_b)` with `a < b`.
    endpoints: Vec<(NodeId, NodeId)>,
    /// Reverse map, used on cold paths (route interning, migrations).
    index_of: HashMap<LinkId, LinkIdx>,
}

impl LinkArena {
    /// Interns every link of `topo`.
    pub fn build(topo: &Topology) -> Self {
        let ids = topo.links(); // sorted
        let mut endpoints = Vec::with_capacity(ids.len());
        let mut index_of = HashMap::with_capacity(ids.len());
        for (i, &id) in ids.iter().enumerate() {
            let (a, b) = topo.endpoints(id).expect("listed link has endpoints");
            let pair = if a <= b { (a, b) } else { (b, a) };
            endpoints.push(pair);
            index_of.insert(id, LinkIdx(i as u32));
        }
        LinkArena {
            ids,
            endpoints,
            index_of,
        }
    }

    /// Number of interned links.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if no links are interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of directed ports (two per link).
    #[inline]
    pub fn port_count(&self) -> usize {
        self.ids.len() * 2
    }

    /// The physical id of an interned link.
    #[inline]
    pub fn link_id(&self, idx: LinkIdx) -> LinkId {
        self.ids[idx.index()]
    }

    /// The dense index of a physical link, if it is part of this epoch.
    #[inline]
    pub fn index(&self, id: LinkId) -> Option<LinkIdx> {
        self.index_of.get(&id).copied()
    }

    /// The canonical `(min, max)` endpoints of an interned link.
    #[inline]
    pub fn endpoints(&self, idx: LinkIdx) -> (NodeId, NodeId) {
        self.endpoints[idx.index()]
    }

    /// The directed port for `from` transmitting onto `link`. `from` must be
    /// one of the link's endpoints.
    #[inline]
    pub fn port(&self, from: NodeId, link: LinkIdx) -> PortIdx {
        let (a, _) = self.endpoints[link.index()];
        let side = (from != a) as u32;
        PortIdx(link.0 * 2 + side)
    }

    /// The link an interned port transmits onto.
    #[inline]
    pub fn port_link(&self, port: PortIdx) -> LinkIdx {
        LinkIdx(port.0 / 2)
    }

    /// The node transmitting on an interned port (the inverse of
    /// [`LinkArena::port`]).
    #[inline]
    pub fn port_node(&self, port: PortIdx) -> NodeId {
        let (a, b) = self.endpoints[(port.0 / 2) as usize];
        if port.0.is_multiple_of(2) {
            a
        } else {
            b
        }
    }

    /// The **cut mask** of a node-ownership assignment: `mask[idx]` is true
    /// when the link's endpoints are owned by different shards. This is the
    /// per-epoch cut-edge metadata a sharded engine derives its conservative
    /// lookahead and mailbox routing from; it is rebuilt together with the
    /// arena on whole-rack reconfigurations.
    pub fn cut_mask(&self, owner_of_node: &[u32]) -> Vec<bool> {
        self.endpoints
            .iter()
            .map(|&(a, b)| owner_of_node[a.index()] != owner_of_node[b.index()])
            .collect()
    }

    /// Iterates `(LinkIdx, LinkId)` pairs in dense order.
    pub fn iter(&self) -> impl Iterator<Item = (LinkIdx, LinkId)> + '_ {
        self.ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (LinkIdx(i as u32), id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TopologySpec;
    use rackfabric_phy::PhyState;
    use rackfabric_sim::units::BitRate;

    fn grid_arena() -> (Topology, LinkArena) {
        let mut phy = PhyState::new();
        let topo = TopologySpec::grid(3, 3, 1).instantiate(&mut phy, BitRate::from_gbps(25));
        let arena = LinkArena::build(&topo);
        (topo, arena)
    }

    #[test]
    fn interns_every_link_densely_and_deterministically() {
        let (topo, arena) = grid_arena();
        assert_eq!(arena.len(), topo.edge_count());
        assert_eq!(arena.port_count(), 2 * topo.edge_count());
        // Round trip id -> idx -> id.
        for id in topo.links() {
            let idx = arena.index(id).expect("live link interned");
            assert_eq!(arena.link_id(idx), id);
        }
        // Dense indices are 0..len in sorted-id order.
        let ids: Vec<LinkId> = arena.iter().map(|(_, id)| id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn ports_distinguish_directions_and_stay_in_range() {
        let (topo, arena) = grid_arena();
        let mut seen = std::collections::HashSet::new();
        for id in topo.links() {
            let idx = arena.index(id).unwrap();
            let (a, b) = arena.endpoints(idx);
            let pa = arena.port(a, idx);
            let pb = arena.port(b, idx);
            assert_ne!(pa, pb, "the two directions get distinct ports");
            assert_eq!(arena.port_link(pa), idx);
            assert_eq!(arena.port_link(pb), idx);
            assert!(pa.index() < arena.port_count());
            assert!(pb.index() < arena.port_count());
            assert!(seen.insert(pa));
            assert!(seen.insert(pb));
        }
        assert_eq!(seen.len(), arena.port_count());
    }

    #[test]
    fn unknown_links_are_not_interned() {
        let (_, arena) = grid_arena();
        assert_eq!(arena.index(LinkId(10_000)), None);
    }

    #[test]
    fn rebuild_after_edge_change_reinterns() {
        let (mut topo, arena) = grid_arena();
        let victim = topo.links()[0];
        topo.remove_edge(victim);
        let rebuilt = LinkArena::build(&topo);
        assert_eq!(rebuilt.len(), arena.len() - 1);
        assert_eq!(rebuilt.index(victim), None);
    }
}
