//! Declarative topology specifications and builders.
//!
//! A [`TopologySpec`] describes the desired shape of the fabric — which node
//! pairs are connected, with how many lanes, over which medium and length —
//! without committing to physical link identities. The spec is what the
//! Closed Ring Control reasons about when it plans a reconfiguration (the
//! paper's Figure 2 moves from a 2-lane grid spec to a 1-lane torus spec);
//! [`TopologySpec::instantiate`] realises a spec against a
//! [`PhyState`], creating the physical links and
//! returning the runtime [`Topology`].

use crate::graph::{NodeId, Topology};
use rackfabric_phy::media::{Media, MediaKind};
use rackfabric_phy::PhyState;
use rackfabric_sim::units::{BitRate, Length};
use serde::{Deserialize, Serialize};

/// The named topology families the builders can generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyKind {
    /// A 1-D chain (used for the Figure-1 hop-count sweep).
    Line,
    /// A 1-D ring.
    Ring,
    /// A 2-D mesh without wrap-around.
    Grid,
    /// A 2-D torus (grid plus wrap-around links).
    Torus,
    /// An n-dimensional hypercube.
    Hypercube,
    /// A two-level folded-Clos built from rack switches (the conventional
    /// packet-switched baseline).
    FatTree,
}

/// One desired edge of the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeSpec {
    /// First endpoint.
    pub a: NodeId,
    /// Second endpoint.
    pub b: NodeId,
    /// Number of lanes the link should bundle.
    pub lanes: usize,
    /// Cable length.
    pub length: Length,
    /// Medium family.
    pub media: MediaKind,
}

impl EdgeSpec {
    /// True if this edge connects the same unordered node pair as `other`.
    pub fn same_pair(&self, other: &EdgeSpec) -> bool {
        (self.a == other.a && self.b == other.b) || (self.a == other.b && self.b == other.a)
    }
    /// Canonical (min, max) form of the node pair.
    pub fn pair(&self) -> (NodeId, NodeId) {
        if self.a <= self.b {
            (self.a, self.b)
        } else {
            (self.b, self.a)
        }
    }
}

/// A full topology description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Human-readable name (e.g. `"grid-4x4-2lane"`).
    pub name: String,
    /// Which family this spec belongs to.
    pub kind: TopologyKind,
    /// Number of nodes.
    pub nodes: usize,
    /// Desired edges.
    pub edges: Vec<EdgeSpec>,
    /// Grid/torus dimensions when applicable (rows, cols).
    pub dims: Option<(usize, usize)>,
}

/// Default intra-rack cable length between adjacent sleds: the paper assumes
/// a switch (i.e. a sled hop) every 2 metres.
pub const DEFAULT_HOP_LENGTH: Length = Length::from_m(2);

impl TopologySpec {
    /// A 1-D chain of `n` nodes.
    pub fn line(n: usize, lanes: usize) -> TopologySpec {
        let edges = (0..n.saturating_sub(1))
            .map(|i| EdgeSpec {
                a: NodeId(i as u32),
                b: NodeId(i as u32 + 1),
                lanes,
                length: DEFAULT_HOP_LENGTH,
                media: MediaKind::OpticalFiber,
            })
            .collect();
        TopologySpec {
            name: format!("line-{n}-{lanes}lane"),
            kind: TopologyKind::Line,
            nodes: n,
            edges,
            dims: None,
        }
    }

    /// A ring of `n` nodes.
    pub fn ring(n: usize, lanes: usize) -> TopologySpec {
        assert!(n >= 3, "a ring needs at least 3 nodes");
        let edges = (0..n)
            .map(|i| EdgeSpec {
                a: NodeId(i as u32),
                b: NodeId(((i + 1) % n) as u32),
                lanes,
                length: DEFAULT_HOP_LENGTH,
                media: MediaKind::OpticalFiber,
            })
            .collect();
        TopologySpec {
            name: format!("ring-{n}-{lanes}lane"),
            kind: TopologyKind::Ring,
            nodes: n,
            edges,
            dims: None,
        }
    }

    /// A `rows x cols` 2-D mesh without wrap-around, `lanes` lanes per link.
    pub fn grid(rows: usize, cols: usize, lanes: usize) -> TopologySpec {
        assert!(rows >= 1 && cols >= 1);
        let id = |r: usize, c: usize| NodeId((r * cols + c) as u32);
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push(EdgeSpec {
                        a: id(r, c),
                        b: id(r, c + 1),
                        lanes,
                        length: DEFAULT_HOP_LENGTH,
                        media: MediaKind::OpticalFiber,
                    });
                }
                if r + 1 < rows {
                    edges.push(EdgeSpec {
                        a: id(r, c),
                        b: id(r + 1, c),
                        lanes,
                        length: DEFAULT_HOP_LENGTH,
                        media: MediaKind::OpticalFiber,
                    });
                }
            }
        }
        TopologySpec {
            name: format!("grid-{rows}x{cols}-{lanes}lane"),
            kind: TopologyKind::Grid,
            nodes: rows * cols,
            edges,
            dims: Some((rows, cols)),
        }
    }

    /// A `rows x cols` 2-D torus, `lanes` lanes per link (the grid plus
    /// wrap-around links; wrap-around cables are longer).
    pub fn torus(rows: usize, cols: usize, lanes: usize) -> TopologySpec {
        assert!(rows >= 2 && cols >= 2, "a torus needs at least 2x2 nodes");
        let mut spec = TopologySpec::grid(rows, cols, lanes);
        let id = |r: usize, c: usize| NodeId((r * cols + c) as u32);
        // Wrap-around links span the rack dimension: length scales with the
        // number of hops they replace.
        let wrap_len_rows = Length::from_m((2 * (rows.max(2) - 1)) as u64);
        let wrap_len_cols = Length::from_m((2 * (cols.max(2) - 1)) as u64);
        if cols > 2 {
            for r in 0..rows {
                spec.edges.push(EdgeSpec {
                    a: id(r, cols - 1),
                    b: id(r, 0),
                    lanes,
                    length: wrap_len_cols,
                    media: MediaKind::OpticalFiber,
                });
            }
        }
        if rows > 2 {
            for c in 0..cols {
                spec.edges.push(EdgeSpec {
                    a: id(rows - 1, c),
                    b: id(0, c),
                    lanes,
                    length: wrap_len_rows,
                    media: MediaKind::OpticalFiber,
                });
            }
        }
        spec.name = format!("torus-{rows}x{cols}-{lanes}lane");
        spec.kind = TopologyKind::Torus;
        spec
    }

    /// A hypercube of dimension `dim` (2^dim nodes), `lanes` lanes per link.
    pub fn hypercube(dim: u32, lanes: usize) -> TopologySpec {
        let n = 1usize << dim;
        let mut edges = Vec::new();
        for node in 0..n {
            for bit in 0..dim {
                let peer = node ^ (1usize << bit);
                if peer > node {
                    edges.push(EdgeSpec {
                        a: NodeId(node as u32),
                        b: NodeId(peer as u32),
                        lanes,
                        length: DEFAULT_HOP_LENGTH,
                        media: MediaKind::OpticalFiber,
                    });
                }
            }
        }
        TopologySpec {
            name: format!("hypercube-{dim}d-{lanes}lane"),
            kind: TopologyKind::Hypercube,
            nodes: n,
            edges,
            dims: None,
        }
    }

    /// A two-level folded-Clos: `hosts` leaf nodes are split across
    /// `ceil(hosts / radix)` leaf switches, all connected to `spines` spine
    /// switches. Node ids: hosts first, then leaf switches, then spines.
    /// This is the conventional packet-switched baseline fabric.
    pub fn fat_tree(hosts: usize, radix: usize, spines: usize, lanes: usize) -> TopologySpec {
        assert!(hosts >= 1 && radix >= 1 && spines >= 1);
        let leaves = hosts.div_ceil(radix);
        let nodes = hosts + leaves + spines;
        let leaf_id = |l: usize| NodeId((hosts + l) as u32);
        let spine_id = |s: usize| NodeId((hosts + leaves + s) as u32);
        let mut edges = Vec::new();
        for h in 0..hosts {
            edges.push(EdgeSpec {
                a: NodeId(h as u32),
                b: leaf_id(h / radix),
                lanes,
                length: DEFAULT_HOP_LENGTH,
                media: MediaKind::CopperDac,
            });
        }
        for l in 0..leaves {
            for s in 0..spines {
                edges.push(EdgeSpec {
                    a: leaf_id(l),
                    b: spine_id(s),
                    lanes,
                    length: Length::from_m(4),
                    media: MediaKind::OpticalFiber,
                });
            }
        }
        TopologySpec {
            name: format!("fattree-{hosts}h-{leaves}l-{spines}s"),
            kind: TopologyKind::FatTree,
            nodes,
            edges,
            dims: None,
        }
    }

    /// Total lanes demanded by the spec (a proxy for SerDes / power cost).
    pub fn total_lanes(&self) -> usize {
        self.edges.iter().map(|e| e.lanes).sum()
    }

    /// The (row, col) coordinate of a node for grid/torus specs.
    pub fn coordinates(&self, n: NodeId) -> Option<(usize, usize)> {
        let (rows, cols) = self.dims?;
        let idx = n.index();
        if idx >= rows * cols {
            return None;
        }
        Some((idx / cols, idx % cols))
    }

    /// Realises the spec: creates every physical link in `phy` and returns
    /// the runtime topology graph referencing the created link ids.
    pub fn instantiate(&self, phy: &mut PhyState, lane_rate: BitRate) -> Topology {
        let mut topo = Topology::new(self.nodes);
        for e in &self.edges {
            let link = phy.add_link(
                e.a.as_u32(),
                e.b.as_u32(),
                Media::of_kind(e.media),
                e.length,
                e.lanes,
                lane_rate,
            );
            topo.add_edge(e.a, e.b, link);
        }
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_ring_shapes() {
        let line = TopologySpec::line(8, 2);
        assert_eq!(line.nodes, 8);
        assert_eq!(line.edges.len(), 7);
        let ring = TopologySpec::ring(8, 1);
        assert_eq!(ring.edges.len(), 8);
        assert_eq!(ring.total_lanes(), 8);
    }

    #[test]
    fn grid_edge_count_and_coordinates() {
        let g = TopologySpec::grid(4, 4, 2);
        // 2 * r * c - r - c edges in an r x c mesh.
        assert_eq!(g.edges.len(), 2 * 4 * 4 - 4 - 4);
        assert_eq!(g.nodes, 16);
        assert_eq!(g.coordinates(NodeId(0)), Some((0, 0)));
        assert_eq!(g.coordinates(NodeId(5)), Some((1, 1)));
        assert_eq!(g.coordinates(NodeId(15)), Some((3, 3)));
        assert_eq!(g.coordinates(NodeId(16)), None);
        assert_eq!(g.total_lanes(), g.edges.len() * 2);
    }

    #[test]
    fn torus_adds_wraparound_links() {
        let g = TopologySpec::grid(4, 4, 2);
        let t = TopologySpec::torus(4, 4, 1);
        // 4 row wraps + 4 column wraps.
        assert_eq!(t.edges.len(), g.edges.len() + 8);
        assert_eq!(t.kind, TopologyKind::Torus);
        // Wrap links are longer than mesh links.
        let max_len = t.edges.iter().map(|e| e.length).max().unwrap();
        assert!(max_len > DEFAULT_HOP_LENGTH);
        // A 1-lane torus uses no more SerDes lanes than a 2-lane grid of the
        // same size — the resource trade at the heart of the paper's Figure 2.
        assert!(t.total_lanes() <= g.total_lanes());
    }

    #[test]
    fn hypercube_degree_is_dimension() {
        let h = TopologySpec::hypercube(4, 1);
        assert_eq!(h.nodes, 16);
        assert_eq!(h.edges.len(), 16 * 4 / 2);
    }

    #[test]
    fn fat_tree_shape() {
        let f = TopologySpec::fat_tree(16, 8, 2, 4);
        // 16 hosts, 2 leaves, 2 spines.
        assert_eq!(f.nodes, 16 + 2 + 2);
        // 16 host uplinks + 2*2 leaf-spine links.
        assert_eq!(f.edges.len(), 16 + 4);
    }

    #[test]
    fn instantiate_builds_matching_phy_links() {
        let spec = TopologySpec::grid(3, 3, 2);
        let mut phy = PhyState::new();
        let topo = spec.instantiate(&mut phy, BitRate::from_gbps(25));
        assert_eq!(topo.node_count(), 9);
        assert_eq!(topo.edge_count(), spec.edges.len());
        assert_eq!(phy.link_count(), spec.edges.len());
        assert!(topo.is_connected());
        // Every topology link exists in the phy state with the right lane count.
        for link_id in topo.links() {
            let l = phy.link(link_id).expect("link must exist in phy");
            assert_eq!(l.total_lanes(), 2);
            let (a, b) = topo.endpoints(link_id).unwrap();
            assert!(l.connects(a.as_u32(), b.as_u32()));
        }
    }

    #[test]
    fn grid_and_torus_diameters() {
        let mut phy = PhyState::new();
        let grid = TopologySpec::grid(4, 4, 1).instantiate(&mut phy, BitRate::from_gbps(25));
        let mut phy2 = PhyState::new();
        let torus = TopologySpec::torus(4, 4, 1).instantiate(&mut phy2, BitRate::from_gbps(25));
        // Torus wrap-around halves the diameter of the mesh.
        assert_eq!(grid.diameter(), Some(6));
        assert_eq!(torus.diameter(), Some(4));
        assert!(torus.average_path_length().unwrap() < grid.average_path_length().unwrap());
    }

    #[test]
    fn edge_spec_pair_helpers() {
        let e1 = EdgeSpec {
            a: NodeId(3),
            b: NodeId(1),
            lanes: 1,
            length: DEFAULT_HOP_LENGTH,
            media: MediaKind::OpticalFiber,
        };
        let e2 = EdgeSpec {
            a: NodeId(1),
            b: NodeId(3),
            lanes: 2,
            length: DEFAULT_HOP_LENGTH,
            media: MediaKind::OpticalFiber,
        };
        assert!(e1.same_pair(&e2));
        assert_eq!(e1.pair(), (NodeId(1), NodeId(3)));
    }
}
