//! Declarative topology specifications and builders.
//!
//! A [`TopologySpec`] describes the desired shape of the fabric — which node
//! pairs are connected, with how many lanes, over which medium and length —
//! without committing to physical link identities. The spec is what the
//! Closed Ring Control reasons about when it plans a reconfiguration (the
//! paper's Figure 2 moves from a 2-lane grid spec to a 1-lane torus spec);
//! [`TopologySpec::instantiate`] realises a spec against a
//! [`PhyState`], creating the physical links and
//! returning the runtime [`Topology`].

use crate::graph::{NodeId, Topology};
use rackfabric_phy::media::{Media, MediaKind};
use rackfabric_phy::PhyState;
use rackfabric_sim::units::{BitRate, Length};
use serde::{Deserialize, Serialize};

/// The named topology families the builders can generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyKind {
    /// A 1-D chain (used for the Figure-1 hop-count sweep).
    Line,
    /// A 1-D ring.
    Ring,
    /// A 2-D mesh without wrap-around.
    Grid,
    /// A 2-D torus (grid plus wrap-around links).
    Torus,
    /// An n-dimensional hypercube.
    Hypercube,
    /// A two-level folded-Clos built from rack switches (the conventional
    /// packet-switched baseline).
    FatTree,
    /// A dragonfly: fully connected router groups joined by one global link
    /// per group pair (the HPC-interconnect scale-out family).
    Dragonfly,
}

/// Physical placement class of a link: whether the cable stays inside one
/// rack or crosses between racks.
///
/// The class is a **topology** property — it comes from the spec builders,
/// never from a shard partition — which is what lets the sharded engine's
/// conservative lookahead be computed from the inter-rack class alone while
/// staying shard-count-independent: racks are the connected components of
/// the intra-rack subgraph (see [`TopologySpec::rack_of`]), shard partitions
/// align to rack boundaries, and therefore every partition cut link is
/// inter-rack by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkClass {
    /// A cable inside one rack (sled-to-sled backplane or in-rack fibre).
    IntraRack,
    /// A cable between racks (the longer run that funds lookahead).
    InterRack,
}

/// One desired edge of the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeSpec {
    /// First endpoint.
    pub a: NodeId,
    /// Second endpoint.
    pub b: NodeId,
    /// Number of lanes the link should bundle.
    pub lanes: usize,
    /// Cable length.
    pub length: Length,
    /// Medium family.
    pub media: MediaKind,
    /// Placement class (intra- vs inter-rack).
    pub class: LinkClass,
}

impl EdgeSpec {
    /// True if this edge connects the same unordered node pair as `other`.
    pub fn same_pair(&self, other: &EdgeSpec) -> bool {
        (self.a == other.a && self.b == other.b) || (self.a == other.b && self.b == other.a)
    }
    /// Canonical (min, max) form of the node pair.
    pub fn pair(&self) -> (NodeId, NodeId) {
        if self.a <= self.b {
            (self.a, self.b)
        } else {
            (self.b, self.a)
        }
    }
}

/// A full topology description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Human-readable name (e.g. `"grid-4x4-2lane"`).
    pub name: String,
    /// Which family this spec belongs to.
    pub kind: TopologyKind,
    /// Number of nodes.
    pub nodes: usize,
    /// Desired edges.
    pub edges: Vec<EdgeSpec>,
    /// Grid/torus dimensions when applicable (rows, cols).
    pub dims: Option<(usize, usize)>,
}

/// Default intra-rack cable length between adjacent sleds: the paper assumes
/// a switch (i.e. a sled hop) every 2 metres.
pub const DEFAULT_HOP_LENGTH: Length = Length::from_m(2);

/// Default inter-rack cable length for [`TopologySpec::with_rack_spacing`]:
/// a 20 m overhead-tray run between rack rows, the short end of what the
/// Slingshot/dragonfly literature assumes for inter-group cables. Applied
/// opt-in (the builders default every edge to [`DEFAULT_HOP_LENGTH`]-scale
/// cables so existing campaigns keep their bytes); the extra flight time on
/// the inter-rack class is what funds the sharded engine's longer
/// conservative windows.
pub const DEFAULT_INTER_RACK_LENGTH: Length = Length::from_m(20);

impl TopologySpec {
    /// A 1-D chain of `n` nodes.
    pub fn line(n: usize, lanes: usize) -> TopologySpec {
        let edges = (0..n.saturating_sub(1))
            .map(|i| EdgeSpec {
                a: NodeId(i as u32),
                b: NodeId(i as u32 + 1),
                lanes,
                length: DEFAULT_HOP_LENGTH,
                media: MediaKind::OpticalFiber,
                class: LinkClass::InterRack,
            })
            .collect();
        TopologySpec {
            name: format!("line-{n}-{lanes}lane"),
            kind: TopologyKind::Line,
            nodes: n,
            edges,
            dims: None,
        }
    }

    /// A ring of `n` nodes.
    pub fn ring(n: usize, lanes: usize) -> TopologySpec {
        assert!(n >= 3, "a ring needs at least 3 nodes");
        let edges = (0..n)
            .map(|i| EdgeSpec {
                a: NodeId(i as u32),
                b: NodeId(((i + 1) % n) as u32),
                lanes,
                length: DEFAULT_HOP_LENGTH,
                media: MediaKind::OpticalFiber,
                class: LinkClass::InterRack,
            })
            .collect();
        TopologySpec {
            name: format!("ring-{n}-{lanes}lane"),
            kind: TopologyKind::Ring,
            nodes: n,
            edges,
            dims: None,
        }
    }

    /// A `rows x cols` 2-D mesh without wrap-around, `lanes` lanes per link.
    pub fn grid(rows: usize, cols: usize, lanes: usize) -> TopologySpec {
        assert!(rows >= 1 && cols >= 1);
        let id = |r: usize, c: usize| NodeId((r * cols + c) as u32);
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    // Along a row: sled-to-sled inside one rack.
                    edges.push(EdgeSpec {
                        a: id(r, c),
                        b: id(r, c + 1),
                        lanes,
                        length: DEFAULT_HOP_LENGTH,
                        media: MediaKind::OpticalFiber,
                        class: LinkClass::IntraRack,
                    });
                }
                if r + 1 < rows {
                    // Across rows: rack-to-rack.
                    edges.push(EdgeSpec {
                        a: id(r, c),
                        b: id(r + 1, c),
                        lanes,
                        length: DEFAULT_HOP_LENGTH,
                        media: MediaKind::OpticalFiber,
                        class: LinkClass::InterRack,
                    });
                }
            }
        }
        TopologySpec {
            name: format!("grid-{rows}x{cols}-{lanes}lane"),
            kind: TopologyKind::Grid,
            nodes: rows * cols,
            edges,
            dims: Some((rows, cols)),
        }
    }

    /// A `rows x cols` 2-D torus, `lanes` lanes per link (the grid plus
    /// wrap-around links; wrap-around cables are longer).
    pub fn torus(rows: usize, cols: usize, lanes: usize) -> TopologySpec {
        assert!(rows >= 2 && cols >= 2, "a torus needs at least 2x2 nodes");
        let mut spec = TopologySpec::grid(rows, cols, lanes);
        let id = |r: usize, c: usize| NodeId((r * cols + c) as u32);
        // Wrap-around links span the rack dimension: length scales with the
        // number of hops they replace.
        let wrap_len_rows = Length::from_m((2 * (rows.max(2) - 1)) as u64);
        let wrap_len_cols = Length::from_m((2 * (cols.max(2) - 1)) as u64);
        if cols > 2 {
            for r in 0..rows {
                spec.edges.push(EdgeSpec {
                    a: id(r, cols - 1),
                    b: id(r, 0),
                    lanes,
                    length: wrap_len_cols,
                    media: MediaKind::OpticalFiber,
                    class: LinkClass::IntraRack,
                });
            }
        }
        if rows > 2 {
            for c in 0..cols {
                spec.edges.push(EdgeSpec {
                    a: id(rows - 1, c),
                    b: id(0, c),
                    lanes,
                    length: wrap_len_rows,
                    media: MediaKind::OpticalFiber,
                    class: LinkClass::InterRack,
                });
            }
        }
        spec.name = format!("torus-{rows}x{cols}-{lanes}lane");
        spec.kind = TopologyKind::Torus;
        spec
    }

    /// A hypercube of dimension `dim` (2^dim nodes), `lanes` lanes per link.
    pub fn hypercube(dim: u32, lanes: usize) -> TopologySpec {
        let n = 1usize << dim;
        let mut edges = Vec::new();
        for node in 0..n {
            for bit in 0..dim {
                let peer = node ^ (1usize << bit);
                if peer > node {
                    edges.push(EdgeSpec {
                        a: NodeId(node as u32),
                        b: NodeId(peer as u32),
                        lanes,
                        length: DEFAULT_HOP_LENGTH,
                        media: MediaKind::OpticalFiber,
                        class: LinkClass::InterRack,
                    });
                }
            }
        }
        TopologySpec {
            name: format!("hypercube-{dim}d-{lanes}lane"),
            kind: TopologyKind::Hypercube,
            nodes: n,
            edges,
            dims: None,
        }
    }

    /// A two-level folded-Clos: `hosts` leaf nodes are split across
    /// `ceil(hosts / radix)` leaf switches, all connected to `spines` spine
    /// switches. Node ids: hosts first, then leaf switches, then spines.
    /// This is the conventional packet-switched baseline fabric.
    pub fn fat_tree(hosts: usize, radix: usize, spines: usize, lanes: usize) -> TopologySpec {
        assert!(hosts >= 1 && radix >= 1 && spines >= 1);
        let leaves = hosts.div_ceil(radix);
        let nodes = hosts + leaves + spines;
        let leaf_id = |l: usize| NodeId((hosts + l) as u32);
        let spine_id = |s: usize| NodeId((hosts + leaves + s) as u32);
        let mut edges = Vec::new();
        for h in 0..hosts {
            edges.push(EdgeSpec {
                a: NodeId(h as u32),
                b: leaf_id(h / radix),
                lanes,
                length: DEFAULT_HOP_LENGTH,
                media: MediaKind::CopperDac,
                class: LinkClass::IntraRack,
            });
        }
        for l in 0..leaves {
            for s in 0..spines {
                edges.push(EdgeSpec {
                    a: leaf_id(l),
                    b: spine_id(s),
                    lanes,
                    length: Length::from_m(4),
                    media: MediaKind::OpticalFiber,
                    class: LinkClass::InterRack,
                });
            }
        }
        TopologySpec {
            name: format!("fattree-{hosts}h-{leaves}l-{spines}s"),
            kind: TopologyKind::FatTree,
            nodes,
            edges,
            dims: None,
        }
    }

    /// A dragonfly of `groups` fully connected router groups, each with
    /// `routers_per_group` routers carrying `hosts_per_router` hosts.
    ///
    /// Node ids per group are contiguous — routers first, then hosts — so
    /// every group is one rack under [`TopologySpec::rack_of`] (all
    /// intra-group cables are [`LinkClass::IntraRack`]) and the smallest
    /// node of each rack is a router. Link classes split the dragonfly's
    /// two latency tiers exactly the way the sharded engine wants them:
    ///
    /// * **local** links (router↔host, router↔router inside a group) are
    ///   `IntraRack` at [`DEFAULT_HOP_LENGTH`], so a group never straddles
    ///   a shard boundary;
    /// * **global** links (one per unordered group pair, spread round-robin
    ///   over each group's routers) are `InterRack` optical runs at
    ///   [`DEFAULT_INTER_RACK_LENGTH`], so every partition cut is a
    ///   long-latency global cable and its flight time funds the
    ///   conservative lookahead. [`TopologySpec::with_rack_spacing`]
    ///   stretches exactly these.
    pub fn dragonfly(
        groups: usize,
        routers_per_group: usize,
        hosts_per_router: usize,
        lanes: usize,
    ) -> TopologySpec {
        assert!(groups >= 2, "a dragonfly needs at least 2 groups");
        assert!(routers_per_group >= 1 && hosts_per_router >= 1 && lanes >= 1);
        let group_size = routers_per_group * (1 + hosts_per_router);
        let router = |g: usize, r: usize| NodeId((g * group_size + r) as u32);
        let host = |g: usize, r: usize, k: usize| {
            NodeId((g * group_size + routers_per_group + r * hosts_per_router + k) as u32)
        };
        let mut edges = Vec::new();
        for g in 0..groups {
            // Local tier: an all-to-all among the group's routers plus the
            // host downlinks — one rack's worth of short cables.
            for r in 0..routers_per_group {
                for r2 in (r + 1)..routers_per_group {
                    edges.push(EdgeSpec {
                        a: router(g, r),
                        b: router(g, r2),
                        lanes,
                        length: DEFAULT_HOP_LENGTH,
                        media: MediaKind::OpticalFiber,
                        class: LinkClass::IntraRack,
                    });
                }
                for k in 0..hosts_per_router {
                    edges.push(EdgeSpec {
                        a: router(g, r),
                        b: host(g, r, k),
                        lanes,
                        length: DEFAULT_HOP_LENGTH,
                        media: MediaKind::CopperDac,
                        class: LinkClass::IntraRack,
                    });
                }
            }
        }
        // Global tier: one link per unordered group pair. Each group numbers
        // its g-1 global ports by destination group (skipping itself) and
        // spreads them round-robin over its routers, the standard dragonfly
        // cabling.
        for g1 in 0..groups {
            for g2 in (g1 + 1)..groups {
                let port1 = g2 - 1; // g2 > g1, so no self-skip adjustment.
                let port2 = g1; // g1 < g2: ports below g2 map directly.
                edges.push(EdgeSpec {
                    a: router(g1, port1 % routers_per_group),
                    b: router(g2, port2 % routers_per_group),
                    lanes,
                    length: DEFAULT_INTER_RACK_LENGTH,
                    media: MediaKind::OpticalFiber,
                    class: LinkClass::InterRack,
                });
            }
        }
        TopologySpec {
            name: format!(
                "dragonfly-{groups}g-{routers_per_group}a-{hosts_per_router}h-{lanes}lane"
            ),
            kind: TopologyKind::Dragonfly,
            nodes: groups * group_size,
            edges,
            dims: None,
        }
    }

    /// Total lanes demanded by the spec (a proxy for SerDes / power cost).
    pub fn total_lanes(&self) -> usize {
        self.edges.iter().map(|e| e.lanes).sum()
    }

    /// The (row, col) coordinate of a node for grid/torus specs.
    pub fn coordinates(&self, n: NodeId) -> Option<(usize, usize)> {
        let (rows, cols) = self.dims?;
        let idx = n.index();
        if idx >= rows * cols {
            return None;
        }
        Some((idx / cols, idx % cols))
    }

    /// Stretches every inter-rack edge to at least `length` (intra-rack
    /// edges are untouched). Longer inter-rack cables directly buy the
    /// sharded engine a longer conservative lookahead, at the cost of the
    /// extra propagation delay every cross-rack packet pays.
    pub fn with_rack_spacing(mut self, length: Length) -> TopologySpec {
        for edge in &mut self.edges {
            if edge.class == LinkClass::InterRack {
                edge.length = edge.length.max(length);
            }
        }
        self
    }

    /// The rack of every node: connected components of the **intra-rack**
    /// subgraph, numbered in increasing order of their smallest node index
    /// (so racks of row-major builders are contiguous index ranges). Nodes
    /// touched by no intra-rack edge form singleton racks.
    ///
    /// This is a pure function of the spec — never of a partition — and the
    /// invariant the sharded engine builds on: an intra-rack edge always has
    /// both endpoints in one rack, so any link between different racks is
    /// inter-rack class by construction.
    pub fn rack_of(&self) -> Vec<u32> {
        // Union-find over intra-rack edges.
        let mut parent: Vec<u32> = (0..self.nodes as u32).collect();
        fn find(parent: &mut [u32], n: u32) -> u32 {
            let mut root = n;
            while parent[root as usize] != root {
                root = parent[root as usize];
            }
            let mut cur = n;
            while parent[cur as usize] != root {
                let next = parent[cur as usize];
                parent[cur as usize] = root;
                cur = next;
            }
            root
        }
        for e in &self.edges {
            if e.class != LinkClass::IntraRack {
                continue;
            }
            if e.a.index() >= self.nodes || e.b.index() >= self.nodes {
                continue;
            }
            let ra = find(&mut parent, e.a.as_u32());
            let rb = find(&mut parent, e.b.as_u32());
            if ra != rb {
                // Root at the smaller index so component roots are the
                // component minima — rack numbering below then follows
                // node order deterministically.
                let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                parent[hi as usize] = lo;
            }
        }
        let mut rack = vec![u32::MAX; self.nodes];
        let mut next = 0u32;
        for n in 0..self.nodes as u32 {
            let root = find(&mut parent, n);
            if rack[root as usize] == u32::MAX {
                rack[root as usize] = next;
                next += 1;
            }
            rack[n as usize] = rack[root as usize];
        }
        rack
    }

    /// Number of racks (see [`TopologySpec::rack_of`]).
    pub fn rack_count(&self) -> usize {
        self.rack_of()
            .iter()
            .map(|&r| r as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Dense per-[`LinkIdx`](crate::arena::LinkIdx) mask over `arena`: true
    /// when the link's endpoints lie in different racks. This is the link
    /// set the sharded engine's lookahead minimises over — every partition
    /// cut link crosses racks (partitions align to rack boundaries), so the
    /// minimum inter-rack latency lower-bounds every cross-shard train. The
    /// mask is derived from [`TopologySpec::rack_of`], not from the class
    /// tags, so links created by reconfiguration plans are classified by the
    /// same rule that aligns partitions.
    pub fn inter_rack_mask(&self, arena: &crate::arena::LinkArena) -> Vec<bool> {
        let rack = self.rack_of();
        arena
            .iter()
            .map(|(idx, _)| {
                let (a, b) = arena.endpoints(idx);
                match (rack.get(a.index()), rack.get(b.index())) {
                    (Some(ra), Some(rb)) => ra != rb,
                    // Nodes beyond the spec (never produced by the
                    // builders): treat as inter-rack, the conservative side.
                    _ => true,
                }
            })
            .collect()
    }

    /// Realises the spec: creates every physical link in `phy` and returns
    /// the runtime topology graph referencing the created link ids.
    pub fn instantiate(&self, phy: &mut PhyState, lane_rate: BitRate) -> Topology {
        let mut topo = Topology::new(self.nodes);
        for e in &self.edges {
            let link = phy.add_link(
                e.a.as_u32(),
                e.b.as_u32(),
                Media::of_kind(e.media),
                e.length,
                e.lanes,
                lane_rate,
            );
            topo.add_edge(e.a, e.b, link);
        }
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_ring_shapes() {
        let line = TopologySpec::line(8, 2);
        assert_eq!(line.nodes, 8);
        assert_eq!(line.edges.len(), 7);
        let ring = TopologySpec::ring(8, 1);
        assert_eq!(ring.edges.len(), 8);
        assert_eq!(ring.total_lanes(), 8);
    }

    #[test]
    fn grid_edge_count_and_coordinates() {
        let g = TopologySpec::grid(4, 4, 2);
        // 2 * r * c - r - c edges in an r x c mesh.
        assert_eq!(g.edges.len(), 2 * 4 * 4 - 4 - 4);
        assert_eq!(g.nodes, 16);
        assert_eq!(g.coordinates(NodeId(0)), Some((0, 0)));
        assert_eq!(g.coordinates(NodeId(5)), Some((1, 1)));
        assert_eq!(g.coordinates(NodeId(15)), Some((3, 3)));
        assert_eq!(g.coordinates(NodeId(16)), None);
        assert_eq!(g.total_lanes(), g.edges.len() * 2);
    }

    #[test]
    fn torus_adds_wraparound_links() {
        let g = TopologySpec::grid(4, 4, 2);
        let t = TopologySpec::torus(4, 4, 1);
        // 4 row wraps + 4 column wraps.
        assert_eq!(t.edges.len(), g.edges.len() + 8);
        assert_eq!(t.kind, TopologyKind::Torus);
        // Wrap links are longer than mesh links.
        let max_len = t.edges.iter().map(|e| e.length).max().unwrap();
        assert!(max_len > DEFAULT_HOP_LENGTH);
        // A 1-lane torus uses no more SerDes lanes than a 2-lane grid of the
        // same size — the resource trade at the heart of the paper's Figure 2.
        assert!(t.total_lanes() <= g.total_lanes());
    }

    #[test]
    fn hypercube_degree_is_dimension() {
        let h = TopologySpec::hypercube(4, 1);
        assert_eq!(h.nodes, 16);
        assert_eq!(h.edges.len(), 16 * 4 / 2);
    }

    #[test]
    fn fat_tree_shape() {
        let f = TopologySpec::fat_tree(16, 8, 2, 4);
        // 16 hosts, 2 leaves, 2 spines.
        assert_eq!(f.nodes, 16 + 2 + 2);
        // 16 host uplinks + 2*2 leaf-spine links.
        assert_eq!(f.edges.len(), 16 + 4);
    }

    #[test]
    fn instantiate_builds_matching_phy_links() {
        let spec = TopologySpec::grid(3, 3, 2);
        let mut phy = PhyState::new();
        let topo = spec.instantiate(&mut phy, BitRate::from_gbps(25));
        assert_eq!(topo.node_count(), 9);
        assert_eq!(topo.edge_count(), spec.edges.len());
        assert_eq!(phy.link_count(), spec.edges.len());
        assert!(topo.is_connected());
        // Every topology link exists in the phy state with the right lane count.
        for link_id in topo.links() {
            let l = phy.link(link_id).expect("link must exist in phy");
            assert_eq!(l.total_lanes(), 2);
            let (a, b) = topo.endpoints(link_id).unwrap();
            assert!(l.connects(a.as_u32(), b.as_u32()));
        }
    }

    #[test]
    fn grid_and_torus_diameters() {
        let mut phy = PhyState::new();
        let grid = TopologySpec::grid(4, 4, 1).instantiate(&mut phy, BitRate::from_gbps(25));
        let mut phy2 = PhyState::new();
        let torus = TopologySpec::torus(4, 4, 1).instantiate(&mut phy2, BitRate::from_gbps(25));
        // Torus wrap-around halves the diameter of the mesh.
        assert_eq!(grid.diameter(), Some(6));
        assert_eq!(torus.diameter(), Some(4));
        assert!(torus.average_path_length().unwrap() < grid.average_path_length().unwrap());
    }

    #[test]
    fn edge_spec_pair_helpers() {
        let e1 = EdgeSpec {
            a: NodeId(3),
            b: NodeId(1),
            lanes: 1,
            length: DEFAULT_HOP_LENGTH,
            media: MediaKind::OpticalFiber,
            class: LinkClass::IntraRack,
        };
        let e2 = EdgeSpec {
            a: NodeId(1),
            b: NodeId(3),
            lanes: 2,
            length: DEFAULT_HOP_LENGTH,
            media: MediaKind::OpticalFiber,
            class: LinkClass::IntraRack,
        };
        assert!(e1.same_pair(&e2));
        assert_eq!(e1.pair(), (NodeId(1), NodeId(3)));
    }

    #[test]
    fn dragonfly_shape_and_classes() {
        let d = TopologySpec::dragonfly(3, 2, 2, 1);
        // 3 groups x (2 routers + 4 hosts).
        assert_eq!(d.nodes, 18);
        assert_eq!(d.kind, TopologyKind::Dragonfly);
        // Per group: 1 router-router + 4 host links; plus C(3,2) globals.
        assert_eq!(d.edges.len(), 3 * 5 + 3);
        let globals: Vec<_> = d
            .edges
            .iter()
            .filter(|e| e.class == LinkClass::InterRack)
            .collect();
        assert_eq!(globals.len(), 3, "one global link per group pair");
        for e in &globals {
            assert_eq!(e.length, DEFAULT_INTER_RACK_LENGTH);
            assert_ne!(e.a.index() / 6, e.b.index() / 6, "globals cross groups");
        }
        // Local links stay inside one group block.
        for e in d.edges.iter().filter(|e| e.class == LinkClass::IntraRack) {
            assert_eq!(e.a.index() / 6, e.b.index() / 6);
            assert_eq!(e.length, DEFAULT_HOP_LENGTH);
        }
        let mut phy = PhyState::new();
        let topo = d.instantiate(&mut phy, BitRate::from_gbps(25));
        assert!(topo.is_connected());
    }

    #[test]
    fn dragonfly_groups_are_racks_led_by_a_router() {
        let d = TopologySpec::dragonfly(4, 3, 2, 1);
        let racks = d.rack_of();
        assert_eq!(d.rack_count(), 4, "one rack per group");
        let group_size = 3 * (1 + 2);
        for (n, &rack) in racks.iter().enumerate() {
            assert_eq!(
                rack as usize,
                n / group_size,
                "node {n} racks with its group"
            );
        }
        // The smallest node of each rack is router 0 of the group — the
        // deterministic Valiant representative.
        for g in 0..4 {
            assert_eq!(racks[g * group_size] as usize, g);
        }
    }

    #[test]
    fn dragonfly_scales_past_a_thousand_hosts() {
        let d = TopologySpec::dragonfly(9, 8, 16, 2);
        assert_eq!(d.nodes, 9 * (8 + 8 * 16));
        let hosts = d.nodes - 9 * 8;
        assert!(hosts >= 1000, "{hosts} hosts");
        // 1152 host links + 9 * C(8,2) locals + C(9,2) globals.
        assert_eq!(d.edges.len(), 1152 + 9 * 28 + 36);
        assert_eq!(d.rack_count(), 9);
        // Rack spacing stretches exactly the 36 global cables.
        let spaced = d.with_rack_spacing(Length::from_m(50));
        let stretched = spaced
            .edges
            .iter()
            .filter(|e| e.length == Length::from_m(50))
            .count();
        assert_eq!(stretched, 36);
    }

    #[test]
    fn grid_racks_are_rows() {
        let g = TopologySpec::grid(4, 3, 1);
        let racks = g.rack_of();
        for (n, &rack) in racks.iter().enumerate() {
            assert_eq!(rack, (n / 3) as u32, "node {n} sits in its row's rack");
        }
        assert_eq!(g.rack_count(), 4);
        // Torus wrap links stay within rows, so the racks are unchanged.
        let t = TopologySpec::torus(4, 4, 1);
        assert_eq!(t.rack_count(), 4);
    }

    #[test]
    fn fat_tree_racks_pair_host_blocks_with_their_leaf() {
        let f = TopologySpec::fat_tree(16, 8, 2, 1);
        let racks = f.rack_of();
        assert_eq!(
            f.rack_count(),
            2 + 2,
            "2 host+leaf racks, 2 singleton spines"
        );
        // Hosts 0..8 + leaf 16 share a rack; hosts 8..16 + leaf 17 share the next.
        for h in 0..8 {
            assert_eq!(racks[h], racks[16]);
            assert_eq!(racks[8 + h], racks[17]);
        }
        assert_ne!(racks[16], racks[17]);
        // Spines are their own racks.
        assert_ne!(racks[18], racks[16]);
        assert_ne!(racks[19], racks[18]);
    }

    #[test]
    fn all_inter_rack_builders_have_singleton_racks() {
        for spec in [
            TopologySpec::line(5, 1),
            TopologySpec::ring(6, 1),
            TopologySpec::hypercube(3, 1),
        ] {
            let n = spec.nodes;
            assert_eq!(spec.rack_count(), n, "{}: one rack per node", spec.name);
            let racks = spec.rack_of();
            for (i, &r) in racks.iter().enumerate() {
                assert_eq!(r as usize, i);
            }
        }
    }

    #[test]
    fn rack_spacing_stretches_only_inter_rack_links() {
        let spacing = Length::from_m(20);
        let g = TopologySpec::grid(3, 3, 1).with_rack_spacing(spacing);
        for e in &g.edges {
            match e.class {
                LinkClass::IntraRack => assert_eq!(e.length, DEFAULT_HOP_LENGTH),
                LinkClass::InterRack => assert_eq!(e.length, spacing),
            }
        }
        // Already-longer cables (torus wraps) are never shortened.
        let t = TopologySpec::torus(8, 8, 1).with_rack_spacing(Length::from_m(1));
        let max_len = t.edges.iter().map(|e| e.length).max().unwrap();
        assert!(max_len >= Length::from_m(14));
    }

    #[test]
    fn inter_rack_mask_marks_exactly_the_rack_crossing_links() {
        let spec = TopologySpec::grid(3, 3, 1);
        let mut phy = PhyState::new();
        let topo = spec.instantiate(&mut phy, BitRate::from_gbps(25));
        let arena = crate::arena::LinkArena::build(&topo);
        let racks = spec.rack_of();
        let mask = spec.inter_rack_mask(&arena);
        assert_eq!(mask.len(), arena.len());
        let inter = mask.iter().filter(|&&m| m).count();
        assert_eq!(inter, 6, "the 6 vertical links cross racks");
        for (idx, _) in arena.iter() {
            let (a, b) = arena.endpoints(idx);
            assert_eq!(mask[idx.index()], racks[a.index()] != racks[b.index()],);
        }
    }
}
