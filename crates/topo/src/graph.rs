//! The runtime topology graph.
//!
//! A [`Topology`] is an undirected multigraph over node indices, where each
//! edge carries the [`LinkId`] of the physical link realising it. It is the
//! structure routing operates on and the structure the Closed Ring Control
//! rewrites when it reconfigures the fabric.

use rackfabric_phy::LinkId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};

/// Index of a node (sled) in the rack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    pub fn as_u32(self) -> u32 {
        self.0
    }
    /// The raw index as usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One undirected adjacency: neighbour node and the physical link used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Adjacency {
    /// The neighbouring node.
    pub neighbor: NodeId,
    /// The physical link realising this edge.
    pub link: LinkId,
}

/// An undirected multigraph of nodes connected by physical links.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    node_count: usize,
    adjacency: HashMap<NodeId, Vec<Adjacency>>,
    /// Reverse index: which node pair a link connects.
    link_endpoints: HashMap<LinkId, (NodeId, NodeId)>,
}

impl Topology {
    /// Creates a topology with `node_count` nodes and no edges.
    pub fn new(node_count: usize) -> Self {
        Topology {
            node_count,
            adjacency: HashMap::new(),
            link_endpoints: HashMap::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count as u32).map(NodeId)
    }

    /// Number of edges (physical links) in the graph.
    pub fn edge_count(&self) -> usize {
        self.link_endpoints.len()
    }

    /// Adds an undirected edge between `a` and `b` realised by `link`.
    ///
    /// # Panics
    /// Panics if either node is out of range, if `a == b`, or if the link id
    /// is already present.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, link: LinkId) {
        assert!(a.index() < self.node_count, "node {a:?} out of range");
        assert!(b.index() < self.node_count, "node {b:?} out of range");
        assert_ne!(a, b, "self loops are not allowed");
        assert!(
            !self.link_endpoints.contains_key(&link),
            "link {link:?} already in topology"
        );
        self.adjacency
            .entry(a)
            .or_default()
            .push(Adjacency { neighbor: b, link });
        self.adjacency
            .entry(b)
            .or_default()
            .push(Adjacency { neighbor: a, link });
        self.link_endpoints.insert(link, (a, b));
    }

    /// Removes the edge realised by `link`, returning its endpoints.
    pub fn remove_edge(&mut self, link: LinkId) -> Option<(NodeId, NodeId)> {
        let (a, b) = self.link_endpoints.remove(&link)?;
        if let Some(v) = self.adjacency.get_mut(&a) {
            v.retain(|adj| adj.link != link);
        }
        if let Some(v) = self.adjacency.get_mut(&b) {
            v.retain(|adj| adj.link != link);
        }
        Some((a, b))
    }

    /// Neighbours of `n` (with the links reaching them), sorted by neighbour
    /// id then link id for determinism.
    pub fn neighbors(&self, n: NodeId) -> Vec<Adjacency> {
        let mut v = self.adjacency.get(&n).cloned().unwrap_or_default();
        v.sort_by_key(|adj| (adj.neighbor, adj.link));
        v
    }

    /// Degree of node `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency.get(&n).map_or(0, |v| v.len())
    }

    /// The endpoints of `link`, if it is part of the topology.
    pub fn endpoints(&self, link: LinkId) -> Option<(NodeId, NodeId)> {
        self.link_endpoints.get(&link).copied()
    }

    /// All links between `a` and `b` (parallel links possible), sorted.
    pub fn links_between(&self, a: NodeId, b: NodeId) -> Vec<LinkId> {
        let mut v: Vec<LinkId> = self
            .adjacency
            .get(&a)
            .map(|adjs| {
                adjs.iter()
                    .filter(|adj| adj.neighbor == b)
                    .map(|adj| adj.link)
                    .collect()
            })
            .unwrap_or_default();
        v.sort();
        v
    }

    /// All link ids, sorted.
    pub fn links(&self) -> Vec<LinkId> {
        let mut v: Vec<LinkId> = self.link_endpoints.keys().copied().collect();
        v.sort();
        v
    }

    /// True if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.node_count == 0 {
            return true;
        }
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(NodeId(0));
        seen.insert(NodeId(0));
        while let Some(n) = queue.pop_front() {
            for adj in self.neighbors(n) {
                if seen.insert(adj.neighbor) {
                    queue.push_back(adj.neighbor);
                }
            }
        }
        seen.len() == self.node_count
    }

    /// Hop distances from `src` to every reachable node (BFS).
    pub fn distances_from(&self, src: NodeId) -> HashMap<NodeId, usize> {
        let mut dist = HashMap::new();
        let mut queue = VecDeque::new();
        dist.insert(src, 0usize);
        queue.push_back(src);
        while let Some(n) = queue.pop_front() {
            let d = dist[&n];
            for adj in self.neighbors(n) {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(adj.neighbor) {
                    e.insert(d + 1);
                    queue.push_back(adj.neighbor);
                }
            }
        }
        dist
    }

    /// The longest shortest path in hops (None if disconnected or empty).
    pub fn diameter(&self) -> Option<usize> {
        if self.node_count == 0 || !self.is_connected() {
            return None;
        }
        let mut best = 0;
        for n in self.nodes() {
            let d = self.distances_from(n);
            best = best.max(*d.values().max().unwrap_or(&0));
        }
        Some(best)
    }

    /// Mean shortest-path hop count over all ordered node pairs (None if
    /// disconnected).
    pub fn average_path_length(&self) -> Option<f64> {
        if self.node_count < 2 || !self.is_connected() {
            return None;
        }
        let mut total = 0usize;
        let mut pairs = 0usize;
        for n in self.nodes() {
            let d = self.distances_from(n);
            for (m, hops) in d {
                if m != n {
                    total += hops;
                    pairs += 1;
                }
            }
        }
        Some(total as f64 / pairs as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Topology {
        let mut t = Topology::new(n);
        for i in 0..n - 1 {
            t.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), LinkId(i as u64));
        }
        t
    }

    #[test]
    fn add_and_query_edges() {
        let t = line(4);
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.edge_count(), 3);
        assert_eq!(t.degree(NodeId(0)), 1);
        assert_eq!(t.degree(NodeId(1)), 2);
        assert_eq!(t.neighbors(NodeId(1)).len(), 2);
        assert_eq!(t.endpoints(LinkId(0)), Some((NodeId(0), NodeId(1))));
        assert_eq!(t.links_between(NodeId(1), NodeId(2)), vec![LinkId(1)]);
        assert!(t.links_between(NodeId(0), NodeId(3)).is_empty());
        assert_eq!(t.links().len(), 3);
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn self_loops_are_rejected() {
        let mut t = Topology::new(2);
        t.add_edge(NodeId(0), NodeId(0), LinkId(0));
    }

    #[test]
    #[should_panic(expected = "already in topology")]
    fn duplicate_link_ids_are_rejected() {
        let mut t = Topology::new(3);
        t.add_edge(NodeId(0), NodeId(1), LinkId(0));
        t.add_edge(NodeId(1), NodeId(2), LinkId(0));
    }

    #[test]
    fn parallel_links_are_allowed() {
        let mut t = Topology::new(2);
        t.add_edge(NodeId(0), NodeId(1), LinkId(0));
        t.add_edge(NodeId(0), NodeId(1), LinkId(1));
        assert_eq!(
            t.links_between(NodeId(0), NodeId(1)),
            vec![LinkId(0), LinkId(1)]
        );
        assert_eq!(t.degree(NodeId(0)), 2);
    }

    #[test]
    fn remove_edge_disconnects() {
        let mut t = line(3);
        assert!(t.is_connected());
        let removed = t.remove_edge(LinkId(1)).unwrap();
        assert_eq!(removed, (NodeId(1), NodeId(2)));
        assert!(!t.is_connected());
        assert_eq!(t.edge_count(), (2 - 1)); // one of two original edges left
        assert!(t.remove_edge(LinkId(1)).is_none(), "double remove is None");
    }

    #[test]
    fn distances_and_diameter_of_a_line() {
        let t = line(5);
        let d = t.distances_from(NodeId(0));
        assert_eq!(d[&NodeId(4)], 4);
        assert_eq!(t.diameter(), Some(4));
        let apl = t.average_path_length().unwrap();
        assert!(apl > 1.0 && apl < 4.0);
    }

    #[test]
    fn diameter_of_disconnected_graph_is_none() {
        let mut t = Topology::new(4);
        t.add_edge(NodeId(0), NodeId(1), LinkId(0));
        t.add_edge(NodeId(2), NodeId(3), LinkId(1));
        assert!(!t.is_connected());
        assert_eq!(t.diameter(), None);
        assert_eq!(t.average_path_length(), None);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let t = Topology::new(0);
        assert!(t.is_connected());
        let t1 = Topology::new(1);
        assert!(t1.is_connected());
        assert_eq!(t1.diameter(), Some(0));
    }
}
