//! Routing over the topology graph.
//!
//! The Closed Ring Control expresses its per-link prices as a cost map; this
//! module turns costs into paths. Six algorithms are provided:
//!
//! * [`shortest_path`] — plain BFS by hop count (the static baseline; the
//!   **minimal** policy of a dragonfly).
//! * [`dijkstra`] — minimum-cost path under an arbitrary per-link cost map
//!   (what the CRC uses, with its price tags as costs).
//! * [`ecmp_paths`] — all minimum-hop paths, for equal-cost multi-path
//!   spreading in the fat-tree baseline.
//! * [`dimension_ordered`] — X-then-Y routing on grid/torus specs, the
//!   deadlock-free default of mesh NoCs.
//! * [`valiant_route`] — Valiant load balancing: detour through a
//!   flow-hashed intermediate rack (dragonfly group), trading path length
//!   for adversarial-traffic immunity.
//! * [`adaptive_route`] — UGAL-style congestion-sensed choice between the
//!   minimal and the Valiant path under the CRC's current price map.
//!
//! Every algorithm is a pure function of `(topology, racks, cost map,
//! flow id)` — no internal randomness — which is what lets the sharded
//! engine's per-shard route caches agree byte-for-byte at any shard count.

use crate::graph::{NodeId, Topology};
use crate::spec::{TopologyKind, TopologySpec};
use rackfabric_phy::LinkId;
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// A route: the sequence of links to traverse plus the node sequence
/// (one node more than links).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// Visited nodes, starting with the source and ending with the
    /// destination.
    pub nodes: Vec<NodeId>,
    /// Links traversed, in order.
    pub links: Vec<LinkId>,
}

impl Route {
    /// A route from a node to itself.
    pub fn trivial(node: NodeId) -> Route {
        Route {
            nodes: vec![node],
            links: Vec::new(),
        }
    }
    /// Number of hops (links traversed).
    pub fn hops(&self) -> usize {
        self.links.len()
    }
    /// The source node.
    pub fn source(&self) -> NodeId {
        *self.nodes.first().expect("route has at least one node")
    }
    /// The destination node.
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("route has at least one node")
    }
    /// The nodes strictly between source and destination.
    pub fn intermediate_nodes(&self) -> &[NodeId] {
        if self.nodes.len() <= 2 {
            &[]
        } else {
            &self.nodes[1..self.nodes.len() - 1]
        }
    }
}

/// Which algorithm a fabric uses to pick paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RoutingAlgorithm {
    /// Minimum hop count (BFS).
    #[default]
    ShortestHop,
    /// Minimum cost under the CRC's current price map (Dijkstra).
    MinCost,
    /// Equal-cost multi-path over minimum-hop routes, selected by flow id.
    Ecmp,
    /// Dimension-ordered (X then Y) routing; only valid on grid/torus specs.
    DimensionOrdered,
    /// Valiant load balancing: route via a flow-hashed intermediate rack
    /// (dragonfly group), falling back to minimal when no detour exists.
    Valiant,
    /// UGAL-style adaptive routing: per flow, pick the cheaper of the
    /// minimal and the Valiant path under the CRC's current price map
    /// (ties go minimal, so an uncongested fabric routes minimally).
    Adaptive,
}

impl RoutingAlgorithm {
    /// True when routes depend on the flow id, so route caches must key the
    /// flow into their selector instead of sharing one route per node pair.
    pub fn per_flow(self) -> bool {
        matches!(
            self,
            RoutingAlgorithm::Ecmp | RoutingAlgorithm::Valiant | RoutingAlgorithm::Adaptive
        )
    }

    /// True when routes depend on the CRC's price map, so the engine must
    /// refresh its cost snapshot and invalidate cached routes every control
    /// epoch.
    pub fn cost_aware(self) -> bool {
        matches!(self, RoutingAlgorithm::MinCost | RoutingAlgorithm::Adaptive)
    }
}

/// BFS shortest path by hop count. Ties are broken deterministically by
/// neighbour id. Returns `None` if `dst` is unreachable.
pub fn shortest_path(topo: &Topology, src: NodeId, dst: NodeId) -> Option<Route> {
    if src == dst {
        return Some(Route::trivial(src));
    }
    let mut prev: HashMap<NodeId, (NodeId, LinkId)> = HashMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(n) = queue.pop_front() {
        for adj in topo.neighbors(n) {
            if adj.neighbor != src && !prev.contains_key(&adj.neighbor) {
                prev.insert(adj.neighbor, (n, adj.link));
                if adj.neighbor == dst {
                    return Some(rebuild(src, dst, &prev));
                }
                queue.push_back(adj.neighbor);
            }
        }
    }
    None
}

/// A single-source predecessor tree: `tree[n]` is the `(parent, link)` pair
/// reaching node `n`, dense-indexed by node. Produced by
/// [`shortest_path_tree`] / [`dijkstra_tree`], consumed by
/// [`route_from_tree`]. Dense vectors (not maps) because route-cache misses
/// build one of these per source per control epoch — a measured hot spot.
pub type PredecessorTree = Vec<Option<(NodeId, LinkId)>>;

/// BFS shortest-path *tree* from `src`, covering every reachable node. One
/// call amortises route construction for all destinations of a source.
pub fn shortest_path_tree(topo: &Topology, src: NodeId) -> PredecessorTree {
    let mut prev: PredecessorTree = vec![None; topo.node_count()];
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(n) = queue.pop_front() {
        for adj in topo.neighbors(n) {
            if adj.neighbor != src && prev[adj.neighbor.index()].is_none() {
                prev[adj.neighbor.index()] = Some((n, adj.link));
                queue.push_back(adj.neighbor);
            }
        }
    }
    prev
}

/// Dijkstra minimum-cost *tree* from `src` under `costs`, with the same
/// deterministic tie-breaking as [`dijkstra`]. Links with non-finite or
/// negative cost are unusable.
pub fn dijkstra_tree(
    topo: &Topology,
    src: NodeId,
    costs: &HashMap<LinkId, f64>,
    default_cost: f64,
) -> PredecessorTree {
    #[derive(PartialEq)]
    struct Item {
        cost: f64,
        node: NodeId,
    }
    impl Eq for Item {}
    impl Ord for Item {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other
                .cost
                .partial_cmp(&self.cost)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| other.node.cmp(&self.node))
        }
    }
    impl PartialOrd for Item {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut dist = vec![f64::INFINITY; topo.node_count()];
    let mut prev: PredecessorTree = vec![None; topo.node_count()];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0.0;
    heap.push(Item {
        cost: 0.0,
        node: src,
    });
    while let Some(Item { cost, node }) = heap.pop() {
        if cost > dist[node.index()] {
            continue;
        }
        for adj in topo.neighbors(node) {
            let link_cost = costs.get(&adj.link).copied().unwrap_or(default_cost);
            if !link_cost.is_finite() || link_cost < 0.0 {
                continue;
            }
            let next = cost + link_cost;
            if next < dist[adj.neighbor.index()] {
                dist[adj.neighbor.index()] = next;
                prev[adj.neighbor.index()] = Some((node, adj.link));
                heap.push(Item {
                    cost: next,
                    node: adj.neighbor,
                });
            }
        }
    }
    prev
}

/// Reconstructs the route from `src` to `dst` out of a predecessor tree.
/// Returns `None` when `dst` is unreachable.
pub fn route_from_tree(src: NodeId, dst: NodeId, tree: &PredecessorTree) -> Option<Route> {
    if src == dst {
        return Some(Route::trivial(src));
    }
    tree.get(dst.index())?.as_ref()?;
    let mut nodes = vec![dst];
    let mut links = Vec::new();
    let mut cur = dst;
    while cur != src {
        let (p, l) = tree[cur.index()].expect("tree path is connected");
        links.push(l);
        nodes.push(p);
        cur = p;
    }
    nodes.reverse();
    links.reverse();
    Some(Route { nodes, links })
}

fn rebuild(src: NodeId, dst: NodeId, prev: &HashMap<NodeId, (NodeId, LinkId)>) -> Route {
    let mut nodes = vec![dst];
    let mut links = Vec::new();
    let mut cur = dst;
    while cur != src {
        let (p, l) = prev[&cur];
        links.push(l);
        nodes.push(p);
        cur = p;
    }
    nodes.reverse();
    links.reverse();
    Route { nodes, links }
}

/// Dijkstra minimum-cost path. Links missing from `costs` get `default_cost`;
/// links with non-finite or negative cost are treated as unusable.
pub fn dijkstra(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    costs: &HashMap<LinkId, f64>,
    default_cost: f64,
) -> Option<Route> {
    if src == dst {
        return Some(Route::trivial(src));
    }
    #[derive(PartialEq)]
    struct Item {
        cost: f64,
        node: NodeId,
    }
    impl Eq for Item {}
    impl Ord for Item {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Min-heap on cost, then node id for determinism.
            other
                .cost
                .partial_cmp(&self.cost)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| other.node.cmp(&self.node))
        }
    }
    impl PartialOrd for Item {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut dist: HashMap<NodeId, f64> = HashMap::new();
    let mut prev: HashMap<NodeId, (NodeId, LinkId)> = HashMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(src, 0.0);
    heap.push(Item {
        cost: 0.0,
        node: src,
    });

    while let Some(Item { cost, node }) = heap.pop() {
        if node == dst {
            return Some(rebuild(src, dst, &prev));
        }
        if cost > *dist.get(&node).unwrap_or(&f64::INFINITY) {
            continue;
        }
        for adj in topo.neighbors(node) {
            let link_cost = costs.get(&adj.link).copied().unwrap_or(default_cost);
            if !link_cost.is_finite() || link_cost < 0.0 {
                continue;
            }
            let next = cost + link_cost;
            if next < *dist.get(&adj.neighbor).unwrap_or(&f64::INFINITY) {
                dist.insert(adj.neighbor, next);
                prev.insert(adj.neighbor, (node, adj.link));
                heap.push(Item {
                    cost: next,
                    node: adj.neighbor,
                });
            }
        }
    }
    None
}

/// Every minimum-hop path from `src` to `dst`, capped at `max_paths`
/// (enumeration is exponential in pathological graphs). Paths are returned in
/// a deterministic order.
pub fn ecmp_paths(topo: &Topology, src: NodeId, dst: NodeId, max_paths: usize) -> Vec<Route> {
    if src == dst {
        return vec![Route::trivial(src)];
    }
    // BFS distances from dst so we can walk only along shortest-path DAG edges.
    let dist_to_dst = topo.distances_from(dst);
    if !dist_to_dst.contains_key(&src) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut stack = vec![(src, Route::trivial(src))];
    while let Some((node, route)) = stack.pop() {
        if out.len() >= max_paths {
            break;
        }
        if node == dst {
            out.push(route);
            continue;
        }
        let d = dist_to_dst[&node];
        // Deterministic order: iterate neighbours sorted (reverse for stack).
        let mut nexts: Vec<_> = topo
            .neighbors(node)
            .into_iter()
            .filter(|adj| {
                dist_to_dst
                    .get(&adj.neighbor)
                    .is_some_and(|&nd| nd + 1 == d)
            })
            .collect();
        nexts.reverse();
        for adj in nexts {
            let mut r = route.clone();
            r.nodes.push(adj.neighbor);
            r.links.push(adj.link);
            stack.push((adj.neighbor, r));
        }
    }
    out
}

/// Simple splitmix hash of a flow id, shared by every flow-hashed selector
/// so spreading quality is uniform across policies.
fn splitmix(flow_id: u64) -> u64 {
    let mut h = flow_id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h
}

/// Selects one of the ECMP paths by hashing `flow_id` (deterministic).
pub fn ecmp_select(topo: &Topology, src: NodeId, dst: NodeId, flow_id: u64) -> Option<Route> {
    let paths = ecmp_paths(topo, src, dst, 16);
    if paths.is_empty() {
        return None;
    }
    let idx = (splitmix(flow_id) % paths.len() as u64) as usize;
    Some(paths[idx].clone())
}

/// Valiant load balancing over the rack (dragonfly group) structure:
/// `flow_id` hashes to an intermediate rack distinct from both endpoints'
/// racks, and the route is the minimal path to that rack's representative
/// (its smallest node — a router under the dragonfly builder) stitched to
/// the minimal path onward. Falls back to the plain minimal path when fewer
/// than three racks exist or the endpoints share a rack (no useful detour).
///
/// `racks` is the node-to-rack table from
/// [`TopologySpec::rack_of`](crate::spec::TopologySpec::rack_of).
pub fn valiant_route(
    topo: &Topology,
    racks: &[u32],
    src: NodeId,
    dst: NodeId,
    flow_id: u64,
) -> Option<Route> {
    if src == dst {
        return Some(Route::trivial(src));
    }
    let (src_rack, dst_rack) = match (racks.get(src.index()), racks.get(dst.index())) {
        (Some(&s), Some(&d)) => (s, d),
        _ => return shortest_path(topo, src, dst),
    };
    let rack_count = racks.iter().map(|&r| r as u64 + 1).max().unwrap_or(0);
    let excluded = if src_rack == dst_rack { 1 } else { 2 };
    let candidates = rack_count.saturating_sub(excluded);
    if src_rack == dst_rack || candidates == 0 {
        return shortest_path(topo, src, dst);
    }
    // Hash into the candidate racks, skipping the endpoints' own racks.
    let mut pick = splitmix(flow_id) % candidates;
    let (lo, hi) = if src_rack < dst_rack {
        (src_rack as u64, dst_rack as u64)
    } else {
        (dst_rack as u64, src_rack as u64)
    };
    if pick >= lo {
        pick += 1;
    }
    if pick >= hi {
        pick += 1;
    }
    // Representative: the smallest node of the picked rack (racks are
    // numbered in node order, so the first match is the minimum).
    let rep = racks
        .iter()
        .position(|&r| r as u64 == pick)
        .map(|i| NodeId(i as u32))?;
    // Each leg must stay out of the *other* endpoint's rack — otherwise BFS
    // tie-breaking can route the second leg back through the source group
    // and re-traverse exactly the congested global link the detour was
    // meant to dodge. When a leg cannot avoid the rack (e.g. grid racks
    // form a path), fall back to the unconstrained leg.
    let leg1 = shortest_path_avoiding(topo, src, rep, |n| racks[n.index()] == dst_rack)
        .or_else(|| shortest_path(topo, src, rep))?;
    let leg2 = shortest_path_avoiding(topo, rep, dst, |n| racks[n.index()] == src_rack)
        .or_else(|| shortest_path(topo, rep, dst))?;
    let mut nodes = leg1.nodes;
    nodes.extend_from_slice(&leg2.nodes[1..]);
    let mut links = leg1.links;
    links.extend_from_slice(&leg2.links);
    Some(Route { nodes, links })
}

/// BFS shortest path skipping every node where `banned` holds (`src` and
/// `dst` are always admitted). Same deterministic tie-breaking as
/// [`shortest_path`].
fn shortest_path_avoiding(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    banned: impl Fn(NodeId) -> bool,
) -> Option<Route> {
    if src == dst {
        return Some(Route::trivial(src));
    }
    let mut prev: HashMap<NodeId, (NodeId, LinkId)> = HashMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(n) = queue.pop_front() {
        for adj in topo.neighbors(n) {
            if adj.neighbor != dst && banned(adj.neighbor) {
                continue;
            }
            if adj.neighbor != src && !prev.contains_key(&adj.neighbor) {
                prev.insert(adj.neighbor, (n, adj.link));
                if adj.neighbor == dst {
                    return Some(rebuild(src, dst, &prev));
                }
                queue.push_back(adj.neighbor);
            }
        }
    }
    None
}

/// Total cost of a route under `costs` (links absent from the map cost
/// `default_cost`). Summed in traversal order, so the result is bit-exact
/// for the same route and map on every shard.
pub fn route_cost(route: &Route, costs: &HashMap<LinkId, f64>, default_cost: f64) -> f64 {
    route
        .links
        .iter()
        .map(|l| costs.get(l).copied().unwrap_or(default_cost))
        .sum()
}

/// UGAL-style adaptive routing: compares the minimal path against the
/// flow's Valiant detour under the CRC's current price map and takes the
/// strictly cheaper one (ties go minimal, so an unpriced fabric routes
/// minimally — the Valiant path can never win on hop count alone).
pub fn adaptive_route(
    topo: &Topology,
    racks: &[u32],
    src: NodeId,
    dst: NodeId,
    flow_id: u64,
    costs: &HashMap<LinkId, f64>,
    default_cost: f64,
) -> Option<Route> {
    let minimal = shortest_path(topo, src, dst)?;
    let Some(valiant) = valiant_route(topo, racks, src, dst, flow_id) else {
        return Some(minimal);
    };
    if route_cost(&valiant, costs, default_cost) < route_cost(&minimal, costs, default_cost) {
        Some(valiant)
    } else {
        Some(minimal)
    }
}

/// Dimension-ordered (X-then-Y) routing for grid and torus specs. Routes
/// along the column dimension first, then the row dimension, taking the
/// wrap-around link on a torus when it is shorter. Returns `None` for specs
/// without 2-D coordinates or if a required link is missing from the
/// topology.
pub fn dimension_ordered(
    spec: &TopologySpec,
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
) -> Option<Route> {
    if !matches!(spec.kind, TopologyKind::Grid | TopologyKind::Torus) {
        return None;
    }
    let (rows, cols) = spec.dims?;
    let (mut r, mut c) = spec.coordinates(src)?;
    let (dr, dc) = spec.coordinates(dst)?;
    let torus = spec.kind == TopologyKind::Torus;
    let id = |r: usize, c: usize| NodeId((r * cols + c) as u32);

    let mut route = Route::trivial(src);
    let step = |route: &mut Route, from: NodeId, to: NodeId| -> Option<()> {
        let links = topo.links_between(from, to);
        let link = *links.first()?;
        route.nodes.push(to);
        route.links.push(link);
        Some(())
    };

    // Column (X) dimension first.
    while c != dc {
        let next_c = next_coordinate(c, dc, cols, torus);
        let from = id(r, c);
        let to = id(r, next_c);
        step(&mut route, from, to)?;
        c = next_c;
    }
    // Then row (Y) dimension.
    while r != dr {
        let next_r = next_coordinate(r, dr, rows, torus);
        let from = id(r, c);
        let to = id(next_r, c);
        step(&mut route, from, to)?;
        r = next_r;
    }
    Some(route)
}

/// The next coordinate moving from `cur` toward `dst` along a dimension of
/// size `n`, going through the wrap-around when `torus` and it is strictly
/// shorter.
fn next_coordinate(cur: usize, dst: usize, n: usize, torus: bool) -> usize {
    if cur == dst {
        return cur;
    }
    let forward = (dst + n - cur) % n; // hops going +1 with wrap
    let backward = (cur + n - dst) % n; // hops going -1 with wrap
    if !torus {
        if dst > cur {
            cur + 1
        } else {
            cur - 1
        }
    } else if forward <= backward {
        (cur + 1) % n
    } else {
        (cur + n - 1) % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TopologySpec;
    use rackfabric_phy::PhyState;
    use rackfabric_sim::units::BitRate;

    fn build(spec: &TopologySpec) -> Topology {
        let mut phy = PhyState::new();
        spec.instantiate(&mut phy, BitRate::from_gbps(25))
    }

    #[test]
    fn shortest_path_on_a_line() {
        let spec = TopologySpec::line(6, 1);
        let topo = build(&spec);
        let r = shortest_path(&topo, NodeId(0), NodeId(5)).unwrap();
        assert_eq!(r.hops(), 5);
        assert_eq!(r.source(), NodeId(0));
        assert_eq!(r.destination(), NodeId(5));
        assert_eq!(r.intermediate_nodes().len(), 4);
        assert_eq!(r.nodes.len(), r.links.len() + 1);
        // Self route.
        assert_eq!(
            shortest_path(&topo, NodeId(2), NodeId(2)).unwrap().hops(),
            0
        );
    }

    #[test]
    fn shortest_path_unreachable_is_none() {
        let mut topo = Topology::new(4);
        topo.add_edge(NodeId(0), NodeId(1), LinkId(0));
        assert!(shortest_path(&topo, NodeId(0), NodeId(3)).is_none());
    }

    #[test]
    fn torus_shortest_uses_wraparound() {
        let spec = TopologySpec::torus(4, 4, 1);
        let topo = build(&spec);
        // Node 0 (0,0) to node 3 (0,3): 1 hop via wrap instead of 3.
        let r = shortest_path(&topo, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(r.hops(), 1);
    }

    #[test]
    fn dijkstra_avoids_expensive_links() {
        let spec = TopologySpec::ring(6, 1);
        let topo = build(&spec);
        // Going 0 -> 3 both ways is 3 hops; make one direction expensive.
        let cheap = shortest_path(&topo, NodeId(0), NodeId(3)).unwrap();
        let mut costs = HashMap::new();
        // Penalise the first link of the BFS-chosen path heavily.
        costs.insert(cheap.links[0], 100.0);
        let r = dijkstra(&topo, NodeId(0), NodeId(3), &costs, 1.0).unwrap();
        assert_eq!(r.hops(), 3, "the other way round the ring is still 3 hops");
        assert_ne!(r.links[0], cheap.links[0], "must avoid the priced-up link");
    }

    #[test]
    fn dijkstra_treats_infinite_cost_as_unusable() {
        let spec = TopologySpec::line(3, 1);
        let topo = build(&spec);
        let mut costs = HashMap::new();
        for l in topo.links() {
            costs.insert(l, f64::INFINITY);
        }
        assert!(dijkstra(&topo, NodeId(0), NodeId(2), &costs, 1.0).is_none());
    }

    #[test]
    fn dijkstra_prefers_fewer_hops_with_uniform_costs() {
        let spec = TopologySpec::grid(3, 3, 1);
        let topo = build(&spec);
        let r = dijkstra(&topo, NodeId(0), NodeId(8), &HashMap::new(), 1.0).unwrap();
        assert_eq!(r.hops(), 4);
    }

    #[test]
    fn ecmp_finds_all_grid_paths() {
        let spec = TopologySpec::grid(2, 2, 1);
        let topo = build(&spec);
        // 0 -> 3 has exactly two 2-hop paths.
        let paths = ecmp_paths(&topo, NodeId(0), NodeId(3), 8);
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().all(|p| p.hops() == 2));
        // Selection is deterministic per flow id and covers both paths.
        let a = ecmp_select(&topo, NodeId(0), NodeId(3), 1).unwrap();
        let b = ecmp_select(&topo, NodeId(0), NodeId(3), 1).unwrap();
        assert_eq!(a, b);
        let picks: std::collections::HashSet<Vec<LinkId>> = (0..32)
            .map(|f| ecmp_select(&topo, NodeId(0), NodeId(3), f).unwrap().links)
            .collect();
        assert_eq!(
            picks.len(),
            2,
            "different flows should spread over both paths"
        );
    }

    #[test]
    fn ecmp_respects_max_paths_cap() {
        let spec = TopologySpec::grid(3, 3, 1);
        let topo = build(&spec);
        let paths = ecmp_paths(&topo, NodeId(0), NodeId(8), 3);
        assert!(paths.len() <= 3);
        assert!(!paths.is_empty());
    }

    #[test]
    fn dimension_ordered_routes_x_then_y() {
        let spec = TopologySpec::grid(4, 4, 1);
        let topo = build(&spec);
        // (0,0) -> (2,3): 3 column hops then 2 row hops.
        let r = dimension_ordered(&spec, &topo, NodeId(0), NodeId(11)).unwrap();
        assert_eq!(r.hops(), 5);
        // The first moves change only the column.
        let coords: Vec<(usize, usize)> = r
            .nodes
            .iter()
            .map(|n| spec.coordinates(*n).unwrap())
            .collect();
        assert_eq!(coords[0].0, coords[1].0, "first hop stays in the same row");
        assert_eq!(
            coords[3].1, coords[4].1,
            "last hops stay in the same column"
        );
    }

    #[test]
    fn dimension_ordered_on_torus_uses_wrap() {
        let spec = TopologySpec::torus(4, 4, 1);
        let topo = build(&spec);
        // (0,0) -> (0,3) should use the wrap-around: 1 hop.
        let r = dimension_ordered(&spec, &topo, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(r.hops(), 1);
        // (0,0) -> (3,3) is 1 + 1 with both wraps.
        let r2 = dimension_ordered(&spec, &topo, NodeId(0), NodeId(15)).unwrap();
        assert_eq!(r2.hops(), 2);
    }

    #[test]
    fn dimension_ordered_rejects_non_mesh_specs() {
        let spec = TopologySpec::ring(5, 1);
        let topo = build(&spec);
        assert!(dimension_ordered(&spec, &topo, NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn valiant_detours_through_a_third_group() {
        let spec = TopologySpec::dragonfly(4, 2, 2, 1);
        let topo = build(&spec);
        let racks = spec.rack_of();
        // Hosts in groups 0 and 1 (group block = 6 nodes, routers first).
        let src = NodeId(2);
        let dst = NodeId(8);
        let minimal = shortest_path(&topo, src, dst).unwrap();
        // Some flow must pick a detour longer than minimal that transits a
        // rack that is neither endpoint's.
        let mut detoured = false;
        for flow in 0..16u64 {
            let r = valiant_route(&topo, &racks, src, dst, flow).unwrap();
            assert_eq!(r.source(), src);
            assert_eq!(r.destination(), dst);
            // Deterministic per flow id.
            assert_eq!(r, valiant_route(&topo, &racks, src, dst, flow).unwrap());
            let transits: std::collections::HashSet<u32> = r
                .intermediate_nodes()
                .iter()
                .map(|n| racks[n.index()])
                .collect();
            if r.hops() > minimal.hops() {
                assert!(
                    transits
                        .iter()
                        .any(|&g| g != racks[src.index()] && g != racks[dst.index()]),
                    "longer path must transit a third group"
                );
                detoured = true;
            }
        }
        assert!(detoured, "flow hashing must reach a detour");
    }

    #[test]
    fn valiant_falls_back_without_a_detour_rack() {
        // 2 groups: no third rack to detour through.
        let spec = TopologySpec::dragonfly(2, 2, 1, 1);
        let topo = build(&spec);
        let racks = spec.rack_of();
        let minimal = shortest_path(&topo, NodeId(2), NodeId(6)).unwrap();
        for flow in 0..4u64 {
            let r = valiant_route(&topo, &racks, NodeId(2), NodeId(6), flow).unwrap();
            assert_eq!(r, minimal);
        }
        // Same-rack pairs route minimally too.
        let intra = valiant_route(&topo, &racks, NodeId(2), NodeId(3), 9).unwrap();
        assert_eq!(
            intra.hops(),
            shortest_path(&topo, NodeId(2), NodeId(3)).unwrap().hops()
        );
    }

    #[test]
    fn adaptive_prefers_minimal_until_prices_bite() {
        let spec = TopologySpec::dragonfly(4, 2, 2, 1);
        let topo = build(&spec);
        let racks = spec.rack_of();
        let src = NodeId(2);
        let dst = NodeId(8);
        let minimal = shortest_path(&topo, src, dst).unwrap();
        // Unpriced fabric: every flow routes minimally.
        for flow in 0..8u64 {
            let r = adaptive_route(&topo, &racks, src, dst, flow, &HashMap::new(), 1.0).unwrap();
            assert_eq!(r, minimal);
        }
        // Price the minimal path's links sky-high: flows whose Valiant
        // detour avoids them switch over.
        let mut costs = HashMap::new();
        for l in &minimal.links {
            costs.insert(*l, 1000.0);
        }
        let mut switched = false;
        for flow in 0..16u64 {
            let r = adaptive_route(&topo, &racks, src, dst, flow, &costs, 1.0).unwrap();
            if r != minimal {
                switched = true;
                assert!(route_cost(&r, &costs, 1.0) < route_cost(&minimal, &costs, 1.0));
            }
        }
        assert!(switched, "congestion pricing must divert some flows");
    }

    #[test]
    fn policy_trait_helpers_classify_algorithms() {
        use RoutingAlgorithm::*;
        assert!(Ecmp.per_flow() && Valiant.per_flow() && Adaptive.per_flow());
        assert!(!ShortestHop.per_flow() && !MinCost.per_flow());
        assert!(MinCost.cost_aware() && Adaptive.cost_aware());
        assert!(!ShortestHop.cost_aware() && !Valiant.cost_aware() && !Ecmp.cost_aware());
    }

    #[test]
    fn routes_match_shortest_lengths_on_grid() {
        let spec = TopologySpec::grid(4, 4, 1);
        let topo = build(&spec);
        for dst in 1..16u32 {
            let bfs = shortest_path(&topo, NodeId(0), NodeId(dst)).unwrap();
            let dor = dimension_ordered(&spec, &topo, NodeId(0), NodeId(dst)).unwrap();
            assert_eq!(
                bfs.hops(),
                dor.hops(),
                "DOR on a mesh is minimal (dst {dst})"
            );
        }
    }
}
