//! Declarative paper-figure campaigns: every figure of the paper (e1–e9,
//! plus the repo's own e10 sharded-scale and e11 fabric-vs-routing figures)
//! expressed as a scenario [`Matrix`] driven through the content-addressed
//! [`ResultStore`], plus the golden-export machinery that pins each figure's
//! byte-deterministic CSV against a checked-in reference.
//!
//! Three figure classes exist:
//!
//! * **Simulation campaigns** (e1–e4, e8, e9) — a `Matrix` over the new
//!   physical-layer axes (switch model, port buffers, PLP timing, bypass
//!   chains) resolved through the command-layer [`Executor`] (which journals
//!   a `regenerate-figure` marker plus one record per fresh job), so a warm
//!   store executes **zero** jobs and re-exports identical bytes — and an
//!   interrupted campaign recovers from its journal via [`FigureResolver`].
//! * **Analytic figures** (e5 break-even, e6 adaptive FEC) — pure functions
//!   of the models; they execute zero store jobs by construction.
//! * **Cross-validation** (e7) — the cycle-level NetFPGA model against the
//!   DES switch model; deterministic and store-free.
//!
//! Every figure renders to one CSV whose bytes are compared against
//! `golden/<scale>/<figure>.csv` by [`compare_export`] (readable per-column
//! diffs) in `tests/paper_figures.rs` and the CI `paper-figures` job.
//! Intentional result changes regenerate goldens via
//! `cargo run -p rackfabric-bench --bin sweep -- --figures --update-golden`.

use rackfabric::prelude::*;
use rackfabric_cmd::{CampaignResolver, Command, Executor};
use rackfabric_netfpga::validate_against_des;
use rackfabric_phy::adaptive_fec::AdaptiveFecController;
use rackfabric_phy::fec::invert_ber_to_snr_db;
use rackfabric_phy::FecMode;
use rackfabric_scenario::prelude::*;
use rackfabric_sim::json;
use rackfabric_sim::prelude::*;
use rackfabric_sweep::prelude::*;
use rackfabric_switch::model::{SwitchKind, SwitchModel};
use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

/// The two pinned sizes every figure campaign comes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI/test size: every campaign finishes in seconds. Goldens live in
    /// `golden/tiny/` and gate `cargo test -q`.
    Tiny,
    /// The EXPERIMENTS.md reproduction size. Goldens live in
    /// `golden/paper/` and gate the CI `paper-figures` job.
    Paper,
}

impl Scale {
    /// The golden subdirectory this scale pins against.
    pub fn golden_dir(&self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Paper => "paper",
        }
    }
}

/// One executed figure: its identity, byte-deterministic CSV export, and
/// store accounting.
#[derive(Debug, Clone)]
pub struct FigureRun {
    /// Figure identifier ("e1".."e9").
    pub id: &'static str,
    /// File-name slug ("latency_vs_hops").
    pub slug: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// The figure's CSV export (what the golden pins).
    pub export: String,
    /// Jobs freshly executed by this invocation (0 on a warm store, and
    /// always 0 for analytic figures).
    pub executed: usize,
    /// Jobs answered from the store.
    pub cached: usize,
    /// True when a `max_new_jobs` cap cut this campaign short — the export
    /// covers only the jobs that ran, and goldens must not be checked.
    pub interrupted: bool,
    /// The underlying sweep outcome (simulation campaigns only) — feeds the
    /// per-figure SVG report gallery.
    pub outcome: Option<SweepOutcome>,
}

impl FigureRun {
    /// The export/golden file name, e.g. `e1_latency_vs_hops.csv`.
    pub fn export_file(&self) -> String {
        format!("{}_{}.csv", self.id, self.slug)
    }
}

fn num(value: f64) -> String {
    json::number(value)
}

// ---------------------------------------------------------------------------
// Campaign matrices (shared with the `ExperimentResult` wrappers in lib.rs).
// ---------------------------------------------------------------------------

/// e1 — per-hop latency probe: a single 1500-byte flow pushed down a line of
/// 1..=`max_hops` cut-through switches, swept against a store-and-forward
/// switch model for contrast.
pub fn e1_matrix(max_hops: usize) -> Matrix {
    let base = ScenarioSpec::new(
        "e1-latency-vs-hops",
        TopologySpec::line(3, 4),
        WorkloadSpec::single_flow(Bytes::new(1500)),
    )
    .controller(ControllerSpec::Baseline)
    .horizon(SimTime::from_millis(10));
    Matrix::new(base)
        .axis(
            "hops",
            (1..=max_hops)
                .map(|switches| AxisValue::Topology(TopologySpec::line(switches + 2, 4)))
                .collect(),
        )
        .axis(
            "switch",
            vec![
                AxisValue::SwitchModel(SwitchModel::cut_through()),
                AxisValue::SwitchModel(SwitchModel::store_and_forward()),
            ],
        )
        .master_seed(1)
}

/// e2 — CRC-driven grid(2-lane) → torus(1-lane) reconfiguration under a
/// 16-node shuffle, swept across PLP timing tables (fast electrical vs slow
/// optics-class reconfiguration).
pub fn e2_matrix(partition_kib: u64, horizon_ms: u64) -> Matrix {
    let base = ScenarioSpec::new(
        "e2-reconfiguration",
        TopologySpec::grid(4, 4, 2),
        WorkloadSpec::shuffle(Bytes::from_kib(partition_kib)),
    )
    .upgrade(TopologySpec::torus(4, 4, 1))
    .horizon(SimTime::from_millis(horizon_ms));
    Matrix::new(base)
        .axis(
            "controller",
            vec![
                AxisValue::Controller(ControllerSpec::Baseline),
                AxisValue::Controller(ControllerSpec::adaptive_default()),
            ],
        )
        .axis(
            "plp",
            vec![
                AxisValue::PlpTiming(PlpTiming::default()),
                AxisValue::PlpTiming(PlpTiming::default().scaled(25.0)),
            ],
        )
        .master_seed(42)
}

/// e3 — shuffle completion vs rack size; each rack value moves the starting
/// grid and its torus escalation target together (one [`AxisValue::Multi`]).
pub fn e3_matrix(sides: &[usize], partition_kib: u64, horizon_ms: u64) -> Matrix {
    let base = ScenarioSpec::new(
        "e3-mapreduce-scaling",
        TopologySpec::grid(3, 3, 2),
        WorkloadSpec::shuffle(Bytes::from_kib(partition_kib)),
    )
    .horizon(SimTime::from_millis(horizon_ms));
    Matrix::new(base)
        .axis(
            "racks",
            sides
                .iter()
                .map(|&k| {
                    AxisValue::Multi(vec![
                        AxisValue::Topology(TopologySpec::grid(k, k, 2)),
                        AxisValue::Upgrade(Some(TopologySpec::torus(k, k, 1))),
                    ])
                })
                .collect(),
        )
        .axis(
            "controller",
            vec![
                AxisValue::Controller(ControllerSpec::Baseline),
                AxisValue::Controller(ControllerSpec::adaptive_default()),
            ],
        )
        .master_seed(7)
}

/// e4 — interconnect power vs offered load, power-cap policy against a
/// latency-only policy that never sheds lanes. Open loop: the run spans the
/// whole horizon.
pub fn e4_matrix(loads: &[f64], horizon_us: u64) -> Matrix {
    let adaptive = |policy: CrcPolicy| {
        AxisValue::Controller(ControllerSpec::Adaptive {
            policy,
            epoch: SimDuration::from_micros(50),
            routing: RoutingAlgorithm::MinCost,
        })
    };
    let base = ScenarioSpec::new(
        "e4-power-vs-load",
        TopologySpec::grid(4, 4, 4),
        WorkloadSpec::uniform(12.5, Bytes::from_kib(16)),
    )
    .stop_when_done(false)
    .horizon(SimTime::from_micros(horizon_us));
    Matrix::new(base)
        .axis(
            "policy",
            vec![
                adaptive(CrcPolicy::PowerCap {
                    budget: rackfabric_sim::units::Power::from_kilowatts(2),
                }),
                adaptive(CrcPolicy::LatencyMinimize),
            ],
        )
        .axis("load", loads.iter().map(|&l| AxisValue::Load(l)).collect())
        .master_seed(11)
}

/// e8 — the high-speed bypass primitive: latency of an N-hop line as the
/// intermediate switches are replaced by PHY-level bypasses, swept with the
/// [`AxisValue::BypassChain`] axis.
pub fn e8_matrix(hops: usize) -> Matrix {
    let base = ScenarioSpec::new(
        "e8-bypass",
        TopologySpec::line(hops + 1, 4),
        WorkloadSpec::single_flow(Bytes::new(1500)),
    )
    .controller(ControllerSpec::Baseline)
    .horizon(SimTime::from_millis(10));
    Matrix::new(base)
        .axis("bypassed", (0..hops).map(AxisValue::BypassChain).collect())
        .master_seed(3)
}

/// e10 — the sharded engine's scale cells: the big torus and the multi-rack
/// fat-tree pushed through the sharded windowed engine, swept across shard
/// counts and inter-rack cable spacing. Shard count never moves a result
/// byte (the golden pins identical rows per count); spacing is the physical
/// knob behind the engine's conservative lookahead — longer inter-rack
/// cables buy longer windows at the cost of the extra flight time every
/// cross-rack packet pays, and the figure shows that cost.
pub fn e10_matrix(
    topologies: Vec<TopologySpec>,
    partition_kib: u64,
    horizon_ms: u64,
    shards: &[usize],
    spacings: &[Length],
) -> Matrix {
    let base = ScenarioSpec::new(
        "e10-sharded-scale",
        TopologySpec::grid(3, 3, 2),
        WorkloadSpec::shuffle(Bytes::from_kib(partition_kib)),
    )
    .controller(ControllerSpec::Baseline)
    .horizon(SimTime::from_millis(horizon_ms));
    // Axis order matters: `spacing` mutates the topology chosen by the
    // `topology` axis, so it must come after it.
    Matrix::new(base)
        .axis(
            "topology",
            topologies.into_iter().map(AxisValue::Topology).collect(),
        )
        .axis(
            "shards",
            shards.iter().map(|&n| AxisValue::Shards(n)).collect(),
        )
        .axis(
            "spacing",
            spacings
                .iter()
                .map(|&l| AxisValue::RackSpacing(l))
                .collect(),
        )
        .master_seed(17)
}

/// e11 — adaptive **fabric** vs adaptive **routing**: the paper's
/// reconfigurable rack (grid escalating to a torus under the CRC) head to
/// head against a static dragonfly running the routing-policy ladder
/// (minimal / Valiant / UGAL-style adaptive) under the same shuffle. The
/// full fabric × routing cross is swept so each fabric answers congestion
/// with every policy — the dragonfly diverts over its global links, the
/// adaptive fabric rewires them.
pub fn e11_matrix(
    grid_side: usize,
    dragonfly: TopologySpec,
    partition_kib: u64,
    horizon_ms: u64,
) -> Matrix {
    let base = ScenarioSpec::new(
        "e11-fabric-vs-routing",
        TopologySpec::grid(3, 3, 2),
        WorkloadSpec::shuffle(Bytes::from_kib(partition_kib)),
    )
    .horizon(SimTime::from_millis(horizon_ms));
    Matrix::new(base)
        .axis(
            "fabric",
            vec![
                AxisValue::Multi(vec![
                    AxisValue::Topology(TopologySpec::grid(grid_side, grid_side, 2)),
                    AxisValue::Upgrade(Some(TopologySpec::torus(grid_side, grid_side, 1))),
                    AxisValue::Controller(ControllerSpec::adaptive_default()),
                ]),
                AxisValue::Multi(vec![
                    AxisValue::Topology(dragonfly),
                    AxisValue::Upgrade(None),
                    AxisValue::Controller(ControllerSpec::Baseline),
                ]),
            ],
        )
        .axis(
            "routing",
            vec![
                AxisValue::Routing(RoutingAlgorithm::ShortestHop),
                AxisValue::Routing(RoutingAlgorithm::Valiant),
                AxisValue::Routing(RoutingAlgorithm::Adaptive),
            ],
        )
        .master_seed(23)
}

/// e9 — the scenario-matrix figure: racks × load × controller × **port
/// buffer**, reduced to per-cell tail-latency aggregates.
pub fn e9_matrix(sides: &[usize], loads: &[f64], buffers: &[Bytes], seeds: usize) -> Matrix {
    let base = ScenarioSpec::new(
        "e9-scenario-matrix",
        TopologySpec::grid(3, 3, 2),
        WorkloadSpec::shuffle(Bytes::from_kib(8)),
    )
    .horizon(SimTime::from_millis(500));
    Matrix::new(base)
        .axis(
            "racks",
            sides
                .iter()
                .map(|&k| AxisValue::Topology(TopologySpec::grid(k, k, 2)))
                .collect(),
        )
        .axis("load", loads.iter().map(|&l| AxisValue::Load(l)).collect())
        .axis(
            "controller",
            vec![
                AxisValue::Controller(ControllerSpec::Baseline),
                AxisValue::Controller(ControllerSpec::adaptive_default()),
            ],
        )
        .axis(
            "port_buffer",
            buffers.iter().map(|&b| AxisValue::PortBuffer(b)).collect(),
        )
        .replicates(seeds)
        .master_seed(13)
}

// ---------------------------------------------------------------------------
// Figure exports (byte-deterministic CSV).
// ---------------------------------------------------------------------------

/// Looks up the resolved spec of a cell's first record (campaign reducers
/// read spec-derived facts — node counts, bypass depth — straight from the
/// job instead of parsing labels).
pub(crate) fn cell_spec(outcome: &SweepOutcome, cell: usize) -> Option<&ScenarioSpec> {
    outcome
        .records
        .iter()
        .find(|r| r.job.cell == cell)
        .map(|r| &r.job.spec)
}

/// The value of `axis` in a cell's labels (empty when absent). Shared with
/// the `ExperimentResult` reducers in the crate root.
pub(crate) fn cell_label<'a>(cell: &'a CellSummary, axis: &str) -> &'a str {
    cell.labels
        .iter()
        .find(|(k, _)| k == axis)
        .map(|(_, v)| v.as_str())
        .unwrap_or("")
}

/// e1 export: per-hop latency split into media propagation vs switching
/// logic, one row per (hop count, switch model) cell.
pub fn e1_export(outcome: &SweepOutcome) -> String {
    let mut out = String::from("hops,switch,media_ns,switching_ns,total_ns\n");
    for record in &outcome.records {
        let JobOutcome::Completed(result) = &record.outcome else {
            continue;
        };
        let spec = &record.job.spec;
        let hops = spec.topology.nodes.saturating_sub(2);
        let total_ns = result.summary.packet_latency.mean / 1e3;
        let media_ns = total_ns * result.summary.propagation_fraction;
        let switching_ns = total_ns * result.summary.switching_fraction;
        let switch = match spec.switch.kind {
            SwitchKind::CutThrough => "cut-through",
            SwitchKind::StoreAndForward => "store-fwd",
        };
        out.push_str(&format!(
            "{hops},{switch},{},{},{}\n",
            num(media_ns),
            num(switching_ns),
            num(total_ns)
        ));
    }
    out
}

/// e2 export: completion and reconfiguration counters per (controller, PLP
/// timing) cell.
pub fn e2_export(outcome: &SweepOutcome) -> String {
    let mut out =
        String::from("controller,plp,job_completion_us,topology_reconfigs,plp_commands,p99_us\n");
    for cell in &outcome.cells {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            cell_label(cell, "controller"),
            cell_label(cell, "plp"),
            cell.mean_job_completion_us.map(num).unwrap_or_default(),
            cell.topology_reconfigurations,
            cell.plp_commands,
            num(cell.packet_latency.p99 / 1e6)
        ));
    }
    out
}

/// e3 export: shuffle completion vs rack size, baseline vs adaptive.
pub fn e3_export(outcome: &SweepOutcome) -> String {
    let mut out = String::from("nodes,controller,job_completion_us,topology_reconfigs\n");
    for cell in &outcome.cells {
        let nodes = cell_spec(outcome, cell.cell).map_or(0, |s| s.topology.nodes);
        out.push_str(&format!(
            "{nodes},{},{},{}\n",
            cell_label(cell, "controller"),
            cell.mean_job_completion_us.map(num).unwrap_or_default(),
            cell.topology_reconfigurations
        ));
    }
    out
}

/// e4 export: mean/peak interconnect power per (policy, load) cell.
pub fn e4_export(outcome: &SweepOutcome) -> String {
    let mut out = String::from("load,policy,mean_power_w,max_power_w\n");
    for cell in &outcome.cells {
        out.push_str(&format!(
            "{},{},{},{}\n",
            cell_label(cell, "load"),
            cell_label(cell, "policy"),
            num(cell.mean_power_w),
            num(cell.max_power_w)
        ));
    }
    out
}

/// e5 export (analytic): minimum worthwhile flow size vs reconfiguration
/// time for the paper's 25 G → 100 G uplift.
pub fn e5_export() -> String {
    let times: Vec<SimDuration> = [1u64, 5, 10, 20, 50, 100, 500, 1_000, 5_000, 10_000]
        .iter()
        .map(|&us| SimDuration::from_micros(us))
        .collect();
    let mut out = String::from("reconfig_us,min_flow_kib\n");
    for (t, size) in rackfabric::breakeven::sweep_min_flow_size(
        BitRate::from_gbps(25),
        BitRate::from_gbps(100),
        &times,
    ) {
        out.push_str(&format!(
            "{},{}\n",
            num(t.as_micros_f64()),
            num(size.as_u64() as f64 / 1024.0)
        ));
    }
    out
}

/// e6 export (analytic): the adaptive-FEC ladder — codec chosen, post-FEC
/// BER and added latency as the channel degrades.
pub fn e6_export() -> String {
    let controller = AdaptiveFecController::default();
    let mut out = String::from("pre_ber_log10,mode_index,mode,post_fec_ber_log10,added_ns\n");
    for &ber in &[1e-15, 1e-12, 1e-10, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4] {
        let mode = controller.weakest_sufficient(ber, controller.ber_target);
        let idx = FecMode::ALL.iter().position(|m| *m == mode).unwrap();
        let snr = invert_ber_to_snr_db(ber);
        out.push_str(&format!(
            "{},{idx},{mode:?},{},{}\n",
            num(ber.log10()),
            num(mode.post_fec_ber(snr).log10()),
            num(mode.added_latency().as_nanos_f64())
        ));
    }
    out
}

/// e7 export (cross-validation): DES switch model vs the cycle-level NetFPGA
/// SUME model, per frame size.
pub fn e7_export() -> String {
    let report = validate_against_des(&[64, 128, 256, 512, 1024, 1500]);
    let mut out = String::from("frame_bytes,des_latency_ns,cycle_latency_ns,relative_error\n");
    for p in &report.points {
        let rel = if p.cycle_latency_ns.abs() > f64::EPSILON {
            (p.des_latency_ns - p.cycle_latency_ns).abs() / p.cycle_latency_ns
        } else {
            0.0
        };
        out.push_str(&format!(
            "{},{},{},{}\n",
            p.frame_bytes,
            num(p.des_latency_ns),
            num(p.cycle_latency_ns),
            num(rel)
        ));
    }
    out
}

/// e8 export: end-to-end latency vs number of bypassed switches.
pub fn e8_export(outcome: &SweepOutcome) -> String {
    let mut out = String::from("bypassed,latency_ns\n");
    for cell in &outcome.cells {
        let bypassed = cell_spec(outcome, cell.cell).map_or(0, |s| s.phy.bypassed_nodes);
        out.push_str(&format!(
            "{bypassed},{}\n",
            num(cell.packet_latency.mean / 1e3)
        ));
    }
    out
}

/// e9 export: the full per-cell aggregate CSV (the machine-readable
/// companion of the scenario-matrix figure).
pub fn e9_export(outcome: &SweepOutcome) -> String {
    rackfabric_scenario::export::cells_to_csv(&outcome.cells)
}

/// e10 export: one row per (topology, shard count, rack spacing) cell.
/// Rows that differ only in `shards` must be identical in every result
/// column — the golden pins the sharded engine's shard-count invariance on
/// its scale cells.
pub fn e10_export(outcome: &SweepOutcome) -> String {
    let mut out =
        String::from("topology,shards,spacing,completed_runs,job_completion_us,p99_us,events\n");
    for cell in &outcome.cells {
        out.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            cell_label(cell, "topology"),
            cell_label(cell, "shards"),
            cell_label(cell, "spacing"),
            cell.completed_runs,
            cell.mean_job_completion_us.map(num).unwrap_or_default(),
            num(cell.packet_latency.p99 / 1e6),
            cell.events_processed
        ));
    }
    out
}

/// e11 export: one row per (fabric, routing policy) cell. The
/// `topology_reconfigs` column separates the two answers to congestion: the
/// adaptive fabric rewires (non-zero reconfigs, routing-agnostic escalation)
/// while the dragonfly stays put and lets Valiant/adaptive routing spread
/// load over its global links.
pub fn e11_export(outcome: &SweepOutcome) -> String {
    let mut out = String::from(
        "fabric,routing,nodes,completed_runs,job_completion_us,p99_us,topology_reconfigs,events\n",
    );
    for cell in &outcome.cells {
        let nodes = cell_spec(outcome, cell.cell).map_or(0, |s| s.topology.nodes);
        out.push_str(&format!(
            "{},{},{nodes},{},{},{},{},{}\n",
            cell_label(cell, "fabric"),
            cell_label(cell, "routing"),
            cell.completed_runs,
            cell.mean_job_completion_us.map(num).unwrap_or_default(),
            num(cell.packet_latency.p99 / 1e6),
            cell.topology_reconfigurations,
            cell.events_processed
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// The campaign driver.
// ---------------------------------------------------------------------------

/// How a figure produces its export.
pub enum FigureKind {
    /// A scenario matrix resolved through the store, reduced by an export
    /// function. Boxed: a `Matrix` carries a full base spec, and eleven of
    /// them live in one table.
    Sim(Box<Matrix>, fn(&SweepOutcome) -> String),
    /// A pure function of the models — zero store jobs by construction.
    Analytic(fn() -> String),
}

/// Shorthand used by [`figure_defs`] for the simulation-backed variant.
fn sim(matrix: Matrix, export: fn(&SweepOutcome) -> String) -> FigureKind {
    FigureKind::Sim(Box::new(matrix), export)
}

/// One figure campaign's declaration: identity plus how to produce it.
/// [`figure_defs`] lists all eleven; the same table serves fresh runs (the
/// CLI, the golden tests) and journal recovery (the [`FigureResolver`]).
pub struct FigureDef {
    /// Figure identifier ("e1".."e11").
    pub id: &'static str,
    /// File-name slug ("latency_vs_hops").
    pub slug: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// Simulation campaign or analytic function.
    pub kind: FigureKind,
}

/// Per-invocation knobs for a figure run. The default (`fixed replicates,
/// no cap`) is the byte-deterministic golden configuration.
#[derive(Debug, Clone, Default)]
pub struct FigureOptions {
    /// Convergence-driven replication instead of the matrices' fixed
    /// replicate counts. Budgeted exports are *not* golden-comparable.
    pub budget: Option<BudgetPolicy>,
    /// Campaign-wide cap on fresh executions, shared across all eleven
    /// figures in order — the interruption knob the recovery CI arm pulls.
    pub max_new_jobs: Option<usize>,
    /// Cooperative cancellation, threaded into every figure's sweep: a
    /// tripped token interrupts the sequence at a job boundary exactly like
    /// an exhausted `max_new_jobs` cap, and recovery completes it the same
    /// way. This is the daemon's cancel path.
    pub cancel: Option<CancelToken>,
}

/// Every figure of the paper (plus e10/e11) at `scale`, in order.
pub fn figure_defs(scale: Scale) -> Vec<FigureDef> {
    let tiny = scale == Scale::Tiny;
    let def = |id, slug, title, kind| FigureDef {
        id,
        slug,
        title,
        kind,
    };
    vec![
        def(
            "e1",
            "latency_vs_hops",
            "media propagation vs switching latency per hop (cut-through and store-and-forward)",
            sim(e1_matrix(if tiny { 4 } else { 21 }), e1_export),
        ),
        def(
            "e2",
            "reconfiguration",
            "CRC-driven grid->torus reconfiguration across PLP timing tables",
            sim(
                if tiny {
                    e2_matrix(4, 50)
                } else {
                    e2_matrix(64, 500)
                },
                e2_export,
            ),
        ),
        def(
            "e3",
            "mapreduce_scaling",
            "shuffle completion vs rack size, static grid vs adaptive fabric",
            sim(
                if tiny {
                    e3_matrix(&[2, 3], 2, 100)
                } else {
                    e3_matrix(&[3, 4, 5, 6], 32, 2_000)
                },
                e3_export,
            ),
        ),
        def(
            "e4",
            "power_vs_load",
            "interconnect power vs offered load, power-cap vs latency-only policy",
            sim(
                if tiny {
                    e4_matrix(&[0.25, 1.0], 500)
                } else {
                    e4_matrix(&[0.1, 0.25, 0.5, 0.75, 1.0], 2_000)
                },
                e4_export,
            ),
        ),
        def(
            "e5",
            "breakeven",
            "minimum flow size for which reconfiguration pays off (25G -> 100G)",
            FigureKind::Analytic(e5_export),
        ),
        def(
            "e6",
            "adaptive_fec",
            "adaptive FEC: codec choice, post-FEC BER and latency vs channel BER",
            FigureKind::Analytic(e6_export),
        ),
        def(
            "e7",
            "validation",
            "DES switch model vs cycle-level NetFPGA SUME model",
            FigureKind::Analytic(e7_export),
        ),
        def(
            "e8",
            "bypass",
            "latency of an N-hop path vs number of PHY-bypassed switches",
            sim(e8_matrix(if tiny { 4 } else { 8 }), e8_export),
        ),
        def(
            "e9",
            "scenario_matrix",
            "racks x load x controller x port-buffer sweep with per-cell tail latency",
            sim(
                if tiny {
                    e9_matrix(
                        &[2, 3],
                        &[1.0],
                        &[Bytes::from_kib(64), Bytes::from_kib(256)],
                        1,
                    )
                } else {
                    e9_matrix(
                        &[3, 4],
                        &[0.5, 1.0],
                        &[Bytes::from_kib(64), Bytes::from_kib(256)],
                        2,
                    )
                },
                e9_export,
            ),
        ),
        def(
            "e10",
            "sharded_scale",
            "sharded-engine scale cells: shard-count invariance and the rack-spacing cost",
            sim(
                if tiny {
                    e10_matrix(
                        vec![
                            TopologySpec::torus(4, 4, 2),
                            TopologySpec::fat_tree(16, 8, 2, 2),
                        ],
                        2,
                        10,
                        &[1, 2],
                        &[Length::from_m(2), Length::from_m(20)],
                    )
                } else {
                    e10_matrix(
                        vec![
                            TopologySpec::torus(16, 16, 2),
                            TopologySpec::fat_tree(128, 16, 4, 2),
                        ],
                        4,
                        40,
                        &[1, 4],
                        &[Length::from_m(2), Length::from_m(20)],
                    )
                },
                e10_export,
            ),
        ),
        def(
            "e11",
            "fabric_vs_routing",
            "adaptive-fabric reconfiguration vs dragonfly adaptive routing, same shuffle",
            sim(
                if tiny {
                    e11_matrix(3, TopologySpec::dragonfly(3, 2, 2, 1), 2, 50)
                } else {
                    e11_matrix(6, TopologySpec::dragonfly(6, 4, 4, 1), 8, 500)
                },
                e11_export,
            ),
        ),
    ]
}

/// Runs one figure through the command layer. `remaining` is the shared
/// fresh-execution allowance (`None` = unbounded); it is decremented by
/// what this campaign executed, so a cap interrupts the figure *sequence*
/// at a job boundary, not just one campaign.
fn run_figure(
    def: FigureDef,
    scale: Scale,
    exec: &Executor,
    opts: &FigureOptions,
    remaining: &mut Option<usize>,
) -> io::Result<FigureRun> {
    let (matrix, export) = match def.kind {
        FigureKind::Analytic(render) => {
            return Ok(FigureRun {
                id: def.id,
                slug: def.slug,
                title: def.title,
                export: render(),
                executed: 0,
                cached: 0,
                interrupted: false,
                outcome: None,
            })
        }
        FigureKind::Sim(matrix, export) => (matrix, export),
    };
    let mut sweep = Sweep::new(*matrix);
    if let Some(policy) = opts.budget {
        sweep = sweep.budget(policy);
    }
    if let Some(cap) = *remaining {
        sweep = sweep.max_new_jobs(cap);
    }
    if let Some(token) = &opts.cancel {
        sweep = sweep.cancel(token.clone());
    }
    let outcome = exec.regenerate_figure(def.id, scale.golden_dir(), &sweep)?;
    if let Some(cap) = remaining.as_mut() {
        *cap = cap.saturating_sub(outcome.executed);
    }
    Ok(FigureRun {
        id: def.id,
        slug: def.slug,
        title: def.title,
        export: export(&outcome),
        executed: outcome.executed,
        cached: outcome.cached,
        interrupted: outcome.interrupted,
        outcome: Some(outcome),
    })
}

/// Runs every figure campaign at `scale` through `exec`'s store, returning
/// the eleven figure exports in order. A warm store executes zero jobs and
/// reproduces the exact same bytes.
pub fn run_figures(scale: Scale, exec: &Executor) -> io::Result<Vec<FigureRun>> {
    run_figures_with(scale, exec, &FigureOptions::default())
}

/// [`run_figures`] with per-invocation knobs: budgeted replication and/or a
/// campaign-wide fresh-execution cap. Even when the cap runs out early,
/// every figure still journals its `regenerate-figure` marker (later
/// campaigns run with a zero allowance) — which is exactly what lets
/// recovery complete jobs the interruption never reached.
pub fn run_figures_with(
    scale: Scale,
    exec: &Executor,
    opts: &FigureOptions,
) -> io::Result<Vec<FigureRun>> {
    let mut remaining = opts.max_new_jobs;
    figure_defs(scale)
        .into_iter()
        .map(|def| run_figure(def, scale, exec, opts, &mut remaining))
        .collect()
}

/// Replays journaled `regenerate-figure` markers against the figure table:
/// the record's id + scale select the campaign, its budget (if any) is
/// reapplied, and the whole matrix resolves store-first — so recovery of a
/// fully stored figure executes zero jobs and an interrupted one executes
/// exactly its missing jobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct FigureResolver;

impl CampaignResolver for FigureResolver {
    fn replay(&self, command: &Command, exec: &Executor) -> io::Result<bool> {
        let Command::RegenerateFigure { id, scale, budget } = command else {
            return Ok(false);
        };
        let scale = match scale.as_str() {
            "tiny" => Scale::Tiny,
            "paper" => Scale::Paper,
            _ => return Ok(false),
        };
        let Some(def) = figure_defs(scale).into_iter().find(|d| d.id == id) else {
            return Ok(false);
        };
        let FigureKind::Sim(matrix, _) = def.kind else {
            return Ok(false);
        };
        let mut sweep = Sweep::new(*matrix);
        if let Some(spec) = budget {
            sweep = sweep.budget(spec.to_policy());
        }
        exec.regenerate_figure(id, scale.golden_dir(), &sweep)?;
        Ok(true)
    }
}

/// The job keys a set of figure runs resolved — the live set for
/// [`ResultStore::gc`] compaction after campaign edits.
pub fn live_keys(figures: &[FigureRun]) -> BTreeSet<JobKey> {
    figures
        .iter()
        .filter_map(|f| f.outcome.as_ref())
        .flat_map(|o| o.records.iter().map(|r| job_key(&r.job.spec)))
        .collect()
}

// ---------------------------------------------------------------------------
// Golden comparison.
// ---------------------------------------------------------------------------

/// How many differing cells a diff message lists before truncating.
const DIFF_CAP: usize = 10;

/// Byte-compares a figure export against its golden, and on mismatch returns
/// a readable per-column diff naming the line, the CSV column, and both
/// values.
pub fn compare_export(name: &str, golden: &str, actual: &str) -> Result<(), String> {
    if golden == actual {
        return Ok(());
    }
    let golden_lines: Vec<&str> = golden.lines().collect();
    let actual_lines: Vec<&str> = actual.lines().collect();
    let header: Vec<&str> = golden_lines
        .first()
        .map(|h| h.split(',').collect())
        .unwrap_or_default();
    let mut diffs: Vec<String> = Vec::new();
    if golden_lines.len() != actual_lines.len() {
        diffs.push(format!(
            "{name}: golden has {} line(s), actual has {}",
            golden_lines.len(),
            actual_lines.len()
        ));
    }
    for (i, (g, a)) in golden_lines.iter().zip(&actual_lines).enumerate() {
        if g == a {
            continue;
        }
        let golden_fields: Vec<&str> = g.split(',').collect();
        let actual_fields: Vec<&str> = a.split(',').collect();
        if golden_fields.len() != actual_fields.len() {
            diffs.push(format!(
                "{name} line {}: field count differs (golden {}, actual {})",
                i + 1,
                golden_fields.len(),
                actual_fields.len()
            ));
            continue;
        }
        for (c, (gv, av)) in golden_fields.iter().zip(&actual_fields).enumerate() {
            if gv != av {
                let column = header.get(c).copied().unwrap_or("?");
                diffs.push(format!(
                    "{name} line {}, column `{column}`: golden={gv} actual={av}",
                    i + 1
                ));
            }
        }
    }
    if diffs.is_empty() {
        // Same lines, different bytes (e.g. a trailing newline).
        diffs.push(format!("{name}: exports differ in whitespace/line endings"));
    }
    let total = diffs.len();
    diffs.truncate(DIFF_CAP);
    if total > DIFF_CAP {
        diffs.push(format!(
            "... and {} more differing cell(s)",
            total - DIFF_CAP
        ));
    }
    Err(diffs.join("\n"))
}

/// The golden file path of a figure at a scale, under `root` (the repository
/// checkout's `golden/` directory).
pub fn golden_path(root: &Path, scale: Scale, figure: &FigureRun) -> PathBuf {
    root.join(scale.golden_dir()).join(figure.export_file())
}

/// Compares every figure against its checked-in golden under `golden_root`.
/// Returns the list of failures (empty = all pinned).
pub fn check_goldens(golden_root: &Path, scale: Scale, figures: &[FigureRun]) -> Vec<String> {
    let mut failures = Vec::new();
    for figure in figures {
        let path = golden_path(golden_root, scale, figure);
        match std::fs::read_to_string(&path) {
            Ok(golden) => {
                if let Err(diff) = compare_export(&figure.export_file(), &golden, &figure.export) {
                    failures.push(diff);
                }
            }
            Err(e) => failures.push(format!(
                "{}: cannot read golden {}: {e} (regenerate with --update-golden)",
                figure.export_file(),
                path.display()
            )),
        }
    }
    failures
}

/// Writes (or rewrites) the goldens for `figures` under `golden_root`.
pub fn update_goldens(golden_root: &Path, scale: Scale, figures: &[FigureRun]) -> io::Result<()> {
    let dir = golden_root.join(scale.golden_dir());
    std::fs::create_dir_all(&dir)?;
    for figure in figures {
        std::fs::write(dir.join(figure.export_file()), &figure.export)?;
    }
    Ok(())
}

/// Writes the full figure gallery into `out`: every figure's CSV export, a
/// per-figure campaign report directory (SVG plots, markdown) for the
/// simulation-backed figures, and an index.
pub fn write_gallery(out: &Path, figures: &[FigureRun]) -> io::Result<()> {
    std::fs::create_dir_all(out)?;
    let mut index =
        String::from("# Paper figures\n\n| figure | export | report |\n|---|---|---|\n");
    for figure in figures {
        let export_file = figure.export_file();
        std::fs::write(out.join(&export_file), &figure.export)?;
        let report = if let Some(outcome) = &figure.outcome {
            let dir = out.join(figure.id);
            write_report(&dir, &format!("{} — {}", figure.id, figure.title), outcome)?;
            format!("[`{}/report.md`]({}/report.md)", figure.id, figure.id)
        } else {
            "analytic".to_string()
        };
        index.push_str(&format!(
            "| {} — {} | [`{export_file}`]({export_file}) | {report} |\n",
            figure.id, figure.title
        ));
    }
    std::fs::write(out.join("index.md"), index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_export_names_the_offending_column() {
        let golden = "hops,switch,media_ns\n1,cut-through,10\n2,cut-through,20\n";
        let actual = "hops,switch,media_ns\n1,cut-through,10\n2,cut-through,21\n";
        let err = compare_export("e1_latency_vs_hops.csv", golden, actual).unwrap_err();
        assert!(err.contains("line 3"), "diff was: {err}");
        assert!(err.contains("column `media_ns`"), "diff was: {err}");
        assert!(err.contains("golden=20 actual=21"), "diff was: {err}");
        assert!(compare_export("x", golden, golden).is_ok());
    }

    #[test]
    fn compare_export_reports_missing_lines() {
        let golden = "a,b\n1,2\n3,4\n";
        let actual = "a,b\n1,2\n";
        let err = compare_export("t.csv", golden, actual).unwrap_err();
        assert!(err.contains("3 line(s)"), "diff was: {err}");
    }

    #[test]
    fn analytic_figures_are_store_free_and_deterministic() {
        assert_eq!(e5_export(), e5_export());
        assert_eq!(e6_export(), e6_export());
        assert_eq!(e7_export(), e7_export());
        assert!(e5_export().starts_with("reconfig_us,min_flow_kib\n"));
        assert_eq!(e6_export().lines().count(), 9, "header + 8 BER points");
    }

    #[test]
    fn figure_table_lists_all_eleven_figures_at_both_scales() {
        for scale in [Scale::Tiny, Scale::Paper] {
            let defs = figure_defs(scale);
            let ids: Vec<&str> = defs.iter().map(|d| d.id).collect();
            assert_eq!(
                ids,
                ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11"]
            );
            let analytic = defs
                .iter()
                .filter(|d| matches!(d.kind, FigureKind::Analytic(_)))
                .count();
            assert_eq!(analytic, 3, "e5, e6, e7");
        }
    }

    #[test]
    fn figure_resolver_ignores_foreign_and_unknown_markers() {
        let dir =
            std::env::temp_dir().join(format!("rackfabric-figure-resolver-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let exec = Executor::new(ResultStore::open(&dir).unwrap(), Runner::single_threaded());
        let foreign = Command::ExpandMatrix {
            campaign: "not-a-figure".into(),
            cells: 1,
            jobs: 1,
        };
        assert!(!FigureResolver.replay(&foreign, &exec).unwrap());
        let unknown = Command::RegenerateFigure {
            id: "e99".into(),
            scale: "tiny".into(),
            budget: None,
        };
        assert!(!FigureResolver.replay(&unknown, &exec).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
