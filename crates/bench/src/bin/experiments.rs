//! Prints every experiment's data series and headline numbers.
//!
//! ```text
//! cargo run --release -p rackfabric-bench --bin experiments          # all
//! cargo run --release -p rackfabric-bench --bin experiments fig1 e5  # some
//! ```

use rackfabric_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let results = if args.is_empty() {
        run_all()
    } else {
        let mut out = Vec::new();
        for arg in &args {
            match arg.as_str() {
                "fig1" => out.push(fig1_latency_vs_hops(21)),
                "fig2" => out.push(fig2_reconfiguration(64)),
                "e3" => out.push(e3_mapreduce_scaling(&[3, 4, 5, 6], 32)),
                "e4" => out.push(e4_power_vs_load(&[0.1, 0.25, 0.5, 0.75, 1.0])),
                "e5" => out.push(e5_breakeven()),
                "e6" => out.push(e6_adaptive_fec()),
                "e7" => out.push(e7_validation()),
                "e8" => out.push(e8_bypass(8)),
                "e9" => out.push(e9_scenario_matrix(&[3, 4], &[0.5, 1.0], 3)),
                other => eprintln!("unknown experiment id: {other}"),
            }
        }
        out
    };
    for r in results {
        print!("{}", r.render());
    }
}
