//! `sweep` — the campaign CLI driving `rackfabric-sweep` end to end:
//! resume (content-addressed store) → budget (CI-convergence replication) →
//! report (CSV/JSON/SVG/markdown).
//!
//! ```text
//! sweep --store DIR --out DIR [options]
//!
//!   --store DIR         result store directory (default: sweep-store)
//!   --out DIR           report output directory (default: sweep-out)
//!   --tiny              CI-sized campaign (small racks, short horizon)
//!   --budget            budgeted replication instead of fixed seeds
//!   --ci-target F       target p99 CI relative half-width (default 0.25)
//!   --min-replicates N  replication floor per cell (default 3)
//!   --max-replicates N  replication cap per cell (default 12)
//!   --max-jobs N        campaign-wide job cap (budgeted mode)
//!   --max-new-jobs N    stop after N fresh executions (interruption knob)
//!   --threads N         runner threads (default 0 = one per core)
//!   --expect-cached     fail if any job executes (the CI resume gate)
//! ```
//!
//! Running the same campaign twice against one store executes zero jobs the
//! second time and writes byte-identical reports — `--expect-cached` plus a
//! directory diff is the resume-determinism gate in CI.

use rackfabric::prelude::TopologySpec;
use rackfabric_scenario::prelude::*;
use rackfabric_sim::prelude::*;
use rackfabric_sweep::prelude::*;

/// The demo campaign: racks × load × controller heavy shuffle, the same
/// space `examples/scenario_sweep.rs` explores, now resumable.
fn campaign_matrix(tiny: bool) -> Matrix {
    let (racks, partition, horizon) = if tiny {
        (
            vec![
                AxisValue::Topology(TopologySpec::grid(2, 2, 2)),
                AxisValue::Topology(TopologySpec::grid(3, 3, 2)),
            ],
            Bytes::from_kib(2),
            SimTime::from_millis(10),
        )
    } else {
        (
            vec![
                AxisValue::Topology(TopologySpec::grid(3, 3, 2)),
                AxisValue::Topology(TopologySpec::grid(4, 4, 2)),
                AxisValue::Topology(TopologySpec::grid(6, 6, 2)),
            ],
            Bytes::from_kib(16),
            SimTime::from_millis(40),
        )
    };
    let base = ScenarioSpec::new(
        "sweep-campaign",
        TopologySpec::grid(3, 3, 2),
        WorkloadSpec::Shuffle {
            partition,
            load: 1.0,
        },
    )
    .horizon(horizon);
    Matrix::new(base)
        .axis("racks", racks)
        .axis("load", vec![AxisValue::Load(0.5), AxisValue::Load(1.0)])
        .axis(
            "controller",
            vec![
                AxisValue::Controller(ControllerSpec::Baseline),
                AxisValue::Controller(ControllerSpec::adaptive_default()),
            ],
        )
        .replicates(if tiny { 2 } else { 3 })
        .master_seed(11)
}

struct Args {
    store: String,
    out: String,
    tiny: bool,
    budget: bool,
    ci_target: f64,
    min_replicates: usize,
    max_replicates: usize,
    max_jobs: Option<u64>,
    max_new_jobs: Option<usize>,
    threads: usize,
    expect_cached: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        store: "sweep-store".into(),
        out: "sweep-out".into(),
        tiny: false,
        budget: false,
        ci_target: 0.25,
        min_replicates: 3,
        max_replicates: 12,
        max_jobs: None,
        max_new_jobs: None,
        threads: 0,
        expect_cached: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} requires a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--store" => args.store = value(&mut i)?,
            "--out" => args.out = value(&mut i)?,
            "--tiny" => args.tiny = true,
            "--budget" => args.budget = true,
            "--ci-target" => {
                args.ci_target = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--ci-target: {e}"))?
            }
            "--min-replicates" => {
                args.min_replicates = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--min-replicates: {e}"))?
            }
            "--max-replicates" => {
                args.max_replicates = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--max-replicates: {e}"))?
            }
            "--max-jobs" => {
                args.max_jobs = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--max-jobs: {e}"))?,
                )
            }
            "--max-new-jobs" => {
                args.max_new_jobs = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--max-new-jobs: {e}"))?,
                )
            }
            "--threads" => {
                args.threads = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--expect-cached" => args.expect_cached = true,
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("sweep: {message}");
            std::process::exit(2);
        }
    };

    let store = match ResultStore::open(&args.store) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("sweep: cannot open store {}: {e}", args.store);
            std::process::exit(1);
        }
    };
    let runner = Runner::new(args.threads);
    let name = if args.tiny {
        "sweep-campaign (tiny)"
    } else {
        "sweep-campaign"
    };

    let mut sweep = Sweep::new(campaign_matrix(args.tiny));
    if args.budget {
        sweep = sweep.budget(BudgetPolicy {
            target_rel_halfwidth: args.ci_target,
            min_replicates: args.min_replicates,
            max_replicates: args.max_replicates,
            max_total_jobs: args.max_jobs,
            ..BudgetPolicy::default()
        });
    }
    if let Some(cap) = args.max_new_jobs {
        sweep = sweep.max_new_jobs(cap);
    }

    eprintln!(
        "sweep: campaign `{name}` against store {} ({} record(s) warm)",
        args.store,
        store.len()
    );
    let outcome = match sweep.run(&store, &runner) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("sweep: FAIL — campaign aborted: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "sweep: {} job(s) — {} executed, {} cache hit(s), {} skipped{}",
        outcome.total_jobs(),
        outcome.executed,
        outcome.cached,
        outcome.skipped,
        if outcome.interrupted {
            " [interrupted]"
        } else {
            ""
        }
    );
    for budget in &outcome.cell_budgets {
        eprintln!(
            "  cell {}: {} replicate(s), stop={}",
            budget.cell,
            budget.replicates,
            budget.stop.label()
        );
    }

    if let Err(e) = write_report(std::path::Path::new(&args.out), name, &outcome) {
        eprintln!("sweep: FAIL — cannot write report to {}: {e}", args.out);
        std::process::exit(1);
    }
    eprintln!("sweep: wrote report to {}", args.out);

    if args.expect_cached && outcome.executed > 0 {
        eprintln!(
            "sweep: FAIL — expected a fully warm store but {} job(s) executed",
            outcome.executed
        );
        std::process::exit(1);
    }
}
