//! `sweep` — the campaign CLI driving `rackfabric-sweep` end to end through
//! the command layer: journal (write-ahead campaign log) → resume
//! (content-addressed store) → budget (CI-convergence replication) →
//! report (CSV/JSON/SVG/markdown) → bundle (one-file export of all three).
//!
//! ```text
//! sweep --store DIR --out DIR [options]
//!
//!   --store DIR         result store directory (default: sweep-store)
//!   --out DIR           report output directory (default: sweep-out)
//!   --tiny              CI-sized campaign (small racks, short horizon)
//!   --budget            budgeted replication instead of fixed seeds
//!   --ci-target F       target p99 CI relative half-width (default 0.25)
//!   --min-replicates N  replication floor per cell (default 3)
//!   --max-replicates N  replication cap per cell (default 12)
//!   --max-jobs N        campaign-wide job cap (budgeted mode)
//!   --max-new-jobs N    stop after N fresh executions (interruption knob)
//!   --threads N         runner threads (default 0 = one per core)
//!   --expect-cached     fail if any job executes (the CI resume gate)
//!   --gc                after the run, GC store records the campaign no
//!                       longer references (orphans left by campaign edits)
//!   --stats             print cumulative store traffic (cache hits/misses,
//!                       puts, GC activity) and exit without running jobs
//!   --trace DIR         write a Chrome-trace JSON of the campaign (job
//!                       lifecycle, store lookups, execute/persist phases)
//!                       into DIR; open it at https://ui.perfetto.dev
//!
//! command layer (journal, recovery, diff, bundles):
//!
//!   --journal DIR       campaign journal directory (default:
//!                       <store>/journal); every mutation is appended
//!                       write-ahead as a checksummed command record
//!   --no-journal        run without a journal (no durability)
//!   --recover           before running, replay the journal: jobs whose
//!                       write-ahead record survived but whose store write
//!                       didn't re-execute; fully stored jobs cost zero
//!   --diff A B          render a command-by-command diff of two journal
//!                       directories and exit
//!   --export-bundle F   after the run, export store + journal + reports
//!                       as the single self-contained bundle file F
//!   --import-bundle F   restore a bundle into --out (store/, journal/,
//!                       reports/ subdirectories) and exit
//!
//! figure mode (the paper-figure campaigns e1..e11):
//!
//!   --figures           run every paper-figure campaign through the store,
//!                       write the gallery (CSV exports + per-figure SVG
//!                       reports) to --out, and diff each export against
//!                       golden/<scale>/ byte for byte (exit 1 on drift)
//!                       (--budget and --max-new-jobs apply here too; both
//!                       skip the golden gate, which pins fixed replicates)
//!   --update-golden     regenerate the goldens instead of checking them
//!   --golden DIR        golden root directory (default: golden)
//! ```
//!
//! Running the same campaign twice against one store executes zero jobs the
//! second time and writes byte-identical reports — `--expect-cached` plus a
//! directory diff is the resume-determinism gate in CI. The `paper-figures`
//! CI job applies the same gate to `--figures` and additionally pins every
//! export against the checked-in `golden/` files; its recovery arm
//! interrupts a figure campaign with `--max-new-jobs`, replays the journal
//! with `--recover`, and requires the recovered report directory to be
//! byte-identical to an uninterrupted run's.

use rackfabric::prelude::TopologySpec;
use rackfabric_bench::figures::{self, FigureOptions, FigureResolver, Scale};
use rackfabric_cmd::prelude::*;
use rackfabric_obs::trace::TraceSink;
use rackfabric_obs::Observer;
use rackfabric_scenario::prelude::*;
use rackfabric_sim::prelude::*;
use rackfabric_sweep::prelude::*;
use std::path::Path;
use std::sync::Arc;

/// The demo campaign: racks × load × controller heavy shuffle, the same
/// space `examples/scenario_sweep.rs` explores, now resumable.
fn campaign_matrix(tiny: bool) -> Matrix {
    let (racks, partition, horizon) = if tiny {
        (
            vec![
                AxisValue::Topology(TopologySpec::grid(2, 2, 2)),
                AxisValue::Topology(TopologySpec::grid(3, 3, 2)),
            ],
            Bytes::from_kib(2),
            SimTime::from_millis(10),
        )
    } else {
        (
            vec![
                AxisValue::Topology(TopologySpec::grid(3, 3, 2)),
                AxisValue::Topology(TopologySpec::grid(4, 4, 2)),
                AxisValue::Topology(TopologySpec::grid(6, 6, 2)),
            ],
            Bytes::from_kib(16),
            SimTime::from_millis(40),
        )
    };
    let base = ScenarioSpec::new(
        "sweep-campaign",
        TopologySpec::grid(3, 3, 2),
        WorkloadSpec::Shuffle {
            partition,
            load: 1.0,
        },
    )
    .horizon(horizon);
    Matrix::new(base)
        .axis("racks", racks)
        .axis("load", vec![AxisValue::Load(0.5), AxisValue::Load(1.0)])
        .axis(
            "controller",
            vec![
                AxisValue::Controller(ControllerSpec::Baseline),
                AxisValue::Controller(ControllerSpec::adaptive_default()),
            ],
        )
        .replicates(if tiny { 2 } else { 3 })
        .master_seed(11)
}

struct Args {
    store: String,
    out: String,
    tiny: bool,
    budget: bool,
    ci_target: f64,
    min_replicates: usize,
    max_replicates: usize,
    max_jobs: Option<u64>,
    max_new_jobs: Option<usize>,
    threads: usize,
    expect_cached: bool,
    figures: bool,
    update_golden: bool,
    golden: String,
    gc: bool,
    stats: bool,
    trace: Option<String>,
    journal: Option<String>,
    no_journal: bool,
    recover: bool,
    diff: Option<(String, String)>,
    export_bundle: Option<String>,
    import_bundle: Option<String>,
}

impl Args {
    /// The effective journal directory (default: `<store>/journal`), or
    /// `None` under `--no-journal`.
    fn journal_dir(&self) -> Option<String> {
        if self.no_journal {
            return None;
        }
        Some(
            self.journal
                .clone()
                .unwrap_or_else(|| format!("{}/journal", self.store)),
        )
    }

    /// The budgeted-replication policy assembled from the CLI knobs.
    fn budget_policy(&self) -> BudgetPolicy {
        BudgetPolicy {
            target_rel_halfwidth: self.ci_target,
            min_replicates: self.min_replicates,
            max_replicates: self.max_replicates,
            max_total_jobs: self.max_jobs,
            ..BudgetPolicy::default()
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        store: "sweep-store".into(),
        out: "sweep-out".into(),
        tiny: false,
        budget: false,
        ci_target: 0.25,
        min_replicates: 3,
        max_replicates: 12,
        max_jobs: None,
        max_new_jobs: None,
        threads: 0,
        expect_cached: false,
        figures: false,
        update_golden: false,
        golden: "golden".into(),
        gc: false,
        stats: false,
        trace: None,
        journal: None,
        no_journal: false,
        recover: false,
        diff: None,
        export_bundle: None,
        import_bundle: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} requires a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--store" => args.store = value(&mut i)?,
            "--out" => args.out = value(&mut i)?,
            "--tiny" => args.tiny = true,
            "--budget" => args.budget = true,
            "--ci-target" => {
                args.ci_target = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--ci-target: {e}"))?
            }
            "--min-replicates" => {
                args.min_replicates = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--min-replicates: {e}"))?
            }
            "--max-replicates" => {
                args.max_replicates = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--max-replicates: {e}"))?
            }
            "--max-jobs" => {
                args.max_jobs = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--max-jobs: {e}"))?,
                )
            }
            "--max-new-jobs" => {
                args.max_new_jobs = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--max-new-jobs: {e}"))?,
                )
            }
            "--threads" => {
                args.threads = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--expect-cached" => args.expect_cached = true,
            "--figures" => args.figures = true,
            "--update-golden" => args.update_golden = true,
            "--golden" => args.golden = value(&mut i)?,
            "--gc" => args.gc = true,
            "--stats" => args.stats = true,
            "--trace" => args.trace = Some(value(&mut i)?),
            "--journal" => args.journal = Some(value(&mut i)?),
            "--no-journal" => args.no_journal = true,
            "--recover" => args.recover = true,
            "--diff" => {
                let a = value(&mut i)?;
                let b = value(&mut i)?;
                args.diff = Some((a, b));
            }
            "--export-bundle" => args.export_bundle = Some(value(&mut i)?),
            "--import-bundle" => args.import_bundle = Some(value(&mut i)?),
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("sweep: {message}");
            std::process::exit(2);
        }
    };

    if let Some((a, b)) = &args.diff {
        match diff_journal_dirs(a, Path::new(a), b, Path::new(b)) {
            Ok(text) => {
                print!("{text}");
                return;
            }
            Err(e) => {
                eprintln!("sweep: FAIL — cannot diff journals {a} and {b}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(src) = &args.import_bundle {
        match import_bundle(Path::new(src), Path::new(&args.out)) {
            Ok(stats) => {
                eprintln!(
                    "sweep: restored {} file(s), {} byte(s) from {src} into {}",
                    stats.files, stats.bytes, args.out
                );
                return;
            }
            Err(e) => {
                eprintln!("sweep: FAIL — cannot import bundle {src}: {e}");
                std::process::exit(1);
            }
        }
    }

    let store = match ResultStore::open(&args.store) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("sweep: cannot open store {}: {e}", args.store);
            std::process::exit(1);
        }
    };
    if args.stats {
        print_store_stats(&args.store, &store);
        return;
    }

    let observer = match &args.trace {
        Some(_) => Observer::off().with_trace(Arc::new(TraceSink::new())),
        None => Observer::off(),
    };
    let runner = Runner::new(args.threads).with_observer(observer.clone());
    let exec = match args.journal_dir() {
        Some(dir) => match Executor::with_journal(store, runner, &dir) {
            Ok(exec) => exec,
            Err(e) => {
                eprintln!("sweep: cannot open journal {dir}: {e}");
                std::process::exit(1);
            }
        },
        None => Executor::new(store, runner),
    };

    if args.recover {
        run_recovery(&args, &exec);
    }

    if args.figures {
        run_figure_mode(&args, &exec);
        export_bundle_if_requested(&args, &exec);
        finish_observability(&args, exec.store(), &observer);
        return;
    }
    let name = if args.tiny {
        "sweep-campaign (tiny)"
    } else {
        "sweep-campaign"
    };

    let mut sweep = Sweep::new(campaign_matrix(args.tiny)).observed(observer.clone());
    if args.budget {
        sweep = sweep.budget(args.budget_policy());
    }
    if let Some(cap) = args.max_new_jobs {
        sweep = sweep.max_new_jobs(cap);
    }

    eprintln!(
        "sweep: campaign `{name}` against store {} ({} record(s) warm)",
        args.store,
        exec.store().len()
    );
    let outcome = match exec.run_campaign(&sweep) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("sweep: FAIL — campaign aborted: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "sweep: {} job(s) — {} executed, {} cache hit(s), {} skipped{}",
        outcome.total_jobs(),
        outcome.executed,
        outcome.cached,
        outcome.skipped,
        if outcome.interrupted {
            " [interrupted]"
        } else {
            ""
        }
    );
    for budget in &outcome.cell_budgets {
        eprintln!(
            "  cell {}: {} replicate(s), stop={}",
            budget.cell,
            budget.replicates,
            budget.stop.label()
        );
    }

    if let Err(e) = exec.emit_report(name, Path::new(&args.out), &outcome) {
        eprintln!("sweep: FAIL — cannot write report to {}: {e}", args.out);
        std::process::exit(1);
    }
    eprintln!("sweep: wrote report to {}", args.out);

    if args.gc {
        let live: Vec<JobKey> = outcome
            .records
            .iter()
            .map(|r| job_key(&r.job.spec))
            .collect();
        match exec.gc(&live) {
            Ok(stats) => eprintln!(
                "sweep: gc kept {} record(s), removed {}",
                stats.kept, stats.removed
            ),
            Err(e) => {
                eprintln!("sweep: FAIL — gc: {e}");
                std::process::exit(1);
            }
        }
    }

    export_bundle_if_requested(&args, &exec);
    finish_observability(&args, exec.store(), &observer);

    if args.expect_cached && outcome.executed > 0 {
        eprintln!(
            "sweep: FAIL — expected a fully warm store but {} job(s) executed",
            outcome.executed
        );
        std::process::exit(1);
    }
}

/// Campaign-marker resolver for the CLI's `--recover`: figure markers
/// replay through the bench figure table, the demo campaign replays by
/// rebuilding its matrix at the invocation's scale. Either way the replay
/// is store-first, so fully stored campaigns cost zero executions.
struct CliResolver {
    tiny: bool,
}

impl CampaignResolver for CliResolver {
    fn replay(&self, command: &Command, exec: &Executor) -> std::io::Result<bool> {
        match command {
            Command::RegenerateFigure { .. } => FigureResolver.replay(command, exec),
            Command::ExpandMatrix { campaign, .. } if campaign == "sweep-campaign" => {
                exec.run_campaign(&Sweep::new(campaign_matrix(self.tiny)))?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }
}

/// `--recover`: replay the journal before the requested mode runs, so an
/// interrupted prior invocation completes first (already-stored jobs cost
/// zero executions).
fn run_recovery(args: &Args, exec: &Executor) {
    let resolver = CliResolver { tiny: args.tiny };
    match exec.recover(&resolver) {
        Ok(stats) => eprintln!(
            "sweep: recovered journal — {} command(s): {} cell(s) re-executed, \
             {} already stored, {} campaign(s) replayed, {} marker(s) skipped{}",
            stats.commands,
            stats.cells_replayed,
            stats.cells_already_stored,
            stats.campaigns_replayed,
            stats.markers_skipped,
            if stats.torn_tail {
                " [torn tail healed]"
            } else {
                ""
            }
        ),
        Err(e) => {
            eprintln!("sweep: FAIL — journal recovery: {e}");
            std::process::exit(1);
        }
    }
}

/// `--export-bundle FILE`: pack store + journal + the report directory the
/// run just wrote into one self-contained bundle file.
fn export_bundle_if_requested(args: &Args, exec: &Executor) {
    let Some(dest) = &args.export_bundle else {
        return;
    };
    match exec.export_bundle(Some(Path::new(&args.out)), Path::new(dest)) {
        Ok(stats) => eprintln!(
            "sweep: exported bundle {dest} ({} file(s), {} byte(s))",
            stats.files, stats.bytes
        ),
        Err(e) => {
            eprintln!("sweep: FAIL — cannot export bundle {dest}: {e}");
            std::process::exit(1);
        }
    }
}

/// `--stats`: report the cumulative store-traffic sidecar plus what this
/// handle can see right now, then exit without dispatching a single job.
fn print_store_stats(store_dir: &str, store: &ResultStore) {
    let stats = store.read_stats();
    println!("store {store_dir}: {} record(s)", store.len());
    println!("  cache hits:    {}", stats.hits);
    println!("  cache misses:  {}", stats.misses);
    println!("  hit rate:      {:.1}%", stats.hit_rate() * 100.0);
    println!("  records put:   {}", stats.puts);
    println!("  gc kept:       {}", stats.gc_kept);
    println!("  gc removed:    {}", stats.gc_removed);
}

/// End-of-run observability: persist the store-traffic counters into the
/// `stats.json` sidecar (so a later `--stats` sees this run) and, under
/// `--trace DIR`, write the campaign trace where report diffs can't see it.
fn finish_observability(args: &Args, store: &ResultStore, observer: &Observer) {
    if let Err(e) = store.flush_stats() {
        eprintln!("sweep: warning — cannot persist store stats: {e}");
    }
    let (Some(dir), Some(sink)) = (&args.trace, observer.trace()) else {
        return;
    };
    let path = std::path::Path::new(dir).join("sweep_trace.json");
    let written = std::fs::create_dir_all(dir)
        .and_then(|()| sink.write_file(&path))
        .map(|()| sink.len());
    match written {
        Ok(events) => eprintln!(
            "sweep: wrote trace ({events} event(s), {} dropped) to {}",
            sink.dropped(),
            path.display()
        ),
        Err(e) => {
            eprintln!(
                "sweep: FAIL — cannot write trace to {}: {e}",
                path.display()
            );
            std::process::exit(1);
        }
    }
}

/// `--figures`: drive every paper-figure campaign (e1..e11) through the
/// command layer, write the report gallery, and pin (or regenerate) the
/// goldens. `--budget` and `--max-new-jobs` both produce exports the fixed-
/// replicate goldens cannot pin, so they skip the golden gate (and refuse
/// `--update-golden`).
fn run_figure_mode(args: &Args, exec: &Executor) {
    let scale = if args.tiny { Scale::Tiny } else { Scale::Paper };
    let opts = FigureOptions {
        budget: args.budget.then(|| args.budget_policy()),
        max_new_jobs: args.max_new_jobs,
        cancel: None,
    };
    if args.update_golden && (opts.budget.is_some() || opts.max_new_jobs.is_some()) {
        eprintln!(
            "sweep: --update-golden requires fixed replicates and no job cap \
             (drop --budget / --max-new-jobs)"
        );
        std::process::exit(2);
    }
    eprintln!(
        "sweep: paper figures at {:?} scale against store {} ({} record(s) warm)",
        scale,
        args.store,
        exec.store().len()
    );
    let runs = match figures::run_figures_with(scale, exec, &opts) {
        Ok(runs) => runs,
        Err(e) => {
            eprintln!("sweep: FAIL — figure campaign aborted: {e}");
            std::process::exit(1);
        }
    };
    let mut executed = 0;
    for run in &runs {
        executed += run.executed;
        eprintln!(
            "  {}: {} executed, {} cached{} — {}",
            run.export_file(),
            run.executed,
            run.cached,
            if run.interrupted {
                " [interrupted]"
            } else {
                ""
            },
            run.title
        );
    }
    let interrupted = runs.iter().any(|r| r.interrupted);

    let out = std::path::Path::new(&args.out);
    if let Err(e) = figures::write_gallery(out, &runs) {
        eprintln!("sweep: FAIL — cannot write gallery to {}: {e}", args.out);
        std::process::exit(1);
    }
    eprintln!("sweep: wrote figure gallery to {}", args.out);

    let golden_root = std::path::Path::new(&args.golden);
    if args.update_golden {
        if let Err(e) = figures::update_goldens(golden_root, scale, &runs) {
            eprintln!("sweep: FAIL — cannot write goldens: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "sweep: regenerated {} golden(s) under {}/{}",
            runs.len(),
            args.golden,
            scale.golden_dir()
        );
    } else if opts.budget.is_some() {
        eprintln!(
            "sweep: budgeted replication — golden gate skipped (goldens pin fixed replicates)"
        );
    } else if interrupted {
        eprintln!(
            "sweep: campaign interrupted by --max-new-jobs — golden gate skipped \
             (recover with --recover against the same store and journal)"
        );
    } else {
        let failures = figures::check_goldens(golden_root, scale, &runs);
        if !failures.is_empty() {
            for failure in &failures {
                eprintln!("sweep: golden drift:\n{failure}");
            }
            eprintln!(
                "sweep: FAIL — {} figure export(s) drifted from golden/{} \
                 (intentional change? re-run with --update-golden)",
                failures.len(),
                scale.golden_dir()
            );
            std::process::exit(1);
        }
        eprintln!(
            "sweep: all {} figure export(s) match golden/{}",
            runs.len(),
            scale.golden_dir()
        );
    }

    if args.gc {
        let live: Vec<JobKey> = figures::live_keys(&runs).into_iter().collect();
        match exec.gc(&live) {
            Ok(stats) => eprintln!(
                "sweep: gc kept {} record(s), removed {}",
                stats.kept, stats.removed
            ),
            Err(e) => {
                eprintln!("sweep: FAIL — gc: {e}");
                std::process::exit(1);
            }
        }
    }

    if args.expect_cached && executed > 0 {
        eprintln!(
            "sweep: FAIL — expected a fully warm store but {executed} figure job(s) executed"
        );
        std::process::exit(1);
    }
}
