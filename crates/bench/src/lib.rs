//! Experiment harness regenerating every figure of the paper plus the
//! derived experiments listed in `DESIGN.md`.
//!
//! Each `fig*`/`e*` function builds the workload, runs the fabric simulation
//! (and the baseline where applicable), and returns a printable
//! [`ExperimentResult`]. The `experiments` binary prints them; the Criterion
//! benches under `benches/` time the same functions.

use rackfabric::prelude::*;
use rackfabric_netfpga::validate_against_des;
use rackfabric_phy::adaptive_fec::AdaptiveFecController;
use rackfabric_phy::fec::invert_ber_to_snr_db;
use rackfabric_phy::FecMode;
use rackfabric_sim::prelude::*;
use rackfabric_sim::stats::Series;
use rackfabric_topo::NodeId;
use rackfabric_workload::{ArrivalProcess, FlowSizeDistribution};
use rackfabric_workload::{Flow, MapReduceShuffle, UniformWorkload, Workload, WorkloadFlowId};

/// A printable experiment result: a headline, one or more data series, and
/// free-form notes.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment identifier ("fig1", "e3", ...).
    pub id: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// The data series that regenerate the figure.
    pub series: Vec<Series>,
    /// Key/value rows printed under the series.
    pub rows: Vec<(String, String)>,
}

impl ExperimentResult {
    /// Renders the result as the text block recorded in `EXPERIMENTS.md`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        for s in &self.series {
            out.push_str(&s.to_table());
        }
        for (k, v) in &self.rows {
            out.push_str(&format!("{k:<44} {v}\n"));
        }
        out.push('\n');
        out
    }
}

fn fast_sim(seed: u64, horizon_ms: u64) -> SimConfig {
    SimConfig::with_seed(seed).horizon(SimTime::from_millis(horizon_ms))
}

/// **Figure 1** — latency due to media propagation vs. latency due to packet
/// switching, as a path crosses 1..=21 cut-through switches spaced 2 m apart.
///
/// For each hop count a single 1500-byte packet is pushed through a line
/// topology in the full DES model and its latency breakdown recorded.
pub fn fig1_latency_vs_hops(max_hops: usize) -> ExperimentResult {
    let mut media = Series::new("media_propagation_ns");
    let mut switching = Series::new("switching_logic_ns");
    let mut total = Series::new("end_to_end_ns");
    // `switches` counts the cut-through switches traversed; the path has one
    // more link than that (the paper assumes a switch every 2 m).
    for switches in 1..=max_hops {
        let spec = TopologySpec::line(switches + 2, 4);
        let mut config = FabricConfig::baseline(spec);
        config.sim = fast_sim(1, 10);
        let flows = vec![Flow {
            id: WorkloadFlowId(0),
            src: NodeId(0),
            dst: NodeId(switches as u32 + 1),
            size: Bytes::new(1500),
            start_at: SimTime::ZERO,
        }];
        let fabric = run_fabric(config, flows);
        let b = &fabric.metrics.breakdown;
        media.push(switches as f64, b.propagation.as_nanos_f64());
        switching.push(switches as f64, b.switching.as_nanos_f64());
        total.push(switches as f64, b.total().as_nanos_f64());
    }
    let last = max_hops as f64;
    let ratio = switching.points().last().map(|&(_, s)| s).unwrap_or(0.0)
        / media
            .points()
            .last()
            .map(|&(_, m)| m.max(1e-9))
            .unwrap_or(1.0);
    ExperimentResult {
        id: "fig1",
        title: "media propagation vs. cut-through switching latency (switch every 2 m)",
        series: vec![media, switching, total],
        rows: vec![
            ("hops swept".into(), format!("1..={max_hops}")),
            (
                format!("switching / media latency ratio at {last} hops"),
                format!("{ratio:.1}x"),
            ),
        ],
    }
}

/// **Figure 2** — the Closed Ring Control observes a congested 2-lane 4x4
/// grid and reconfigures it into a 1-lane 4x4 torus within the same lane
/// budget. The same shuffle is also run on the static grid for comparison.
pub fn fig2_reconfiguration(partition_kib: u64) -> ExperimentResult {
    let flows = MapReduceShuffle::all_to_all(16, Bytes::from_kib(partition_kib))
        .generate(&mut DetRng::new(42));

    let mut adaptive_cfg = FabricConfig::adaptive(TopologySpec::grid(4, 4, 2));
    adaptive_cfg.upgrade_spec = Some(TopologySpec::torus(4, 4, 1));
    adaptive_cfg.crc.epoch = SimDuration::from_micros(20);
    adaptive_cfg.sim = fast_sim(42, 500);
    let adaptive = run_fabric(adaptive_cfg, flows.clone());

    let mut baseline_cfg = FabricConfig::baseline(TopologySpec::grid(4, 4, 2));
    baseline_cfg.sim = fast_sim(42, 500);
    let baseline = run_fabric(baseline_cfg, flows);

    let a = adaptive.metrics.summary();
    let b = baseline.metrics.summary();
    let reconfig_at = adaptive
        .metrics
        .reconfig_events
        .iter()
        .find(|(_, name)| name.starts_with("topology"))
        .map(|(t, _)| *t);

    ExperimentResult {
        id: "fig2",
        title: "CRC-driven grid(2-lane) -> torus(1-lane) reconfiguration under a 16-node shuffle",
        series: vec![
            adaptive.metrics.throughput_series.clone(),
            adaptive.metrics.power_series.clone(),
        ],
        rows: vec![
            (
                "topology reconfigurations".into(),
                format!("{}", a.topology_reconfigurations),
            ),
            (
                "reconfiguration time (us into run)".into(),
                reconfig_at.map_or("none".into(), |t| format!("{t:.1}")),
            ),
            (
                "adaptive shuffle completion (us)".into(),
                format!("{:.1}", a.job_completion_us.unwrap_or(f64::NAN)),
            ),
            (
                "static grid shuffle completion (us)".into(),
                format!("{:.1}", b.job_completion_us.unwrap_or(f64::NAN)),
            ),
            (
                "speedup".into(),
                format!(
                    "{:.2}x",
                    b.job_completion_us.unwrap_or(f64::NAN)
                        / a.job_completion_us.unwrap_or(f64::NAN)
                ),
            ),
            ("final topology".into(), adaptive.current_spec.name.clone()),
        ],
    }
}

/// **E3** — shuffle completion time vs. rack size, static grid baseline vs.
/// adaptive fabric (which may escalate to a torus).
pub fn e3_mapreduce_scaling(sides: &[usize], partition_kib: u64) -> ExperimentResult {
    let mut base_series = Series::new("baseline_grid_completion_us");
    let mut adaptive_series = Series::new("adaptive_completion_us");
    for &k in sides {
        let nodes = k * k;
        let flows = MapReduceShuffle::all_to_all(nodes, Bytes::from_kib(partition_kib))
            .generate(&mut DetRng::new(7));
        let mut b = FabricConfig::baseline(TopologySpec::grid(k, k, 2));
        b.sim = fast_sim(7, 2_000);
        let base = run_fabric(b, flows.clone());
        let mut a = FabricConfig::adaptive(TopologySpec::grid(k, k, 2));
        a.upgrade_spec = Some(TopologySpec::torus(k, k, 1));
        a.crc.epoch = SimDuration::from_micros(20);
        a.sim = fast_sim(7, 2_000);
        let adaptive = run_fabric(a, flows);
        base_series.push(
            nodes as f64,
            base.metrics.summary().job_completion_us.unwrap_or(f64::NAN),
        );
        adaptive_series.push(
            nodes as f64,
            adaptive
                .metrics
                .summary()
                .job_completion_us
                .unwrap_or(f64::NAN),
        );
    }
    ExperimentResult {
        id: "e3",
        title: "MapReduce shuffle completion vs rack size (baseline grid vs adaptive fabric)",
        series: vec![base_series, adaptive_series],
        rows: vec![("partition size (KiB)".into(), format!("{partition_kib}"))],
    }
}

/// **E4** — interconnect power vs offered load, power-cap policy against a
/// latency-only policy that never sheds lanes.
pub fn e4_power_vs_load(loads: &[f64]) -> ExperimentResult {
    let mut capped = Series::new("power_cap_policy_mean_w");
    let mut uncapped = Series::new("latency_policy_mean_w");
    for &load in loads {
        for adaptive_power in [true, false] {
            let spec = TopologySpec::grid(4, 4, 4);
            let mut cfg = FabricConfig::adaptive(spec);
            cfg.crc.policy = if adaptive_power {
                CrcPolicy::PowerCap {
                    budget: rackfabric_sim::units::Power::from_kilowatts(2),
                }
            } else {
                CrcPolicy::LatencyMinimize
            };
            cfg.crc.epoch = SimDuration::from_micros(50);
            cfg.stop_when_done = false;
            cfg.sim = fast_sim(11, 2);
            // Offered load scales the number of uniform flows.
            let flows = UniformWorkload {
                nodes: 16,
                flows: (load * 200.0) as usize,
                sizes: FlowSizeDistribution::Fixed(Bytes::from_kib(16)),
                arrivals: ArrivalProcess::Poisson {
                    mean_interarrival: SimDuration::from_micros(2),
                    start: SimTime::ZERO,
                },
            }
            .generate(&mut DetRng::new(11));
            let fabric = run_fabric(cfg, flows);
            let mean_power = fabric.metrics.summary().mean_power_w;
            if adaptive_power {
                capped.push(load, mean_power);
            } else {
                uncapped.push(load, mean_power);
            }
        }
    }
    ExperimentResult {
        id: "e4",
        title: "interconnect power vs offered load (power-cap policy vs latency-only policy)",
        series: vec![capped, uncapped],
        rows: vec![],
    }
}

/// **E5** — minimum flow size for which reconfiguration pays off, vs
/// reconfiguration time (25 -> 100 Gb/s uplift).
pub fn e5_breakeven() -> ExperimentResult {
    let times: Vec<SimDuration> = [1u64, 5, 10, 20, 50, 100, 500, 1_000, 5_000, 10_000]
        .iter()
        .map(|&us| SimDuration::from_micros(us))
        .collect();
    let mut series = Series::new("min_worthwhile_flow_kib");
    for (t, size) in rackfabric::breakeven::sweep_min_flow_size(
        BitRate::from_gbps(25),
        BitRate::from_gbps(100),
        &times,
    ) {
        series.push(t.as_micros_f64(), size.as_u64() as f64 / 1024.0);
    }
    ExperimentResult {
        id: "e5",
        title: "minimum flow size for which reconfiguration is worth the cost (25G -> 100G)",
        series: vec![series],
        rows: vec![(
            "threshold at 20 us reconfiguration".into(),
            format!(
                "{}",
                rackfabric::breakeven::min_flow_size(&BreakEvenInput {
                    before: BitRate::from_gbps(25),
                    after: BitRate::from_gbps(100),
                    reconfig_time: SimDuration::from_micros(20),
                })
                .unwrap()
            ),
        )],
    }
}

/// **E6** — adaptive FEC: the codec chosen, post-FEC BER and added latency as
/// the channel's pre-FEC BER degrades.
pub fn e6_adaptive_fec() -> ExperimentResult {
    let controller = AdaptiveFecController::default();
    let mut chosen = Series::new("chosen_fec_mode_index");
    let mut post = Series::new("post_fec_ber_log10");
    let mut latency = Series::new("added_latency_ns");
    let pre_bers = [1e-15, 1e-12, 1e-10, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4];
    for &ber in &pre_bers {
        let mode = controller.weakest_sufficient(ber, controller.ber_target);
        let idx = FecMode::ALL.iter().position(|m| *m == mode).unwrap();
        let snr = invert_ber_to_snr_db(ber);
        chosen.push(ber.log10(), idx as f64);
        post.push(ber.log10(), mode.post_fec_ber(snr).log10());
        latency.push(ber.log10(), mode.added_latency().as_nanos_f64());
    }
    ExperimentResult {
        id: "e6",
        title: "adaptive FEC: codec choice, post-FEC BER and latency vs channel BER",
        series: vec![chosen, post, latency],
        rows: vec![(
            "FEC ladder".into(),
            "None -> FireCode -> RS(528,514) -> RS(544,514)".into(),
        )],
    }
}

/// **E7** — cross-validation of the event-driven switch model against the
/// cycle-level NetFPGA-SUME model.
pub fn e7_validation() -> ExperimentResult {
    let report = validate_against_des(&[64, 128, 256, 512, 1024, 1500]);
    let mut des = Series::new("des_model_latency_ns");
    let mut cyc = Series::new("cycle_model_latency_ns");
    for p in &report.points {
        des.push(p.frame_bytes as f64, p.des_latency_ns);
        cyc.push(p.frame_bytes as f64, p.cycle_latency_ns);
    }
    ExperimentResult {
        id: "e7",
        title: "small-scale DES switch model vs cycle-level NetFPGA SUME model",
        series: vec![des, cyc],
        rows: vec![
            (
                "worst relative error".into(),
                format!("{:.1}%", report.worst_relative_error * 100.0),
            ),
            (
                "validation (<=25% tolerance)".into(),
                if report.passes(0.25) {
                    "PASS".into()
                } else {
                    "FAIL".into()
                },
            ),
        ],
    }
}

/// **E8** — the high-speed bypass primitive: end-to-end latency of an N-hop
/// path as intermediate switches are replaced by PHY-level bypasses.
pub fn e8_bypass(hops: usize) -> ExperimentResult {
    use rackfabric_sim::Simulator;
    let mut series = Series::new("end_to_end_latency_ns_vs_bypassed_nodes");
    for bypassed in 0..hops.saturating_sub(1) + 1 {
        let spec = TopologySpec::line(hops + 1, 4);
        let mut config = FabricConfig::baseline(spec);
        config.sim = fast_sim(3, 10);
        let flows = vec![Flow {
            id: WorkloadFlowId(0),
            src: NodeId(0),
            dst: NodeId(hops as u32),
            size: Bytes::new(1500),
            start_at: SimTime::ZERO,
        }];
        let mut fabric = AdaptiveFabric::new(config, flows);
        // Install bypasses at the first `bypassed` intermediate nodes.
        let executor = rackfabric_phy::PlpExecutor::default();
        for node in 1..=bypassed.min(hops.saturating_sub(1)) {
            let in_link = fabric
                .topo
                .links_between(NodeId(node as u32 - 1), NodeId(node as u32))[0];
            let out_link = fabric
                .topo
                .links_between(NodeId(node as u32), NodeId(node as u32 + 1))[0];
            executor
                .execute(
                    &mut fabric.phy,
                    &PlpCommand::EnableBypass {
                        at_node: node as u32,
                        in_link,
                        out_link,
                    },
                )
                .expect("bypass installation");
        }
        let mut sim = Simulator::new(fabric, 3);
        sim.run_until(SimTime::from_millis(10));
        let fabric = sim.into_model();
        let latency = fabric.metrics.packet_latency.summary().mean;
        series.push(bypassed as f64, latency / 1000.0);
    }
    let first = series.points().first().map(|&(_, y)| y).unwrap_or(0.0);
    let last = series.last_y().unwrap_or(0.0);
    ExperimentResult {
        id: "e8",
        title: "high-speed bypass: latency of an N-hop path vs number of bypassed switches",
        series: vec![series],
        rows: vec![
            ("path length (switch hops)".into(), format!("{hops}")),
            (
                "latency reduction with all intermediate nodes bypassed".into(),
                format!("{:.1}%", (1.0 - last / first.max(1e-9)) * 100.0),
            ),
        ],
    }
}

/// **E9** — the scenario-matrix engine: rack size × offered load × seeds,
/// static baseline against the adaptive fabric, executed in parallel by
/// `rackfabric-scenario` and reduced to per-cell aggregates. The experiment's
/// CSV is the machine-readable companion of the printed series.
pub fn e9_scenario_matrix(sides: &[usize], loads: &[f64], seeds: usize) -> ExperimentResult {
    use rackfabric_scenario::prelude::*;

    let base = ScenarioSpec::new(
        "e9-scenario-matrix",
        TopologySpec::grid(3, 3, 2),
        WorkloadSpec::shuffle(Bytes::from_kib(8)),
    )
    .horizon(SimTime::from_millis(500));
    let matrix = Matrix::new(base)
        .axis(
            "racks",
            sides
                .iter()
                .map(|&k| AxisValue::Topology(TopologySpec::grid(k, k, 2)))
                .collect(),
        )
        .axis("load", loads.iter().map(|&l| AxisValue::Load(l)).collect())
        .axis(
            "controller",
            vec![
                AxisValue::Controller(ControllerSpec::Baseline),
                AxisValue::Controller(ControllerSpec::adaptive_default()),
            ],
        )
        .replicates(seeds)
        .master_seed(13);

    let result = Runner::new(0).run(&matrix);

    // Series: p99 latency vs load at the largest rack, baseline vs adaptive.
    let biggest = sides
        .last()
        .map(|&k| TopologySpec::grid(k, k, 2).name)
        .unwrap_or_default();
    let mut baseline_p99 = Series::new("baseline_p99_latency_ns");
    let mut adaptive_p99 = Series::new("adaptive_p99_latency_ns");
    for cell in &result.cells {
        let is_biggest = cell
            .labels
            .iter()
            .any(|(k, v)| k == "racks" && *v == biggest);
        if !is_biggest {
            continue;
        }
        let load: f64 = cell
            .labels
            .iter()
            .find(|(k, _)| k == "load")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(f64::NAN);
        let p99_ns = cell.packet_latency.p99 / 1e3;
        match cell.labels.iter().find(|(k, _)| k == "controller") {
            Some((_, v)) if v == "baseline" => baseline_p99.push(load, p99_ns),
            Some(_) => adaptive_p99.push(load, p99_ns),
            None => {}
        }
    }

    ExperimentResult {
        id: "e9",
        title: "scenario matrix: rack x load x controller sweep with per-cell tail latency",
        series: vec![baseline_p99, adaptive_p99],
        rows: vec![
            ("cells".into(), format!("{}", result.cells.len())),
            ("jobs".into(), format!("{}", result.jobs.len())),
            ("failed jobs".into(), format!("{}", result.failed_jobs())),
            (
                "aggregate csv (one row per cell)".into(),
                format!("\n{}", result.to_csv()),
            ),
        ],
    }
}

/// Runs every experiment at the scale used for `EXPERIMENTS.md`.
pub fn run_all() -> Vec<ExperimentResult> {
    vec![
        fig1_latency_vs_hops(21),
        fig2_reconfiguration(64),
        e3_mapreduce_scaling(&[3, 4, 5, 6], 32),
        e4_power_vs_load(&[0.1, 0.25, 0.5, 0.75, 1.0]),
        e5_breakeven(),
        e6_adaptive_fec(),
        e7_validation(),
        e8_bypass(8),
        e9_scenario_matrix(&[3, 4], &[0.5, 1.0], 3),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shows_switching_dominating_media() {
        let r = fig1_latency_vs_hops(4);
        let media = &r.series[0];
        let switching = &r.series[1];
        assert_eq!(media.len(), 4);
        // At every switch count, switching latency exceeds media latency by a
        // large factor — the paper's core motivation.
        for (m, s) in media.points().iter().zip(switching.points()) {
            assert!(s.1 > 5.0 * m.1, "switching {s:?} must dwarf media {m:?}");
        }
        // Both grow with hop count.
        assert!(media.points()[3].1 > media.points()[0].1);
        assert!(switching.points()[3].1 > switching.points()[0].1);
    }

    #[test]
    fn e5_and_e6_are_cheap_and_consistent() {
        let e5 = e5_breakeven();
        assert_eq!(e5.series[0].len(), 10);
        let e6 = e6_adaptive_fec();
        // The chosen codec index is non-decreasing as the channel degrades.
        let idx: Vec<f64> = e6.series[0].points().iter().map(|&(_, y)| y).collect();
        assert!(idx.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn e7_validation_passes() {
        let r = e7_validation();
        assert!(r.rows.iter().any(|(_, v)| v == "PASS"));
    }

    #[test]
    fn e8_bypass_reduces_latency_monotonically() {
        let r = e8_bypass(4);
        let pts: Vec<f64> = r.series[0].points().iter().map(|&(_, y)| y).collect();
        assert_eq!(pts.len(), 4);
        assert!(
            pts.windows(2).all(|w| w[1] <= w[0] + 1e-9),
            "latency must not increase as more switches are bypassed: {pts:?}"
        );
        assert!(
            pts.last().unwrap() < &(pts[0] * 0.8),
            "full bypass saves >20%"
        );
    }

    #[test]
    fn e9_scenario_matrix_sweeps_and_aggregates() {
        let r = e9_scenario_matrix(&[2, 3], &[0.5], 2);
        // 2 racks x 1 load x 2 controllers = 4 cells, x2 seeds = 8 jobs.
        assert!(r.rows.iter().any(|(k, v)| k == "cells" && v == "4"));
        assert!(r.rows.iter().any(|(k, v)| k == "jobs" && v == "8"));
        assert!(r.rows.iter().any(|(k, v)| k == "failed jobs" && v == "0"));
        let csv = &r.rows.last().unwrap().1;
        assert_eq!(
            csv.trim_start_matches('\n').lines().count(),
            5,
            "header + 4 cells"
        );
        // The p99-vs-load series carry one point per load per controller.
        assert_eq!(r.series[0].len(), 1);
        assert_eq!(r.series[1].len(), 1);
    }

    #[test]
    fn render_produces_tables() {
        let r = e5_breakeven();
        let text = r.render();
        assert!(text.contains("== e5"));
        assert!(text.contains("min_worthwhile_flow_kib"));
    }
}
