//! Experiment harness regenerating every figure of the paper plus the
//! derived experiments listed in `DESIGN.md`.
//!
//! Every simulation-backed experiment (e1–e4, e8, e9) is a declarative
//! scenario [`Matrix`] defined in [`figures`]
//! and executed through the **content-addressed result store** shared by all
//! invocations: re-running an experiment (or timing it under the criterion
//! facade) answers from the store instead of re-simulating, and the figure
//! exports are pinned byte-for-byte against `golden/` by
//! `tests/paper_figures.rs` and the CI `paper-figures` job. The analytic
//! experiments (e5, e6) and the cycle-level cross-validation (e7) are pure
//! functions and need no store.
//!
//! Each `fig*`/`e*` function returns a printable [`ExperimentResult`]; the
//! `experiments` binary prints them, the Criterion benches under `benches/`
//! time the same (store-backed) functions, and the `sweep --figures` CLI
//! renders the full gallery.

pub mod figures;

use rackfabric::prelude::*;
use rackfabric_netfpga::validate_against_des;
use rackfabric_phy::adaptive_fec::AdaptiveFecController;
use rackfabric_phy::fec::invert_ber_to_snr_db;
use rackfabric_phy::FecMode;
use rackfabric_scenario::prelude::*;
use rackfabric_sim::prelude::*;
use rackfabric_sim::stats::Series;
use rackfabric_sweep::prelude::*;
use rackfabric_switch::model::SwitchKind;
use std::path::{Path, PathBuf};

/// A printable experiment result: a headline, one or more data series, and
/// free-form notes.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment identifier ("fig1", "e3", ...).
    pub id: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// The data series that regenerate the figure.
    pub series: Vec<Series>,
    /// Key/value rows printed under the series.
    pub rows: Vec<(String, String)>,
}

impl ExperimentResult {
    /// Renders the result as the text block recorded in `EXPERIMENTS.md`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        for s in &self.series {
            out.push_str(&s.to_table());
        }
        for (k, v) in &self.rows {
            out.push_str(&format!("{k:<44} {v}\n"));
        }
        out.push('\n');
        out
    }
}

/// The store directory every experiment run shares (and `cargo bench`'s
/// criterion facade warms on its first sample): `RACKFABRIC_STORE_DIR` when
/// set, otherwise `target/figure-store` inside this checkout — per-checkout
/// (no cross-user collisions in a shared temp dir) and cleared by
/// `cargo clean`.
///
/// Store keys hash the *simulation input*, not the code: an engine change
/// that alters results for an unchanged spec leaves stale records behind.
/// That is exactly the drift the golden gates catch (CI and
/// `tests/paper_figures.rs` always start from cold stores); locally, delete
/// the directory after engine work to force re-execution.
pub fn shared_store_dir() -> PathBuf {
    std::env::var_os("RACKFABRIC_STORE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/figure-store"))
}

/// Resolves a matrix through the shared store via the command-layer
/// [`Executor`](rackfabric_cmd::Executor) (journal-less — same boundary as
/// the CLI, no durability): cache hits skip the engine, misses run on one
/// worker per core and are persisted for the next caller.
fn run_matrix(matrix: rackfabric_scenario::Matrix) -> SweepOutcome {
    let store = ResultStore::open(shared_store_dir()).expect("open shared result store");
    rackfabric_cmd::Executor::new(store, Runner::new(0))
        .run_campaign(&Sweep::new(matrix))
        .expect("store I/O during sweep")
}

use figures::cell_label as label;

/// **Figure 1 / e1** — latency due to media propagation vs. latency due to
/// packet switching, as a path crosses 1..=21 cut-through switches spaced
/// 2 m apart (with a store-and-forward arm for contrast).
pub fn fig1_latency_vs_hops(max_hops: usize) -> ExperimentResult {
    let outcome = run_matrix(figures::e1_matrix(max_hops));
    let mut media = Series::new("media_propagation_ns");
    let mut switching = Series::new("switching_logic_ns");
    let mut total = Series::new("end_to_end_ns");
    let mut store_fwd = Series::new("store_and_forward_end_to_end_ns");
    for record in &outcome.records {
        let JobOutcome::Completed(result) = &record.outcome else {
            continue;
        };
        let spec = &record.job.spec;
        let hops = spec.topology.nodes.saturating_sub(2) as f64;
        let total_ns = result.summary.packet_latency.mean / 1e3;
        match spec.switch.kind {
            SwitchKind::CutThrough => {
                media.push(hops, total_ns * result.summary.propagation_fraction);
                switching.push(hops, total_ns * result.summary.switching_fraction);
                total.push(hops, total_ns);
            }
            SwitchKind::StoreAndForward => store_fwd.push(hops, total_ns),
        }
    }
    let last = max_hops as f64;
    let ratio = switching.points().last().map(|&(_, s)| s).unwrap_or(0.0)
        / media
            .points()
            .last()
            .map(|&(_, m)| m.max(1e-9))
            .unwrap_or(1.0);
    ExperimentResult {
        id: "fig1",
        title: "media propagation vs. cut-through switching latency (switch every 2 m)",
        series: vec![media, switching, total, store_fwd],
        rows: vec![
            ("hops swept".into(), format!("1..={max_hops}")),
            (
                format!("switching / media latency ratio at {last} hops"),
                format!("{ratio:.1}x"),
            ),
        ],
    }
}

/// **Figure 2 / e2** — the Closed Ring Control observes a congested 2-lane
/// 4x4 grid and reconfigures it into a 1-lane 4x4 torus within the same lane
/// budget, across PLP timing tables (electrical-class vs 25x slower
/// reconfiguration). The same shuffle runs on the static grid for
/// comparison.
pub fn fig2_reconfiguration(partition_kib: u64) -> ExperimentResult {
    let outcome = run_matrix(figures::e2_matrix(partition_kib, 500));
    let mut adaptive = Series::new("adaptive_completion_us_vs_plp_split_us");
    let mut baseline = Series::new("baseline_completion_us_vs_plp_split_us");
    let mut rows = Vec::new();
    let mut default_completions = (f64::NAN, f64::NAN); // (baseline, adaptive)
    for cell in &outcome.cells {
        let split_us = figures::cell_spec(&outcome, cell.cell)
            .map_or(f64::NAN, |s| s.plp_timing.split.as_micros_f64());
        let completion = cell.mean_job_completion_us.unwrap_or(f64::NAN);
        let is_default = split_us == PlpTiming::default().split.as_micros_f64();
        if label(cell, "controller") == "baseline" {
            baseline.push(split_us, completion);
            if is_default {
                default_completions.0 = completion;
            }
        } else {
            adaptive.push(split_us, completion);
            if is_default {
                default_completions.1 = completion;
                rows.push((
                    "topology reconfigurations".into(),
                    format!("{}", cell.topology_reconfigurations),
                ));
                rows.push(("plp commands".into(), format!("{}", cell.plp_commands)));
            }
        }
    }
    rows.push((
        "adaptive shuffle completion (us)".into(),
        format!("{:.1}", default_completions.1),
    ));
    rows.push((
        "static grid shuffle completion (us)".into(),
        format!("{:.1}", default_completions.0),
    ));
    rows.push((
        "speedup".into(),
        format!("{:.2}x", default_completions.0 / default_completions.1),
    ));
    ExperimentResult {
        id: "fig2",
        title: "CRC-driven grid(2-lane) -> torus(1-lane) reconfiguration under a 16-node shuffle",
        series: vec![adaptive, baseline],
        rows,
    }
}

/// **E3** — shuffle completion time vs. rack size, static grid baseline vs.
/// adaptive fabric (which may escalate to a torus).
pub fn e3_mapreduce_scaling(sides: &[usize], partition_kib: u64) -> ExperimentResult {
    let outcome = run_matrix(figures::e3_matrix(sides, partition_kib, 2_000));
    let mut base_series = Series::new("baseline_grid_completion_us");
    let mut adaptive_series = Series::new("adaptive_completion_us");
    for cell in &outcome.cells {
        let nodes = figures::cell_spec(&outcome, cell.cell).map_or(0, |s| s.topology.nodes) as f64;
        let completion = cell.mean_job_completion_us.unwrap_or(f64::NAN);
        if label(cell, "controller") == "baseline" {
            base_series.push(nodes, completion);
        } else {
            adaptive_series.push(nodes, completion);
        }
    }
    ExperimentResult {
        id: "e3",
        title: "MapReduce shuffle completion vs rack size (baseline grid vs adaptive fabric)",
        series: vec![base_series, adaptive_series],
        rows: vec![("partition size (KiB)".into(), format!("{partition_kib}"))],
    }
}

/// **E4** — interconnect power vs offered load, power-cap policy against a
/// latency-only policy that never sheds lanes.
pub fn e4_power_vs_load(loads: &[f64]) -> ExperimentResult {
    let outcome = run_matrix(figures::e4_matrix(loads, 2_000));
    let mut capped = Series::new("power_cap_policy_mean_w");
    let mut uncapped = Series::new("latency_policy_mean_w");
    for cell in &outcome.cells {
        let load: f64 = label(cell, "load").parse().unwrap_or(f64::NAN);
        if label(cell, "policy") == "power_cap" {
            capped.push(load, cell.mean_power_w);
        } else {
            uncapped.push(load, cell.mean_power_w);
        }
    }
    ExperimentResult {
        id: "e4",
        title: "interconnect power vs offered load (power-cap policy vs latency-only policy)",
        series: vec![capped, uncapped],
        rows: vec![],
    }
}

/// **E5** — minimum flow size for which reconfiguration pays off, vs
/// reconfiguration time (25 -> 100 Gb/s uplift).
pub fn e5_breakeven() -> ExperimentResult {
    let times: Vec<SimDuration> = [1u64, 5, 10, 20, 50, 100, 500, 1_000, 5_000, 10_000]
        .iter()
        .map(|&us| SimDuration::from_micros(us))
        .collect();
    let mut series = Series::new("min_worthwhile_flow_kib");
    for (t, size) in rackfabric::breakeven::sweep_min_flow_size(
        BitRate::from_gbps(25),
        BitRate::from_gbps(100),
        &times,
    ) {
        series.push(t.as_micros_f64(), size.as_u64() as f64 / 1024.0);
    }
    ExperimentResult {
        id: "e5",
        title: "minimum flow size for which reconfiguration is worth the cost (25G -> 100G)",
        series: vec![series],
        rows: vec![(
            "threshold at 20 us reconfiguration".into(),
            format!(
                "{}",
                rackfabric::breakeven::min_flow_size(&BreakEvenInput {
                    before: BitRate::from_gbps(25),
                    after: BitRate::from_gbps(100),
                    reconfig_time: SimDuration::from_micros(20),
                })
                .unwrap()
            ),
        )],
    }
}

/// **E6** — adaptive FEC: the codec chosen, post-FEC BER and added latency as
/// the channel's pre-FEC BER degrades.
pub fn e6_adaptive_fec() -> ExperimentResult {
    let controller = AdaptiveFecController::default();
    let mut chosen = Series::new("chosen_fec_mode_index");
    let mut post = Series::new("post_fec_ber_log10");
    let mut latency = Series::new("added_latency_ns");
    let pre_bers = [1e-15, 1e-12, 1e-10, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4];
    for &ber in &pre_bers {
        let mode = controller.weakest_sufficient(ber, controller.ber_target);
        let idx = FecMode::ALL.iter().position(|m| *m == mode).unwrap();
        let snr = invert_ber_to_snr_db(ber);
        chosen.push(ber.log10(), idx as f64);
        post.push(ber.log10(), mode.post_fec_ber(snr).log10());
        latency.push(ber.log10(), mode.added_latency().as_nanos_f64());
    }
    ExperimentResult {
        id: "e6",
        title: "adaptive FEC: codec choice, post-FEC BER and latency vs channel BER",
        series: vec![chosen, post, latency],
        rows: vec![(
            "FEC ladder".into(),
            "None -> FireCode -> RS(528,514) -> RS(544,514)".into(),
        )],
    }
}

/// **E7** — cross-validation of the event-driven switch model against the
/// cycle-level NetFPGA-SUME model.
pub fn e7_validation() -> ExperimentResult {
    let report = validate_against_des(&[64, 128, 256, 512, 1024, 1500]);
    let mut des = Series::new("des_model_latency_ns");
    let mut cyc = Series::new("cycle_model_latency_ns");
    for p in &report.points {
        des.push(p.frame_bytes as f64, p.des_latency_ns);
        cyc.push(p.frame_bytes as f64, p.cycle_latency_ns);
    }
    ExperimentResult {
        id: "e7",
        title: "small-scale DES switch model vs cycle-level NetFPGA SUME model",
        series: vec![des, cyc],
        rows: vec![
            (
                "worst relative error".into(),
                format!("{:.1}%", report.worst_relative_error * 100.0),
            ),
            (
                "validation (<=25% tolerance)".into(),
                if report.passes(0.25) {
                    "PASS".into()
                } else {
                    "FAIL".into()
                },
            ),
        ],
    }
}

/// **E8** — the high-speed bypass primitive: end-to-end latency of an N-hop
/// path as intermediate switches are replaced by PHY-level bypasses (the
/// [`AxisValue::BypassChain`](rackfabric_scenario::AxisValue) axis).
pub fn e8_bypass(hops: usize) -> ExperimentResult {
    let outcome = run_matrix(figures::e8_matrix(hops));
    let mut series = Series::new("end_to_end_latency_ns_vs_bypassed_nodes");
    for cell in &outcome.cells {
        let bypassed =
            figures::cell_spec(&outcome, cell.cell).map_or(0, |s| s.phy.bypassed_nodes) as f64;
        series.push(bypassed, cell.packet_latency.mean / 1e3);
    }
    let first = series.points().first().map(|&(_, y)| y).unwrap_or(0.0);
    let last = series.last_y().unwrap_or(0.0);
    ExperimentResult {
        id: "e8",
        title: "high-speed bypass: latency of an N-hop path vs number of bypassed switches",
        series: vec![series],
        rows: vec![
            ("path length (switch hops)".into(), format!("{hops}")),
            (
                "latency reduction with all intermediate nodes bypassed".into(),
                format!("{:.1}%", (1.0 - last / first.max(1e-9)) * 100.0),
            ),
        ],
    }
}

/// **E9** — the scenario-matrix engine: rack size × offered load × seeds,
/// static baseline against the adaptive fabric, resolved through the shared
/// result store and reduced to per-cell aggregates. The experiment's CSV is
/// the machine-readable companion of the printed series.
pub fn e9_scenario_matrix(sides: &[usize], loads: &[f64], seeds: usize) -> ExperimentResult {
    let outcome = run_matrix(figures::e9_matrix(
        sides,
        loads,
        &[Bytes::from_kib(256)],
        seeds,
    ));

    // Series: p99 latency vs load at the largest rack, baseline vs adaptive.
    let biggest = sides
        .last()
        .map(|&k| TopologySpec::grid(k, k, 2).name)
        .unwrap_or_default();
    let mut baseline_p99 = Series::new("baseline_p99_latency_ns");
    let mut adaptive_p99 = Series::new("adaptive_p99_latency_ns");
    for cell in &outcome.cells {
        if label(cell, "racks") != biggest {
            continue;
        }
        let load: f64 = label(cell, "load").parse().unwrap_or(f64::NAN);
        let p99_ns = cell.packet_latency.p99 / 1e3;
        match label(cell, "controller") {
            "baseline" => baseline_p99.push(load, p99_ns),
            _ => adaptive_p99.push(load, p99_ns),
        }
    }

    let failed = outcome
        .records
        .iter()
        .filter(|r| matches!(r.outcome, JobOutcome::Failed(_)))
        .count();
    ExperimentResult {
        id: "e9",
        title: "scenario matrix: rack x load x controller sweep with per-cell tail latency",
        series: vec![baseline_p99, adaptive_p99],
        rows: vec![
            ("cells".into(), format!("{}", outcome.cells.len())),
            ("jobs".into(), format!("{}", outcome.records.len())),
            ("failed jobs".into(), format!("{failed}")),
            (
                "aggregate csv (one row per cell)".into(),
                format!(
                    "\n{}",
                    rackfabric_scenario::export::cells_to_csv(&outcome.cells)
                ),
            ),
        ],
    }
}

/// Runs every experiment at the scale used for `EXPERIMENTS.md`, resolving
/// each simulation job through the shared result store: a warm store (e.g.
/// the second criterion sample of `cargo bench`) re-executes **nothing**.
pub fn run_all() -> Vec<ExperimentResult> {
    vec![
        fig1_latency_vs_hops(21),
        fig2_reconfiguration(64),
        e3_mapreduce_scaling(&[3, 4, 5, 6], 32),
        e4_power_vs_load(&[0.1, 0.25, 0.5, 0.75, 1.0]),
        e5_breakeven(),
        e6_adaptive_fec(),
        e7_validation(),
        e8_bypass(8),
        e9_scenario_matrix(&[3, 4], &[0.5, 1.0], 3),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shows_switching_dominating_media() {
        let r = fig1_latency_vs_hops(4);
        let media = &r.series[0];
        let switching = &r.series[1];
        assert_eq!(media.len(), 4);
        // At every switch count, switching latency exceeds media latency by a
        // large factor — the paper's core motivation.
        for (m, s) in media.points().iter().zip(switching.points()) {
            assert!(s.1 > 5.0 * m.1, "switching {s:?} must dwarf media {m:?}");
        }
        // Both grow with hop count.
        assert!(media.points()[3].1 > media.points()[0].1);
        assert!(switching.points()[3].1 > switching.points()[0].1);
        // The store-and-forward arm pays full serialization per hop.
        let store_fwd = &r.series[3];
        assert_eq!(store_fwd.len(), 4);
        for (ct, sf) in r.series[2].points().iter().zip(store_fwd.points()) {
            assert!(sf.1 > ct.1, "store-and-forward {sf:?} must exceed {ct:?}");
        }
    }

    #[test]
    fn e5_and_e6_are_cheap_and_consistent() {
        let e5 = e5_breakeven();
        assert_eq!(e5.series[0].len(), 10);
        let e6 = e6_adaptive_fec();
        // The chosen codec index is non-decreasing as the channel degrades.
        let idx: Vec<f64> = e6.series[0].points().iter().map(|&(_, y)| y).collect();
        assert!(idx.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn e7_validation_passes() {
        let r = e7_validation();
        assert!(r.rows.iter().any(|(_, v)| v == "PASS"));
    }

    #[test]
    fn e8_bypass_reduces_latency_monotonically() {
        let r = e8_bypass(4);
        let pts: Vec<f64> = r.series[0].points().iter().map(|&(_, y)| y).collect();
        assert_eq!(pts.len(), 4);
        assert!(
            pts.windows(2).all(|w| w[1] <= w[0] + 1e-9),
            "latency must not increase as more switches are bypassed: {pts:?}"
        );
        assert!(
            pts.last().unwrap() < &(pts[0] * 0.8),
            "full bypass saves >20%"
        );
    }

    #[test]
    fn e9_scenario_matrix_sweeps_and_aggregates() {
        let r = e9_scenario_matrix(&[2, 3], &[0.5], 2);
        // 2 racks x 1 load x 2 controllers x 1 buffer = 4 cells, x2 seeds.
        assert!(r.rows.iter().any(|(k, v)| k == "cells" && v == "4"));
        assert!(r.rows.iter().any(|(k, v)| k == "jobs" && v == "8"));
        assert!(r.rows.iter().any(|(k, v)| k == "failed jobs" && v == "0"));
        let csv = &r.rows.last().unwrap().1;
        assert_eq!(
            csv.trim_start_matches('\n').lines().count(),
            5,
            "header + 4 cells"
        );
        // The p99-vs-load series carry one point per load per controller.
        assert_eq!(r.series[0].len(), 1);
        assert_eq!(r.series[1].len(), 1);
    }

    #[test]
    fn render_produces_tables() {
        let r = e5_breakeven();
        let text = r.render();
        assert!(text.contains("== e5"));
        assert!(text.contains("min_worthwhile_flow_kib"));
    }
}
