//! Criterion bench regenerating experiment E5 (reconfiguration break-even).

use criterion::{criterion_group, criterion_main, Criterion};
use rackfabric_bench::*;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp_breakeven");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("exp_breakeven", |b| {
        b.iter(|| std::hint::black_box(e5_breakeven()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
