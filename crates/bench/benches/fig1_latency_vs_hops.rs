//! Criterion bench regenerating the paper's Figure 1 (media vs switching latency).

use criterion::{criterion_group, criterion_main, Criterion};
use rackfabric_bench::*;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_latency_vs_hops");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("fig1_latency_vs_hops", |b| {
        b.iter(|| std::hint::black_box(fig1_latency_vs_hops(8)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
