//! Criterion bench timing experiment E9 (the parallel scenario matrix) —
//! the throughput reference for the scenario engine itself.

use criterion::{criterion_group, criterion_main, Criterion};
use rackfabric_bench::*;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp_scenario");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));
    group.bench_function("exp_scenario", |b| {
        b.iter(|| std::hint::black_box(e9_scenario_matrix(&[2, 3], &[0.5, 1.0], 2)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
