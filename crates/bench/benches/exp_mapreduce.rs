//! Criterion bench regenerating experiment E3 (shuffle completion vs rack size).

use criterion::{criterion_group, criterion_main, Criterion};
use rackfabric_bench::*;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp_mapreduce");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("exp_mapreduce", |b| {
        b.iter(|| std::hint::black_box(e3_mapreduce_scaling(&[3, 4], 8)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
