//! # rackfabric-switch
//!
//! Packet switching models for the rack-scale fabric.
//!
//! The paper's Figure 1 argument is that *packet switching, not the medium,
//! dominates latency at rack scale*: a state-of-the-art layer-2 cut-through
//! switch adds hundreds of nanoseconds per hop while 2 m of fibre adds ~10 ns.
//! This crate provides the models that quantify that claim and that the
//! adaptive fabric then works around:
//!
//! * [`packet`] — packets, flows, and per-packet latency breakdowns.
//! * [`queue`] — egress-port queues with tail-drop and ECN marking, the
//!   source of queueing delay and congestion telemetry.
//! * [`model`] — cut-through and store-and-forward switch datapath models
//!   (per-hop latency), plus an iSLIP-style round-robin crossbar arbiter used
//!   by the cycle-level hardware model.
//! * [`nic`] — the host NIC injection path (serialization at the sender and
//!   an injection queue).
//! * [`train`] — packet trains: batches of back-to-back frames that move
//!   through the fabric with one event per link drain instead of one per
//!   packet, the event-collapsing core of the hot-path refactor.

pub mod model;
pub mod nic;
pub mod packet;
pub mod queue;
pub mod train;

pub use model::{CrossbarArbiter, SwitchKind, SwitchModel};
pub use nic::Nic;
pub use packet::{FlowId, LatencyBreakdown, Packet, PacketId};
pub use queue::{EgressQueue, EnqueueOutcome, TrainAdmission};
pub use train::{train_frames, Train};
