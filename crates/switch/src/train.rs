//! Packet trains: batched link transmission.
//!
//! Under load a flow emits long runs of back-to-back MTU frames whose
//! departure and arrival instants are fully determined by the egress queue's
//! serialization chain — simulating each frame with its own event buys no
//! fidelity and multiplies the event count. A [`Train`] groups the frames
//! that one injection (or one hop traversal) admits back-to-back, so the
//! simulation fires **one event per link drain** — sized by the link's rate
//! window — instead of one per packet. Per-packet latency accounting stays
//! exact: each packet's departure/arrival instants are computed analytically
//! by [`EgressQueue::enqueue_train`](crate::queue::EgressQueue::enqueue_train)
//! and carried on the packet itself ([`Packet::arrived_at`]).

use crate::packet::Packet;
use rackfabric_sim::time::SimDuration;
use rackfabric_sim::units::{BitRate, Bytes};
use rackfabric_topo::InternedRoute;
use std::sync::Arc;

/// A batch of same-flow packets moving together along one route. The train's
/// event fires when its **last** packet finishes arriving; earlier packets'
/// arrival instants are carried per packet.
#[derive(Debug, Clone)]
pub struct Train {
    /// The route every packet in the train follows (shared, interned).
    pub route: Arc<InternedRoute>,
    /// Index of the next node in `route.route.nodes` the train arrives at.
    pub hop_index: usize,
    /// The packets, in injection order.
    pub packets: Vec<Packet>,
}

impl Train {
    /// Number of packets in the train.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True if the train carries no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total bytes carried.
    pub fn bytes(&self) -> u64 {
        self.packets.iter().map(|p| p.size.as_u64()).sum()
    }
}

/// Maximum number of MTU frames one train may carry: the number of frames a
/// link at `rate` serialises within `window`, at least 1. This is the
/// event-collapsing factor of the batched drain.
pub fn train_frames(rate: BitRate, window: SimDuration, mtu: Bytes) -> u64 {
    if mtu.as_u64() == 0 {
        return 1;
    }
    (rate.bytes_in(window).as_u64() / mtu.as_u64()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, PacketId};
    use rackfabric_sim::time::SimTime;
    use rackfabric_topo::routing::Route;
    use rackfabric_topo::NodeId;

    #[test]
    fn train_frames_scales_with_rate_window() {
        let mtu = Bytes::new(1500);
        // 100 Gb/s for 1 µs = 12.5 kB = 8 MTUs.
        assert_eq!(
            train_frames(BitRate::from_gbps(100), SimDuration::from_micros(1), mtu),
            8
        );
        // A slow link still sends at least one frame per train.
        assert_eq!(
            train_frames(BitRate::from_gbps(1), SimDuration::from_nanos(10), mtu),
            1
        );
        assert_eq!(
            train_frames(BitRate::ZERO, SimDuration::from_micros(1), mtu),
            1
        );
    }

    #[test]
    fn train_accounting() {
        let route = Arc::new(InternedRoute {
            route: Route::trivial(NodeId(0)),
            links: Vec::new(),
        });
        let t = Train {
            route,
            hop_index: 0,
            packets: (0..3)
                .map(|i| {
                    Packet::new(
                        PacketId(i),
                        FlowId(0),
                        NodeId(0),
                        NodeId(1),
                        Bytes::new(1000),
                        SimTime::ZERO,
                    )
                })
                .collect(),
        };
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.bytes(), 3000);
    }
}
