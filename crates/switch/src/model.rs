//! Switch datapath models.
//!
//! Two forwarding disciplines are modelled:
//!
//! * **Cut-through** — the switch starts transmitting on the egress port as
//!   soon as the header has been received and the forwarding decision made.
//!   Per-hop latency is the pipeline delay plus the serialization of the
//!   header bytes only. This is the "state-of-the-art layer-2 cut-through
//!   switch" of the paper's Figure 1.
//! * **Store-and-forward** — the whole frame is received before forwarding,
//!   so the full serialization delay is paid again at every hop.
//!
//! Both are parameterised by a pipeline latency; the default of 400 ns for
//! cut-through is in the range published for commodity rack switches of the
//! paper's era (300–500 ns port-to-port).
//!
//! A round-robin [`CrossbarArbiter`] (a simplified single-iteration iSLIP) is
//! also provided; the event-driven fabric model uses egress queues directly,
//! but the cycle-level NetFPGA model and the unit tests exercise the arbiter.

use crate::packet::CUT_THROUGH_HEADER;
use rackfabric_phy::Link;
use rackfabric_sim::time::SimDuration;
use rackfabric_sim::units::{BitRate, Bytes};
use serde::{Deserialize, Serialize};

/// Forwarding discipline of a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SwitchKind {
    /// Forwarding starts once the header is in.
    #[default]
    CutThrough,
    /// The full frame is buffered before forwarding.
    StoreAndForward,
}

/// A per-hop switch latency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchModel {
    /// Forwarding discipline.
    pub kind: SwitchKind,
    /// Fixed pipeline latency (parsing, lookup, arbitration, SerDes).
    pub pipeline_latency: SimDuration,
}

impl Default for SwitchModel {
    fn default() -> Self {
        SwitchModel::cut_through()
    }
}

impl SwitchModel {
    /// A state-of-the-art cut-through rack switch (~400 ns port to port).
    pub fn cut_through() -> Self {
        SwitchModel {
            kind: SwitchKind::CutThrough,
            pipeline_latency: SimDuration::from_nanos(400),
        }
    }

    /// A store-and-forward switch with the same pipeline.
    pub fn store_and_forward() -> Self {
        SwitchModel {
            kind: SwitchKind::StoreAndForward,
            pipeline_latency: SimDuration::from_nanos(400),
        }
    }

    /// A cut-through model with an explicit pipeline latency.
    pub fn with_pipeline(pipeline_latency: SimDuration) -> Self {
        SwitchModel {
            kind: SwitchKind::CutThrough,
            pipeline_latency,
        }
    }

    /// The switching latency contributed by one traversal of this switch for
    /// a frame of `size` that will leave on `egress`. This is the latency in
    /// *addition* to the egress link's own serialization/propagation/FEC
    /// (which the caller charges separately), so:
    ///
    /// * cut-through pays the pipeline plus receiving the header,
    /// * store-and-forward pays the pipeline plus receiving the whole frame
    ///   at the egress link rate.
    pub fn traversal_latency(&self, size: Bytes, egress: &Link) -> SimDuration {
        self.traversal_latency_at(size, egress.capacity())
    }

    /// [`Self::traversal_latency`] against a raw egress capacity, for
    /// callers that cache link capacities in dense arrays instead of holding
    /// a [`Link`] reference on the hot path.
    pub fn traversal_latency_at(&self, size: Bytes, capacity: BitRate) -> SimDuration {
        match self.kind {
            SwitchKind::CutThrough => {
                let hdr = Bytes::new(size.as_u64().min(CUT_THROUGH_HEADER.as_u64()));
                self.pipeline_latency + capacity.serialization_delay(hdr)
            }
            SwitchKind::StoreAndForward => {
                self.pipeline_latency + capacity.serialization_delay(size)
            }
        }
    }
}

/// A single-iteration round-robin crossbar arbiter over virtual output
/// queues: each output grants one requesting input per arbitration round,
/// rotating its grant pointer for fairness; each input accepts at most one
/// grant per round, rotating its accept pointer.
#[derive(Debug, Clone)]
pub struct CrossbarArbiter {
    ports: usize,
    grant_pointer: Vec<usize>,
    accept_pointer: Vec<usize>,
}

impl CrossbarArbiter {
    /// Creates an arbiter for a `ports x ports` crossbar.
    pub fn new(ports: usize) -> Self {
        CrossbarArbiter {
            ports,
            grant_pointer: vec![0; ports],
            accept_pointer: vec![0; ports],
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Runs one arbitration round. `requests[input][output]` is true when the
    /// input's VOQ toward that output is non-empty. Returns `(input, output)`
    /// matches; each input and each output appears at most once.
    pub fn arbitrate(&mut self, requests: &[Vec<bool>]) -> Vec<(usize, usize)> {
        assert_eq!(requests.len(), self.ports, "request matrix has wrong shape");
        // Grant phase: every output picks one requesting input, round robin
        // from its pointer.
        let mut grants: Vec<Option<usize>> = vec![None; self.ports]; // per output -> input
        for (output, grant) in grants.iter_mut().enumerate() {
            for k in 0..self.ports {
                let input = (self.grant_pointer[output] + k) % self.ports;
                if requests[input].get(output).copied().unwrap_or(false) {
                    *grant = Some(input);
                    break;
                }
            }
        }
        // Accept phase: every input accepts one granting output, round robin.
        let mut matches = Vec::new();
        let mut input_taken = vec![false; self.ports];
        for (input, taken) in input_taken.iter_mut().enumerate() {
            for k in 0..self.ports {
                let output = (self.accept_pointer[input] + k) % self.ports;
                if grants[output] == Some(input) && !*taken {
                    matches.push((input, output));
                    *taken = true;
                    // Pointers advance past the matched peer (iSLIP rule).
                    self.grant_pointer[output] = (input + 1) % self.ports;
                    self.accept_pointer[input] = (output + 1) % self.ports;
                    break;
                }
            }
        }
        matches.sort_unstable();
        matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rackfabric_phy::link::LinkId;
    use rackfabric_phy::media::Media;
    use rackfabric_sim::units::{BitRate, Length};

    fn link_100g() -> Link {
        Link::new(
            LinkId(0),
            0,
            1,
            Media::optical_fiber(),
            Length::from_m(2),
            4,
            BitRate::from_gbps(25),
            0,
        )
    }

    #[test]
    fn cut_through_latency_is_independent_of_frame_size() {
        let m = SwitchModel::cut_through();
        let link = link_100g();
        let small = m.traversal_latency(Bytes::new(64), &link);
        let large = m.traversal_latency(Bytes::new(1500), &link);
        assert_eq!(small, large, "cut-through only waits for the header");
        // 400 ns pipeline + 64 B @ 100G (5.12 ns).
        let ns = large.as_nanos_f64();
        assert!((404.0..407.0).contains(&ns), "per-hop latency was {ns} ns");
    }

    #[test]
    fn store_and_forward_pays_full_serialization_per_hop() {
        let ct = SwitchModel::cut_through();
        let sf = SwitchModel::store_and_forward();
        let link = link_100g();
        let frame = Bytes::new(1500);
        assert!(sf.traversal_latency(frame, &link) > ct.traversal_latency(frame, &link));
        // The difference is the serialization of (frame - header).
        let diff = sf.traversal_latency(frame, &link) - ct.traversal_latency(frame, &link);
        let expected = link.capacity().serialization_delay(Bytes::new(1500 - 64));
        assert_eq!(diff, expected);
    }

    #[test]
    fn tiny_frames_never_pay_more_than_their_size() {
        let m = SwitchModel::cut_through();
        let link = link_100g();
        let tiny = m.traversal_latency(Bytes::new(32), &link);
        let header = m.traversal_latency(Bytes::new(64), &link);
        assert!(tiny < header);
    }

    #[test]
    fn switching_dominates_media_at_rack_scale() {
        // The core claim behind Figure 1: one switch hop costs far more than
        // 2 m of fibre.
        let m = SwitchModel::cut_through();
        let link = link_100g();
        let switch_hop = m.traversal_latency(Bytes::new(1500), &link);
        let media_hop = link.propagation_delay();
        assert!(switch_hop.as_nanos_f64() > 20.0 * media_hop.as_nanos_f64());
    }

    #[test]
    fn arbiter_matches_non_conflicting_requests_in_one_round() {
        let mut arb = CrossbarArbiter::new(4);
        // Input i wants output (i+1)%4: a perfect permutation.
        let requests: Vec<Vec<bool>> = (0..4)
            .map(|i| (0..4).map(|o| o == (i + 1) % 4).collect())
            .collect();
        let matches = arb.arbitrate(&requests);
        assert_eq!(matches.len(), 4);
        for (i, o) in matches {
            assert_eq!(o, (i + 1) % 4);
        }
    }

    #[test]
    fn arbiter_resolves_output_contention_fairly_over_rounds() {
        let mut arb = CrossbarArbiter::new(4);
        // Inputs 0 and 1 both want output 0 only.
        let requests: Vec<Vec<bool>> = vec![
            vec![true, false, false, false],
            vec![true, false, false, false],
            vec![false, false, false, false],
            vec![false, false, false, false],
        ];
        let r1 = arb.arbitrate(&requests);
        assert_eq!(r1.len(), 1, "only one grant for a contended output");
        let winner1 = r1[0].0;
        let r2 = arb.arbitrate(&requests);
        let winner2 = r2[0].0;
        assert_ne!(winner1, winner2, "round robin alternates the winner");
    }

    #[test]
    fn arbiter_with_no_requests_matches_nothing() {
        let mut arb = CrossbarArbiter::new(3);
        let requests = vec![vec![false; 3]; 3];
        assert!(arb.arbitrate(&requests).is_empty());
    }

    #[test]
    #[should_panic(expected = "wrong shape")]
    fn arbiter_rejects_malformed_request_matrix() {
        let mut arb = CrossbarArbiter::new(3);
        let requests = vec![vec![false; 3]; 2];
        arb.arbitrate(&requests);
    }
}
