//! Host NIC injection path.
//!
//! Every node injects packets through a NIC with its own egress queue toward
//! its first-hop link. The NIC also tracks per-host counters used by the
//! workload layer to decide when a flow has finished sending.

use crate::packet::{FlowId, Packet, PacketId};
use crate::queue::{EgressQueue, EnqueueOutcome};
use rackfabric_sim::time::SimTime;
use rackfabric_sim::units::{BitRate, Bytes};
use rackfabric_topo::NodeId;
use serde::{Deserialize, Serialize};

/// A host network interface with an injection queue.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Nic {
    /// The node this NIC belongs to.
    pub node: NodeId,
    /// Injection queue in front of the first-hop link.
    pub queue: EgressQueue,
    /// Packets injected.
    pub packets_sent: u64,
    /// Packets received (delivered to this node).
    pub packets_received: u64,
    /// Bytes received.
    pub bytes_received: u64,
    next_packet_id: u64,
}

impl Nic {
    /// Creates a NIC with `buffer` bytes of injection queue.
    pub fn new(node: NodeId, buffer: Bytes) -> Self {
        Nic {
            node,
            queue: EgressQueue::new(buffer),
            packets_sent: 0,
            packets_received: 0,
            bytes_received: 0,
            next_packet_id: 0,
        }
    }

    /// Allocates the next node-scoped packet id (node index in the high
    /// bits, per-node sequence in the low 40).
    fn alloc_packet_id(&mut self) -> PacketId {
        let id = PacketId((self.node.as_u32() as u64) << 40 | self.next_packet_id);
        self.next_packet_id += 1;
        id
    }

    /// Builds the next packet of `flow` toward `dst` and offers it to the
    /// injection queue at `rate`. Returns the packet and the enqueue outcome
    /// (the packet is returned even when dropped, so the caller can decide to
    /// retry).
    pub fn inject(
        &mut self,
        now: SimTime,
        flow: FlowId,
        dst: NodeId,
        size: Bytes,
        rate: BitRate,
    ) -> (Packet, EnqueueOutcome) {
        let id = self.alloc_packet_id();
        let packet = Packet::new(id, flow, self.node, dst, size, now);
        let outcome = self.queue.enqueue(now, size, rate);
        if matches!(outcome, EnqueueOutcome::Accepted { .. }) {
            self.packets_sent += 1;
        }
        (packet, outcome)
    }

    /// Records delivery of `packet` to this node.
    pub fn deliver(&mut self, packet: &Packet) {
        debug_assert_eq!(packet.dst, self.node, "packet delivered to the wrong NIC");
        self.packets_received += 1;
        self.bytes_received += packet.size.as_u64();
    }

    /// Builds the next train of `flow` toward `dst` — one packet per entry
    /// of `sizes`, with node-scoped ids — without offering it to a queue.
    /// The fabric admits trains to the egress port of the route's first link
    /// (an arena-indexed queue this NIC does not own), so building and
    /// admission are separate steps; [`Nic::record_sent`] closes the loop
    /// once admission is known.
    pub fn build_train(
        &mut self,
        now: SimTime,
        flow: FlowId,
        dst: NodeId,
        sizes: &[Bytes],
    ) -> Vec<Packet> {
        sizes
            .iter()
            .map(|&size| {
                let id = self.alloc_packet_id();
                Packet::new(id, flow, self.node, dst, size, now)
            })
            .collect()
    }

    /// Counts `n` packets as injected (train admission happens at the
    /// arena's port queue, outside the NIC).
    pub fn record_sent(&mut self, n: u64) {
        self.packets_sent += n;
    }

    /// Records delivery of a whole train's packets to this node.
    pub fn deliver_train(&mut self, packets: &[Packet]) {
        for packet in packets {
            self.deliver(packet);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injection_assigns_unique_ids_scoped_to_the_node() {
        let mut nic = Nic::new(NodeId(3), Bytes::from_kib(256));
        let (p1, o1) = nic.inject(
            SimTime::ZERO,
            FlowId(0),
            NodeId(7),
            Bytes::new(1500),
            BitRate::from_gbps(100),
        );
        let (p2, _) = nic.inject(
            SimTime::ZERO,
            FlowId(0),
            NodeId(7),
            Bytes::new(1500),
            BitRate::from_gbps(100),
        );
        assert_ne!(p1.id, p2.id);
        assert!(matches!(o1, EnqueueOutcome::Accepted { .. }));
        assert_eq!(nic.packets_sent, 2);
        assert_eq!(p1.src, NodeId(3));
        assert_eq!(p1.dst, NodeId(7));
    }

    #[test]
    fn ids_from_different_nodes_do_not_collide() {
        let mut a = Nic::new(NodeId(1), Bytes::from_kib(64));
        let mut b = Nic::new(NodeId(2), Bytes::from_kib(64));
        let (pa, _) = a.inject(
            SimTime::ZERO,
            FlowId(0),
            NodeId(9),
            Bytes::new(64),
            BitRate::from_gbps(100),
        );
        let (pb, _) = b.inject(
            SimTime::ZERO,
            FlowId(0),
            NodeId(9),
            Bytes::new(64),
            BitRate::from_gbps(100),
        );
        assert_ne!(pa.id, pb.id);
    }

    #[test]
    fn dropped_injections_do_not_count_as_sent() {
        let mut nic = Nic::new(NodeId(0), Bytes::new(1000));
        // First fits, second overflows the 1000-byte buffer.
        let (_, o1) = nic.inject(
            SimTime::ZERO,
            FlowId(0),
            NodeId(1),
            Bytes::new(900),
            BitRate::from_gbps(10),
        );
        let (_, o2) = nic.inject(
            SimTime::ZERO,
            FlowId(0),
            NodeId(1),
            Bytes::new(900),
            BitRate::from_gbps(10),
        );
        assert!(matches!(o1, EnqueueOutcome::Accepted { .. }));
        assert_eq!(o2, EnqueueOutcome::Dropped);
        assert_eq!(nic.packets_sent, 1);
    }

    #[test]
    fn delivery_counters() {
        let mut src = Nic::new(NodeId(0), Bytes::from_kib(64));
        let mut dst = Nic::new(NodeId(5), Bytes::from_kib(64));
        let (p, _) = src.inject(
            SimTime::ZERO,
            FlowId(9),
            NodeId(5),
            Bytes::new(1200),
            BitRate::from_gbps(100),
        );
        dst.deliver(&p);
        assert_eq!(dst.packets_received, 1);
        assert_eq!(dst.bytes_received, 1200);
    }
}
