//! Packets, flows and latency accounting.

use rackfabric_sim::time::{SimDuration, SimTime};
use rackfabric_sim::units::Bytes;
use rackfabric_topo::NodeId;
use serde::{Deserialize, Serialize};

/// Identifier of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PacketId(pub u64);

/// Identifier of a flow (a transfer between one source and one destination).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId(pub u64);

/// Standard Ethernet maximum transmission unit used throughout the
/// experiments.
pub const MTU: Bytes = Bytes::new(1500);
/// Minimum Ethernet frame.
pub const MIN_FRAME: Bytes = Bytes::new(64);
/// Bytes of header a cut-through switch must receive before it can make a
/// forwarding decision (DMAC + SMAC + EtherType + a shim).
pub const CUT_THROUGH_HEADER: Bytes = Bytes::new(64);

/// A packet in flight through the fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique id.
    pub id: PacketId,
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Frame size on the wire.
    pub size: Bytes,
    /// Time the packet was created at the sender.
    pub created_at: SimTime,
    /// Instant the packet finishes arriving at the next node. Packets travel
    /// in trains that fire one event per batch, so each packet's own arrival
    /// is tracked analytically here rather than by a dedicated event.
    pub arrived_at: SimTime,
    /// Accumulated latency breakdown.
    pub breakdown: LatencyBreakdown,
}

impl Packet {
    /// Creates a packet at `created_at`.
    pub fn new(
        id: PacketId,
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        size: Bytes,
        created_at: SimTime,
    ) -> Self {
        Packet {
            id,
            flow,
            src,
            dst,
            size,
            created_at,
            arrived_at: created_at,
            breakdown: LatencyBreakdown::default(),
        }
    }

    /// Total sojourn time if the packet is delivered at `now`.
    pub fn latency_at(&self, now: SimTime) -> SimDuration {
        now.saturating_since(self.created_at)
    }
}

/// Where a delivered packet's latency was spent, the decomposition plotted in
/// the paper's Figure 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Serialization onto links (sender NIC plus store-and-forward hops).
    pub serialization: SimDuration,
    /// Propagation through the medium.
    pub propagation: SimDuration,
    /// Switch pipeline traversals (the "switching logic" the paper targets).
    pub switching: SimDuration,
    /// Waiting in egress queues behind other packets.
    pub queueing: SimDuration,
    /// FEC encode/decode latency.
    pub fec: SimDuration,
    /// Bypass cross-connect retiming.
    pub bypass: SimDuration,
    /// Number of switch hops traversed (bypassed nodes are not counted).
    pub switch_hops: u32,
    /// Number of bypassed nodes.
    pub bypassed_hops: u32,
}

impl LatencyBreakdown {
    /// Sum of every component.
    pub fn total(&self) -> SimDuration {
        self.serialization
            + self.propagation
            + self.switching
            + self.queueing
            + self.fec
            + self.bypass
    }

    /// Fraction of the total spent in switching logic (0 when total is 0).
    pub fn switching_fraction(&self) -> f64 {
        let total = self.total();
        if total.is_zero() {
            0.0
        } else {
            self.switching.ratio(total)
        }
    }

    /// Fraction of the total spent propagating through the medium (0 when
    /// total is 0) — the media share figure 1 compares switching against.
    pub fn propagation_fraction(&self) -> f64 {
        let total = self.total();
        if total.is_zero() {
            0.0
        } else {
            self.propagation.ratio(total)
        }
    }

    /// Merges another breakdown into this one (used to aggregate per-flow).
    pub fn accumulate(&mut self, other: &LatencyBreakdown) {
        self.serialization += other.serialization;
        self.propagation += other.propagation;
        self.switching += other.switching;
        self.queueing += other.queueing;
        self.fec += other.fec;
        self.bypass += other.bypass;
        self.switch_hops += other.switch_hops;
        self.bypassed_hops += other.bypassed_hops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_latency_accounting() {
        let p = Packet::new(
            PacketId(1),
            FlowId(2),
            NodeId(0),
            NodeId(3),
            MTU,
            SimTime::from_nanos(100),
        );
        assert_eq!(
            p.latency_at(SimTime::from_nanos(600)),
            SimDuration::from_nanos(500)
        );
        // Delivery "before" creation saturates instead of panicking.
        assert_eq!(p.latency_at(SimTime::from_nanos(50)), SimDuration::ZERO);
        assert_eq!(p.arrived_at, SimTime::from_nanos(100));
    }

    #[test]
    fn breakdown_totals_and_fractions() {
        let mut b = LatencyBreakdown {
            serialization: SimDuration::from_nanos(120),
            propagation: SimDuration::from_nanos(10),
            switching: SimDuration::from_nanos(400),
            queueing: SimDuration::from_nanos(70),
            fec: SimDuration::ZERO,
            bypass: SimDuration::ZERO,
            switch_hops: 1,
            bypassed_hops: 0,
        };
        assert_eq!(b.total(), SimDuration::from_nanos(600));
        assert!((b.switching_fraction() - 400.0 / 600.0).abs() < 1e-9);
        let other = b;
        b.accumulate(&other);
        assert_eq!(b.total(), SimDuration::from_nanos(1200));
        assert_eq!(b.switch_hops, 2);
    }

    #[test]
    fn empty_breakdown_fraction_is_zero() {
        assert_eq!(LatencyBreakdown::default().switching_fraction(), 0.0);
    }

    #[test]
    fn frame_constants_are_ordered() {
        assert!(MIN_FRAME < MTU);
        assert!(CUT_THROUGH_HEADER <= MTU);
    }
}
