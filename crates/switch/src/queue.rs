//! Egress-port queues.
//!
//! Each directed use of a link has an egress queue at its transmitting node.
//! The queue serialises packets at the link's effective rate, tail-drops when
//! a configured buffer is exceeded, marks ECN above a threshold, and exposes
//! occupancy telemetry — the congestion signal the Closed Ring Control prices
//! links by.

use crate::packet::Packet;
use rackfabric_sim::stats::TimeWeighted;
use rackfabric_sim::time::{SimDuration, SimTime};
use rackfabric_sim::units::{BitRate, Bytes};
use serde::{Deserialize, Serialize};

/// The result of offering a packet to an egress queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnqueueOutcome {
    /// The packet was accepted; it will finish transmitting at the instant
    /// given, after waiting `queueing` behind earlier packets and taking
    /// `serialization` on the wire.
    Accepted {
        /// Time spent waiting behind earlier packets.
        queueing: SimDuration,
        /// Serialization time of this packet at the link rate.
        serialization: SimDuration,
        /// Absolute instant the last bit leaves the port.
        departs_at: SimTime,
        /// True if the queue was above its ECN threshold on arrival.
        ecn_marked: bool,
    },
    /// The buffer was full; the packet is dropped.
    Dropped,
}

/// The result of offering a packet train to an egress queue via
/// [`EgressQueue::enqueue_train`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainAdmission {
    /// Packets admitted — always a prefix of the offered train (the first
    /// tail-drop stops the batch; the source retries the remainder).
    pub accepted: usize,
    /// True if the packet following the accepted prefix was tail-dropped
    /// (counted in [`EgressQueue::dropped`]).
    pub dropped: bool,
    /// Departure instant of the last accepted packet (only meaningful when
    /// `accepted > 0`).
    pub last_departs_at: SimTime,
    /// Arrival instant of the last accepted packet at the far end of the
    /// link (departure plus propagation and FEC).
    pub last_arrives_at: SimTime,
}

/// An egress port queue with tail-drop and ECN marking.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EgressQueue {
    /// Buffer size in bytes (tail drop beyond this).
    pub buffer: Bytes,
    /// ECN marking threshold in bytes.
    pub ecn_threshold: Bytes,
    busy_until: SimTime,
    queued_bytes: u64,
    last_drain: SimTime,
    drain_rate: BitRate,
    occupancy: TimeWeighted,
    /// Packets accepted.
    pub accepted: u64,
    /// Packets dropped at the tail.
    pub dropped: u64,
    /// Packets ECN-marked.
    pub marked: u64,
    /// Bytes transmitted.
    pub bytes_out: u64,
}

impl EgressQueue {
    /// Creates a queue with `buffer` bytes of storage; ECN marks above half
    /// the buffer.
    pub fn new(buffer: Bytes) -> Self {
        EgressQueue {
            buffer,
            ecn_threshold: Bytes::new(buffer.as_u64() / 2),
            busy_until: SimTime::ZERO,
            queued_bytes: 0,
            last_drain: SimTime::ZERO,
            drain_rate: BitRate::ZERO,
            occupancy: TimeWeighted::new(),
            accepted: 0,
            dropped: 0,
            marked: 0,
            bytes_out: 0,
        }
    }

    /// Bytes currently waiting or in transmission at `now` (drains as time
    /// advances past previously computed departures).
    pub fn backlog_at(&self, now: SimTime) -> u64 {
        if self.drain_rate.is_zero() || now <= self.last_drain {
            return self.queued_bytes;
        }
        let drained = self
            .drain_rate
            .bytes_in(now.saturating_since(self.last_drain));
        self.queued_bytes.saturating_sub(drained.as_u64())
    }

    /// Offers a packet of `size` to the queue at `now`, transmitting at
    /// `rate` (the link's current effective capacity). A zero rate (link down
    /// or reconfiguring) drops the packet.
    ///
    /// `now` may lag the queue's accounting high-water mark: train events
    /// fire at their *last* frame's arrival, so trains converging from
    /// different upstream hops can offer frames whose readiness instants
    /// interleave out of order. The drain model only ever advances (never
    /// rewinds `last_drain`, which would double-drain the overlap), while
    /// queueing/departure for the packet itself are still measured from its
    /// own `now` through the monotone `busy_until` chain.
    pub fn enqueue(&mut self, now: SimTime, size: Bytes, rate: BitRate) -> EnqueueOutcome {
        if rate.is_zero() {
            self.dropped += 1;
            return EnqueueOutcome::Dropped;
        }
        // Advance the drain model to now (monotonically).
        let backlog = self.backlog_at(now);
        self.queued_bytes = backlog;
        self.last_drain = self.last_drain.max(now);
        self.drain_rate = rate;

        if backlog + size.as_u64() > self.buffer.as_u64() {
            self.dropped += 1;
            self.occupancy.set(self.last_drain, backlog as f64);
            return EnqueueOutcome::Dropped;
        }

        let ecn_marked = backlog >= self.ecn_threshold.as_u64();
        if ecn_marked {
            self.marked += 1;
        }

        let serialization = rate.serialization_delay(size);
        let start = if self.busy_until > now {
            self.busy_until
        } else {
            now
        };
        let queueing = start.saturating_since(now);
        let departs_at = start + serialization;
        self.busy_until = departs_at;
        self.queued_bytes += size.as_u64();
        self.accepted += 1;
        self.bytes_out += size.as_u64();
        self.occupancy
            .set(self.last_drain, self.queued_bytes as f64);

        EnqueueOutcome::Accepted {
            queueing,
            serialization,
            departs_at,
            ecn_marked,
        }
    }

    /// Offers a train of packets back-to-back, each at its **own** readiness
    /// instant — the packet's current [`Packet::arrived_at`] (callers add any
    /// switch traversal into it first). Pipelining across hops is preserved
    /// exactly: a frame that physically arrived earlier starts its next
    /// serialization earlier, even though the train fires a single event at
    /// its last frame's arrival. Each accepted packet's latency breakdown is
    /// updated and its `arrived_at` becomes its departure plus `propagation`
    /// and `fec`. Admission stops at the first tail-drop: the dropped packet
    /// is counted and the rest of the train is left untouched for the source
    /// to retry. When `charge_serialization` is false the serialization
    /// delay still shapes departures but is not added to the breakdown
    /// (forwarding hops charge only queueing, matching the per-packet path).
    pub fn enqueue_train(
        &mut self,
        packets: &mut [Packet],
        rate: BitRate,
        propagation: SimDuration,
        fec: SimDuration,
        charge_serialization: bool,
    ) -> TrainAdmission {
        let mut admission = TrainAdmission {
            accepted: 0,
            dropped: false,
            last_departs_at: SimTime::ZERO,
            last_arrives_at: SimTime::ZERO,
        };
        for packet in packets.iter_mut() {
            match self.enqueue(packet.arrived_at, packet.size, rate) {
                EnqueueOutcome::Accepted {
                    queueing,
                    serialization,
                    departs_at,
                    ..
                } => {
                    packet.breakdown.queueing += queueing;
                    if charge_serialization {
                        packet.breakdown.serialization += serialization;
                    }
                    packet.breakdown.propagation += propagation;
                    packet.breakdown.fec += fec;
                    packet.arrived_at = departs_at + propagation + fec;
                    admission.accepted += 1;
                    admission.last_departs_at = departs_at;
                    admission.last_arrives_at = packet.arrived_at;
                }
                EnqueueOutcome::Dropped => {
                    admission.dropped = true;
                    break;
                }
            }
        }
        admission
    }

    /// Mean queue occupancy in bytes over the observation window ending at
    /// `now`.
    pub fn mean_occupancy(&mut self, now: SimTime) -> f64 {
        self.occupancy.mean_until(now)
    }

    /// Peak occupancy in bytes.
    pub fn peak_occupancy(&self) -> f64 {
        self.occupancy.max()
    }

    /// Utilization of the port over `[window_start, now]`: transmitted bytes
    /// relative to what the rate could have carried.
    pub fn utilization(&self, window_start: SimTime, now: SimTime, rate: BitRate) -> f64 {
        let capacity = rate.bytes_in(now.saturating_since(window_start)).as_u64();
        if capacity == 0 {
            0.0
        } else {
            self.bytes_out as f64 / capacity as f64
        }
    }

    /// Drop probability observed so far.
    pub fn drop_rate(&self) -> f64 {
        let offered = self.accepted + self.dropped;
        if offered == 0 {
            0.0
        } else {
            self.dropped as f64 / offered as f64
        }
    }

    /// Resets byte/packet counters (not the drain state); used when a
    /// telemetry epoch closes.
    pub fn reset_counters(&mut self) {
        self.accepted = 0;
        self.dropped = 0;
        self.marked = 0;
        self.bytes_out = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GBPS100: BitRate = BitRate::from_gbps(100);

    #[test]
    fn empty_queue_has_no_queueing_delay() {
        let mut q = EgressQueue::new(Bytes::from_kib(256));
        let out = q.enqueue(SimTime::from_micros(1), Bytes::new(1500), GBPS100);
        match out {
            EnqueueOutcome::Accepted {
                queueing,
                serialization,
                departs_at,
                ecn_marked,
            } => {
                assert_eq!(queueing, SimDuration::ZERO);
                assert_eq!(serialization.as_picos(), 120_000);
                assert_eq!(departs_at, SimTime::from_micros(1) + serialization);
                assert!(!ecn_marked);
            }
            EnqueueOutcome::Dropped => panic!("must accept"),
        }
    }

    #[test]
    fn back_to_back_packets_queue_behind_each_other() {
        let mut q = EgressQueue::new(Bytes::from_kib(256));
        let t = SimTime::from_micros(1);
        let first = q.enqueue(t, Bytes::new(1500), GBPS100);
        let second = q.enqueue(t, Bytes::new(1500), GBPS100);
        let (
            EnqueueOutcome::Accepted { departs_at: d1, .. },
            EnqueueOutcome::Accepted {
                queueing: q2,
                departs_at: d2,
                ..
            },
        ) = (first, second)
        else {
            panic!("both must be accepted");
        };
        assert_eq!(q2, SimDuration::from_nanos(120));
        assert_eq!(d2, d1 + SimDuration::from_nanos(120));
    }

    #[test]
    fn queue_drains_when_time_passes() {
        let mut q = EgressQueue::new(Bytes::from_kib(64));
        let t0 = SimTime::from_micros(1);
        q.enqueue(t0, Bytes::new(1500), GBPS100);
        assert!(q.backlog_at(t0) > 0);
        // 1 ms later everything has long drained.
        assert_eq!(q.backlog_at(SimTime::from_millis(2)), 0);
        let out = q.enqueue(SimTime::from_millis(2), Bytes::new(1500), GBPS100);
        assert!(matches!(out, EnqueueOutcome::Accepted { queueing, .. } if queueing.is_zero()));
    }

    #[test]
    fn overflow_drops_and_counts() {
        // Tiny 3 kB buffer fills after two MTUs.
        let mut q = EgressQueue::new(Bytes::new(3000));
        let t = SimTime::from_micros(1);
        assert!(matches!(
            q.enqueue(t, Bytes::new(1500), GBPS100),
            EnqueueOutcome::Accepted { .. }
        ));
        assert!(matches!(
            q.enqueue(t, Bytes::new(1500), GBPS100),
            EnqueueOutcome::Accepted { .. }
        ));
        assert_eq!(
            q.enqueue(t, Bytes::new(1500), GBPS100),
            EnqueueOutcome::Dropped
        );
        assert_eq!(q.accepted, 2);
        assert_eq!(q.dropped, 1);
        assert!((q.drop_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn ecn_marks_above_threshold() {
        let mut q = EgressQueue::new(Bytes::new(10_000));
        assert_eq!(q.ecn_threshold, Bytes::new(5_000));
        let t = SimTime::from_micros(1);
        // Fill past the threshold.
        for _ in 0..4 {
            q.enqueue(t, Bytes::new(1500), GBPS100);
        }
        // Backlog is now 6000 >= 5000, so the next packet is marked.
        let out = q.enqueue(t, Bytes::new(1500), GBPS100);
        assert!(matches!(
            out,
            EnqueueOutcome::Accepted {
                ecn_marked: true,
                ..
            }
        ));
        assert_eq!(q.marked, 1);
    }

    /// Regression test: trains converging from different upstream hops can
    /// offer frames whose readiness instants go *backwards* relative to the
    /// port's accounting high-water mark. Rewinding `last_drain` would
    /// double-drain the overlap window and undercount backlog (missing
    /// tail-drops and ECN marks).
    #[test]
    fn out_of_order_enqueues_do_not_rewind_the_drain_model() {
        let mut q = EgressQueue::new(Bytes::new(3200));
        let t = |ns: u64| SimTime::from_nanos(ns);
        // Two MTUs at t=1000 ns: backlog 3000 B, drain mark at 1000 ns.
        q.enqueue(t(1000), Bytes::new(1500), GBPS100);
        q.enqueue(t(1000), Bytes::new(1500), GBPS100);
        // A converging train's frame ready at t=960 ns (before the mark).
        assert!(matches!(
            q.enqueue(t(960), Bytes::new(64), GBPS100),
            EnqueueOutcome::Accepted { .. }
        ));
        // At t=1010 ns only 10 ns have drained past the mark (125 B at
        // 100 Gb/s): 3064 - 125 + 500 > 3200 must tail-drop. A rewound
        // drain mark would fabricate 50 ns of drainage and accept it.
        assert_eq!(
            q.enqueue(t(1010), Bytes::new(500), GBPS100),
            EnqueueOutcome::Dropped,
            "rewound drain model under-counts backlog"
        );
    }

    #[test]
    fn train_enqueue_matches_sequential_enqueues() {
        use crate::packet::{FlowId, PacketId};
        use rackfabric_topo::NodeId;
        let t = SimTime::from_micros(1);
        let prop = SimDuration::from_nanos(10);
        let fec = SimDuration::from_nanos(100);

        // Reference: three sequential per-packet enqueues.
        let mut seq = EgressQueue::new(Bytes::from_kib(256));
        let mut reference = Vec::new();
        for _ in 0..3 {
            if let EnqueueOutcome::Accepted { departs_at, .. } =
                seq.enqueue(t, Bytes::new(1500), GBPS100)
            {
                reference.push(departs_at + prop + fec);
            }
        }

        // Batched: one train of three packets.
        let mut batched = EgressQueue::new(Bytes::from_kib(256));
        let mut packets: Vec<Packet> = (0..3)
            .map(|i| {
                Packet::new(
                    PacketId(i),
                    FlowId(0),
                    NodeId(0),
                    NodeId(1),
                    Bytes::new(1500),
                    t,
                )
            })
            .collect();
        let admission = batched.enqueue_train(&mut packets, GBPS100, prop, fec, true);
        assert_eq!(admission.accepted, 3);
        assert!(!admission.dropped);
        let arrivals: Vec<SimTime> = packets.iter().map(|p| p.arrived_at).collect();
        assert_eq!(arrivals, reference, "per-packet arrivals must be exact");
        assert_eq!(admission.last_arrives_at, *reference.last().unwrap());
        assert_eq!(batched.accepted, seq.accepted);
        assert_eq!(batched.bytes_out, seq.bytes_out);
        // Breakdown accounting: the second packet queued behind the first.
        assert!(packets[1].breakdown.queueing > SimDuration::ZERO);
        assert_eq!(packets[1].breakdown.propagation, prop);
        assert_eq!(packets[1].breakdown.fec, fec);
        assert!(packets[1].breakdown.serialization > SimDuration::ZERO);
    }

    #[test]
    fn train_enqueue_stops_at_first_drop() {
        use crate::packet::{FlowId, PacketId};
        use rackfabric_topo::NodeId;
        // 3 kB buffer: two MTUs fit, the third tail-drops, the fourth is
        // left untouched for retry.
        let mut q = EgressQueue::new(Bytes::new(3000));
        let t = SimTime::from_micros(1);
        let mut packets: Vec<Packet> = (0..4)
            .map(|i| {
                Packet::new(
                    PacketId(i),
                    FlowId(0),
                    NodeId(0),
                    NodeId(1),
                    Bytes::new(1500),
                    t,
                )
            })
            .collect();
        let admission = q.enqueue_train(
            &mut packets,
            GBPS100,
            SimDuration::ZERO,
            SimDuration::ZERO,
            true,
        );
        assert_eq!(admission.accepted, 2);
        assert!(admission.dropped);
        assert_eq!(q.accepted, 2);
        assert_eq!(q.dropped, 1, "only the first overflow is counted");
        // The untouched tail packet kept its pristine breakdown.
        assert_eq!(packets[3].breakdown.queueing, SimDuration::ZERO);
        assert_eq!(packets[3].arrived_at, t);
    }

    #[test]
    fn zero_rate_drops() {
        let mut q = EgressQueue::new(Bytes::from_kib(64));
        assert_eq!(
            q.enqueue(SimTime::ZERO, Bytes::new(100), BitRate::ZERO),
            EnqueueOutcome::Dropped
        );
    }

    #[test]
    fn utilization_and_occupancy_telemetry() {
        let mut q = EgressQueue::new(Bytes::from_kib(256));
        let start = SimTime::ZERO;
        let mut now = start;
        for _ in 0..100 {
            q.enqueue(now, Bytes::new(1500), GBPS100);
            now += SimDuration::from_nanos(240); // offered at 50% load
        }
        let util = q.utilization(start, now, GBPS100);
        assert!(
            (0.4..0.7).contains(&util),
            "expected ~0.5 utilization, got {util}"
        );
        assert!(q.mean_occupancy(now) >= 0.0);
        assert!(q.peak_occupancy() >= 1500.0);
        q.reset_counters();
        assert_eq!(q.accepted, 0);
        assert_eq!(q.bytes_out, 0);
    }
}
