//! Egress-port queues.
//!
//! Each directed use of a link has an egress queue at its transmitting node.
//! The queue serialises packets at the link's effective rate, tail-drops when
//! a configured buffer is exceeded, marks ECN above a threshold, and exposes
//! occupancy telemetry — the congestion signal the Closed Ring Control prices
//! links by.

use rackfabric_sim::stats::TimeWeighted;
use rackfabric_sim::time::{SimDuration, SimTime};
use rackfabric_sim::units::{BitRate, Bytes};
use serde::{Deserialize, Serialize};

/// The result of offering a packet to an egress queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnqueueOutcome {
    /// The packet was accepted; it will finish transmitting at the instant
    /// given, after waiting `queueing` behind earlier packets and taking
    /// `serialization` on the wire.
    Accepted {
        /// Time spent waiting behind earlier packets.
        queueing: SimDuration,
        /// Serialization time of this packet at the link rate.
        serialization: SimDuration,
        /// Absolute instant the last bit leaves the port.
        departs_at: SimTime,
        /// True if the queue was above its ECN threshold on arrival.
        ecn_marked: bool,
    },
    /// The buffer was full; the packet is dropped.
    Dropped,
}

/// An egress port queue with tail-drop and ECN marking.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EgressQueue {
    /// Buffer size in bytes (tail drop beyond this).
    pub buffer: Bytes,
    /// ECN marking threshold in bytes.
    pub ecn_threshold: Bytes,
    busy_until: SimTime,
    queued_bytes: u64,
    last_drain: SimTime,
    drain_rate: BitRate,
    occupancy: TimeWeighted,
    /// Packets accepted.
    pub accepted: u64,
    /// Packets dropped at the tail.
    pub dropped: u64,
    /// Packets ECN-marked.
    pub marked: u64,
    /// Bytes transmitted.
    pub bytes_out: u64,
}

impl EgressQueue {
    /// Creates a queue with `buffer` bytes of storage; ECN marks above half
    /// the buffer.
    pub fn new(buffer: Bytes) -> Self {
        EgressQueue {
            buffer,
            ecn_threshold: Bytes::new(buffer.as_u64() / 2),
            busy_until: SimTime::ZERO,
            queued_bytes: 0,
            last_drain: SimTime::ZERO,
            drain_rate: BitRate::ZERO,
            occupancy: TimeWeighted::new(),
            accepted: 0,
            dropped: 0,
            marked: 0,
            bytes_out: 0,
        }
    }

    /// Bytes currently waiting or in transmission at `now` (drains as time
    /// advances past previously computed departures).
    pub fn backlog_at(&self, now: SimTime) -> u64 {
        if self.drain_rate.is_zero() || now <= self.last_drain {
            return self.queued_bytes;
        }
        let drained = self
            .drain_rate
            .bytes_in(now.saturating_since(self.last_drain));
        self.queued_bytes.saturating_sub(drained.as_u64())
    }

    /// Offers a packet of `size` to the queue at `now`, transmitting at
    /// `rate` (the link's current effective capacity). A zero rate (link down
    /// or reconfiguring) drops the packet.
    pub fn enqueue(&mut self, now: SimTime, size: Bytes, rate: BitRate) -> EnqueueOutcome {
        if rate.is_zero() {
            self.dropped += 1;
            return EnqueueOutcome::Dropped;
        }
        // Advance the drain model to now.
        let backlog = self.backlog_at(now);
        self.queued_bytes = backlog;
        self.last_drain = now;
        self.drain_rate = rate;

        if backlog + size.as_u64() > self.buffer.as_u64() {
            self.dropped += 1;
            self.occupancy.set(now, backlog as f64);
            return EnqueueOutcome::Dropped;
        }

        let ecn_marked = backlog >= self.ecn_threshold.as_u64();
        if ecn_marked {
            self.marked += 1;
        }

        let serialization = rate.serialization_delay(size);
        let start = if self.busy_until > now {
            self.busy_until
        } else {
            now
        };
        let queueing = start.saturating_since(now);
        let departs_at = start + serialization;
        self.busy_until = departs_at;
        self.queued_bytes += size.as_u64();
        self.accepted += 1;
        self.bytes_out += size.as_u64();
        self.occupancy.set(now, self.queued_bytes as f64);

        EnqueueOutcome::Accepted {
            queueing,
            serialization,
            departs_at,
            ecn_marked,
        }
    }

    /// Mean queue occupancy in bytes over the observation window ending at
    /// `now`.
    pub fn mean_occupancy(&mut self, now: SimTime) -> f64 {
        self.occupancy.mean_until(now)
    }

    /// Peak occupancy in bytes.
    pub fn peak_occupancy(&self) -> f64 {
        self.occupancy.max()
    }

    /// Utilization of the port over `[window_start, now]`: transmitted bytes
    /// relative to what the rate could have carried.
    pub fn utilization(&self, window_start: SimTime, now: SimTime, rate: BitRate) -> f64 {
        let capacity = rate.bytes_in(now.saturating_since(window_start)).as_u64();
        if capacity == 0 {
            0.0
        } else {
            self.bytes_out as f64 / capacity as f64
        }
    }

    /// Drop probability observed so far.
    pub fn drop_rate(&self) -> f64 {
        let offered = self.accepted + self.dropped;
        if offered == 0 {
            0.0
        } else {
            self.dropped as f64 / offered as f64
        }
    }

    /// Resets byte/packet counters (not the drain state); used when a
    /// telemetry epoch closes.
    pub fn reset_counters(&mut self) {
        self.accepted = 0;
        self.dropped = 0;
        self.marked = 0;
        self.bytes_out = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GBPS100: BitRate = BitRate::from_gbps(100);

    #[test]
    fn empty_queue_has_no_queueing_delay() {
        let mut q = EgressQueue::new(Bytes::from_kib(256));
        let out = q.enqueue(SimTime::from_micros(1), Bytes::new(1500), GBPS100);
        match out {
            EnqueueOutcome::Accepted {
                queueing,
                serialization,
                departs_at,
                ecn_marked,
            } => {
                assert_eq!(queueing, SimDuration::ZERO);
                assert_eq!(serialization.as_picos(), 120_000);
                assert_eq!(departs_at, SimTime::from_micros(1) + serialization);
                assert!(!ecn_marked);
            }
            EnqueueOutcome::Dropped => panic!("must accept"),
        }
    }

    #[test]
    fn back_to_back_packets_queue_behind_each_other() {
        let mut q = EgressQueue::new(Bytes::from_kib(256));
        let t = SimTime::from_micros(1);
        let first = q.enqueue(t, Bytes::new(1500), GBPS100);
        let second = q.enqueue(t, Bytes::new(1500), GBPS100);
        let (
            EnqueueOutcome::Accepted { departs_at: d1, .. },
            EnqueueOutcome::Accepted {
                queueing: q2,
                departs_at: d2,
                ..
            },
        ) = (first, second)
        else {
            panic!("both must be accepted");
        };
        assert_eq!(q2, SimDuration::from_nanos(120));
        assert_eq!(d2, d1 + SimDuration::from_nanos(120));
    }

    #[test]
    fn queue_drains_when_time_passes() {
        let mut q = EgressQueue::new(Bytes::from_kib(64));
        let t0 = SimTime::from_micros(1);
        q.enqueue(t0, Bytes::new(1500), GBPS100);
        assert!(q.backlog_at(t0) > 0);
        // 1 ms later everything has long drained.
        assert_eq!(q.backlog_at(SimTime::from_millis(2)), 0);
        let out = q.enqueue(SimTime::from_millis(2), Bytes::new(1500), GBPS100);
        assert!(matches!(out, EnqueueOutcome::Accepted { queueing, .. } if queueing.is_zero()));
    }

    #[test]
    fn overflow_drops_and_counts() {
        // Tiny 3 kB buffer fills after two MTUs.
        let mut q = EgressQueue::new(Bytes::new(3000));
        let t = SimTime::from_micros(1);
        assert!(matches!(
            q.enqueue(t, Bytes::new(1500), GBPS100),
            EnqueueOutcome::Accepted { .. }
        ));
        assert!(matches!(
            q.enqueue(t, Bytes::new(1500), GBPS100),
            EnqueueOutcome::Accepted { .. }
        ));
        assert_eq!(
            q.enqueue(t, Bytes::new(1500), GBPS100),
            EnqueueOutcome::Dropped
        );
        assert_eq!(q.accepted, 2);
        assert_eq!(q.dropped, 1);
        assert!((q.drop_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn ecn_marks_above_threshold() {
        let mut q = EgressQueue::new(Bytes::new(10_000));
        assert_eq!(q.ecn_threshold, Bytes::new(5_000));
        let t = SimTime::from_micros(1);
        // Fill past the threshold.
        for _ in 0..4 {
            q.enqueue(t, Bytes::new(1500), GBPS100);
        }
        // Backlog is now 6000 >= 5000, so the next packet is marked.
        let out = q.enqueue(t, Bytes::new(1500), GBPS100);
        assert!(matches!(
            out,
            EnqueueOutcome::Accepted {
                ecn_marked: true,
                ..
            }
        ));
        assert_eq!(q.marked, 1);
    }

    #[test]
    fn zero_rate_drops() {
        let mut q = EgressQueue::new(Bytes::from_kib(64));
        assert_eq!(
            q.enqueue(SimTime::ZERO, Bytes::new(100), BitRate::ZERO),
            EnqueueOutcome::Dropped
        );
    }

    #[test]
    fn utilization_and_occupancy_telemetry() {
        let mut q = EgressQueue::new(Bytes::from_kib(256));
        let start = SimTime::ZERO;
        let mut now = start;
        for _ in 0..100 {
            q.enqueue(now, Bytes::new(1500), GBPS100);
            now += SimDuration::from_nanos(240); // offered at 50% load
        }
        let util = q.utilization(start, now, GBPS100);
        assert!(
            (0.4..0.7).contains(&util),
            "expected ~0.5 utilization, got {util}"
        );
        assert!(q.mean_occupancy(now) >= 0.0);
        assert!(q.peak_occupancy() >= 1500.0);
        q.reset_counters();
        assert_eq!(q.accepted, 0);
        assert_eq!(q.bytes_out, 0);
    }
}
