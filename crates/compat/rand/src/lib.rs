//! Offline facade for `rand`: just the [`RngCore`] trait (0.9 surface),
//! which `rackfabric_sim::rng::DetRng` implements so callers can use it
//! wherever a rand-style generator is expected.

/// The core random-number-generator interface (matches `rand` 0.9).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}
