//! Offline facade for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` names this repository imports —
//! as blanket-implemented marker traits — plus the derive macros (re-exported
//! from the `serde_derive` facade, where they expand to nothing). Actual JSON
//! encoding/decoding in this repository goes through `rackfabric_sim::json`,
//! which needs no derives.

/// Marker stand-in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`; satisfied by every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub mod de {
    //! Mirror of `serde::de` for the names used in trait bounds.
    pub use crate::{Deserialize, DeserializeOwned};
}

pub mod ser {
    //! Mirror of `serde::ser`.
    pub use crate::Serialize;
}

// The derive macros share names with the traits, exactly like real serde.
pub use serde_derive::{Deserialize, Serialize};
