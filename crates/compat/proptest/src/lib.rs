//! Offline facade for `proptest`.
//!
//! Supports the subset of the proptest surface this repository's tests use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(...)]`
//!   header and `name in strategy` bindings,
//! * range strategies over the primitive integers and floats
//!   (`2usize..6`, `0.0f64..2.0`, inclusive ranges),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * [`ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is no shrinking: inputs are drawn from a
//! deterministic per-test generator (seeded from the test name and the case
//! index), so a failure reproduces bit-identically on every run.

use std::ops::{Range, RangeInclusive};

/// Per-test configuration; only `cases` is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic input generator (SplitMix64 chain).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for case number `case` of the property named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            hash ^= *b as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: hash ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of generated values; implemented for primitive ranges.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

/// Declares deterministic property tests. Mirrors the `proptest!` grammar
/// for plain `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a property holds for the current generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts two expressions are equal for the current generated input.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts two expressions are unequal for the current generated input.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// The conventional glob-import surface.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 2usize..6, b in 0u64..1000, x in 0.0f64..2.0) {
            prop_assert!((2..6).contains(&a));
            prop_assert!(b < 1000);
            prop_assert!((0.0..2.0).contains(&x));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in 1u32..10) {
            prop_assert_ne!(v, 0);
            prop_assert_eq!(v, v, "identity must hold for {}", v);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn samples_cover_the_range() {
        let mut rng = TestRng::for_case("cover", 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::sample(&(0usize..4), &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
