//! Offline facade for `serde_derive`: the derive macros accept the same
//! syntax as the real crate (including `#[serde(...)]` helper attributes)
//! and expand to nothing. The matching `serde` facade blanket-implements the
//! `Serialize`/`Deserialize` marker traits, so derived types still satisfy
//! serde trait bounds.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
