//! Offline facade for `criterion`.
//!
//! Implements the subset of the Criterion API the `benches/` files use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] tuning knobs (accepted
//! and ignored), [`BenchmarkGroup::bench_function`] /
//! [`Criterion::bench_function`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark body runs `SAMPLES` times and
//! the mean wall-clock time is printed — enough to compare runs by hand and
//! to keep every bench target compiling and runnable without a registry.

use std::time::{Duration, Instant};

/// Number of timed iterations per benchmark.
const SAMPLES: u32 = 3;

/// Timing harness handed to each benchmark function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, f);
        self
    }
}

/// A named collection of benchmarks with (ignored) sampling knobs.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the facade always runs `SAMPLES` iterations.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
    /// Accepted for API compatibility; the facade does not warm up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }
    /// Accepted for API compatibility; the facade times a fixed iteration count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }
    /// Times `f` and prints the mean wall-clock duration.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, f);
        self
    }
    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
    };
    let mut total = Duration::ZERO;
    for _ in 0..SAMPLES {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        total += bencher.elapsed;
    }
    let mean = total / SAMPLES;
    println!("bench {id:<40} time: {mean:?} (mean of {SAMPLES})");
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one execution of `routine` (the facade does not sample
    /// repeatedly inside `iter`).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        drop(std::hint::black_box(out));
    }
}

/// Opaque-value helper mirroring `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a benchmark binary (`harness = false` targets).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
