//! # rackfabric-phy
//!
//! The physical-layer substrate of the adaptive rack-scale fabric and, on
//! top of it, the paper's **Physical Layer Primitives (PLP)**.
//!
//! The paper (Section 3.1) assumes that a physical link is a bundle of
//! physical lanes — the canonical example being a 100 Gb/s link built from
//! four 25 Gb/s lanes — and defines five primitives over that substrate:
//!
//! 1. **Link breaking / bundling** — split a link of N lanes into k and N−k
//!    lanes, or merge two bundles back together.
//! 2. **High-speed bypass** — connect two links at the lowest possible
//!    physical level, skipping the switching logic entirely.
//! 3. **Turning a link on or off.**
//! 4. **Adaptive forward error correction.**
//! 5. **Per-lane statistics** — bit error rate, latency, effective bandwidth.
//!
//! This crate models lanes, lane bundles ([`link::Link`]), the media they run
//! over ([`media::Media`]), the signal-integrity chain that produces a
//! pre-FEC bit error rate ([`signal`]), the FEC codecs and the adaptive FEC
//! controller ([`fec`], [`adaptive_fec`]), the power model ([`power`]), the
//! bypass cross-connect ([`bypass`]), and finally the PLP command set and the
//! executor that applies commands to a rack's physical state with realistic
//! reconfiguration latencies ([`plp`]).
//!
//! The crate knows nothing about packets, switches or the Closed Ring
//! Control: it only exposes state, telemetry and commands. That separation is
//! one of the paper's stated goals (new physical-layer technology plugs in
//! underneath an unchanged control plane).

pub mod adaptive_fec;
pub mod bypass;
pub mod error;
pub mod fec;
pub mod lane;
pub mod link;
pub mod media;
pub mod plp;
pub mod power;
pub mod signal;
pub mod stats;

pub use adaptive_fec::AdaptiveFecController;
pub use bypass::{Bypass, BypassTable};
pub use error::PhyError;
pub use fec::FecMode;
pub use lane::{Lane, LaneId, LaneState};
pub use link::{Link, LinkId, LinkState};
pub use media::{Media, MediaKind};
pub use plp::{PhyState, PlpCommand, PlpCompletion, PlpExecutor, PlpTiming};
pub use power::{PowerModel, PowerState};
pub use stats::{LaneStats, LinkTelemetry, TelemetryReport};
