//! Forward error correction codecs.
//!
//! Adaptive FEC is PLP #4 in the paper: as a lane's channel degrades (longer
//! reach, higher rate, ageing optics) the fabric can trade latency and a few
//! percent of bandwidth for coding gain instead of dropping the lane. The
//! three codecs modelled here are the ones real 25G/100G Ethernet PHYs
//! negotiate, with their standard overhead and typical decode latencies:
//!
//! | mode           | overhead | coding gain | added latency |
//! |----------------|----------|-------------|---------------|
//! | `None`         | 0        | 0 dB        | 0 ns          |
//! | `FireCode`     | ~3 %     | ~2.5 dB     | ~50 ns        |
//! | `Rs528` (KR4)  | ~2.7 %   | ~5.5 dB     | ~100 ns       |
//! | `Rs544` (KP4)  | ~5.7 %   | ~7.5 dB     | ~180 ns       |
//!
//! Post-FEC BER is computed by applying the coding gain to the received SNR
//! and re-evaluating the Q-function, which reproduces the characteristic
//! waterfall shape (a strong code turns a 1e-6 channel into a practically
//! error-free one but cannot rescue a 1e-2 channel).

use crate::signal;
use rackfabric_sim::time::SimDuration;
use rackfabric_sim::units::{BitRate, Power};
use serde::{Deserialize, Serialize};

/// The FEC codec applied to every lane of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FecMode {
    /// No FEC: zero latency and overhead, no coding gain.
    #[default]
    None,
    /// IEEE "BASE-R" Fire code: cheap, small gain.
    FireCode,
    /// Reed–Solomon RS(528,514), a.k.a. Clause 91 / KR4.
    Rs528,
    /// Reed–Solomon RS(544,514), a.k.a. KP4, the strongest standard code.
    Rs544,
}

impl FecMode {
    /// All modes, ordered from weakest to strongest.
    pub const ALL: [FecMode; 4] = [
        FecMode::None,
        FecMode::FireCode,
        FecMode::Rs528,
        FecMode::Rs544,
    ];

    /// Fraction of raw bandwidth consumed by parity symbols.
    pub fn overhead(self) -> f64 {
        match self {
            FecMode::None => 0.0,
            FecMode::FireCode => 0.030,
            FecMode::Rs528 => 0.027,
            FecMode::Rs544 => 0.057,
        }
    }

    /// Effective coding gain in dB applied to the received SNR.
    pub fn coding_gain_db(self) -> f64 {
        match self {
            FecMode::None => 0.0,
            FecMode::FireCode => 2.5,
            FecMode::Rs528 => 5.5,
            FecMode::Rs544 => 7.5,
        }
    }

    /// Added encode+decode latency per traversal of the link.
    pub fn added_latency(self) -> SimDuration {
        match self {
            FecMode::None => SimDuration::ZERO,
            FecMode::FireCode => SimDuration::from_nanos(50),
            FecMode::Rs528 => SimDuration::from_nanos(100),
            FecMode::Rs544 => SimDuration::from_nanos(180),
        }
    }

    /// Additional power drawn by the FEC engine per lane.
    pub fn power_per_lane(self) -> Power {
        match self {
            FecMode::None => Power::ZERO,
            FecMode::FireCode => Power::from_milliwatts(60),
            FecMode::Rs528 => Power::from_milliwatts(120),
            FecMode::Rs544 => Power::from_milliwatts(200),
        }
    }

    /// Effective data rate after subtracting parity overhead.
    pub fn effective_rate(self, raw: BitRate) -> BitRate {
        raw.scale(1.0 - self.overhead())
    }

    /// Post-FEC bit error rate given the received SNR in dB (before coding
    /// gain is applied).
    pub fn post_fec_ber(self, received_snr_db: f64) -> f64 {
        signal::snr_to_ber(received_snr_db + self.coding_gain_db())
    }

    /// Post-FEC BER given the *pre-FEC BER* directly. The pre-FEC BER is
    /// inverted back to an equivalent SNR, the coding gain applied, and the
    /// BER re-evaluated. Used when only BER telemetry is available.
    pub fn post_fec_ber_from_pre(self, pre_fec_ber: f64) -> f64 {
        let snr = invert_ber_to_snr_db(pre_fec_ber);
        self.post_fec_ber(snr)
    }

    /// The next stronger mode, if any.
    pub fn stronger(self) -> Option<FecMode> {
        match self {
            FecMode::None => Some(FecMode::FireCode),
            FecMode::FireCode => Some(FecMode::Rs528),
            FecMode::Rs528 => Some(FecMode::Rs544),
            FecMode::Rs544 => None,
        }
    }

    /// The next weaker mode, if any.
    pub fn weaker(self) -> Option<FecMode> {
        match self {
            FecMode::None => None,
            FecMode::FireCode => Some(FecMode::None),
            FecMode::Rs528 => Some(FecMode::FireCode),
            FecMode::Rs544 => Some(FecMode::Rs528),
        }
    }
}

/// Numerically inverts `snr_to_ber` by bisection on the SNR axis.
pub fn invert_ber_to_snr_db(ber: f64) -> f64 {
    let target = ber.clamp(1e-18, 0.5);
    let (mut lo, mut hi) = (0.0f64, 40.0f64);
    // snr_to_ber is monotone decreasing in SNR.
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if signal::snr_to_ber(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_latency_power_increase_with_strength() {
        let modes = FecMode::ALL;
        for w in modes.windows(2) {
            let (weak, strong) = (w[0], w[1]);
            assert!(strong.coding_gain_db() > weak.coding_gain_db());
            assert!(strong.added_latency() >= weak.added_latency());
            assert!(strong.power_per_lane() >= weak.power_per_lane());
        }
    }

    #[test]
    fn effective_rate_subtracts_overhead() {
        let raw = BitRate::from_gbps(100);
        assert_eq!(FecMode::None.effective_rate(raw), raw);
        let kp4 = FecMode::Rs544.effective_rate(raw);
        assert!(kp4 < raw);
        assert!(kp4 > BitRate::from_gbps(90));
    }

    #[test]
    fn stronger_code_lower_post_fec_ber() {
        // A marginal channel around 12 dB.
        let snr = 12.0;
        let none = FecMode::None.post_fec_ber(snr);
        let fire = FecMode::FireCode.post_fec_ber(snr);
        let rs528 = FecMode::Rs528.post_fec_ber(snr);
        let rs544 = FecMode::Rs544.post_fec_ber(snr);
        assert!(none > fire && fire > rs528 && rs528 > rs544);
        assert!(
            rs544 < 1e-9,
            "KP4 should clean up a 14 dB channel, got {rs544}"
        );
    }

    #[test]
    fn fec_cannot_rescue_a_terrible_channel() {
        let snr = 3.0; // hopeless
        let ber = FecMode::Rs544.post_fec_ber(snr);
        assert!(
            ber > 1e-4,
            "no standard FEC fixes a 3 dB channel, got {ber}"
        );
    }

    #[test]
    fn ber_inversion_round_trips() {
        // Stay below the BER clamp floor (~17.5 dB maps to 1e-18).
        for snr in [8.0, 10.0, 13.0, 15.0, 16.5] {
            let ber = signal::snr_to_ber(snr);
            let back = invert_ber_to_snr_db(ber);
            assert!((back - snr).abs() < 0.1, "snr {snr} -> ber {ber} -> {back}");
        }
    }

    #[test]
    fn post_fec_from_pre_matches_snr_path() {
        let snr = 15.0;
        let pre = signal::snr_to_ber(snr);
        let a = FecMode::Rs528.post_fec_ber(snr);
        let b = FecMode::Rs528.post_fec_ber_from_pre(pre);
        let ratio = if a > b { a / b } else { b / a };
        assert!(
            ratio < 10.0,
            "the two paths should agree within an order of magnitude"
        );
    }

    #[test]
    fn stronger_and_weaker_walk_the_ladder() {
        assert_eq!(FecMode::None.stronger(), Some(FecMode::FireCode));
        assert_eq!(FecMode::Rs544.stronger(), None);
        assert_eq!(FecMode::Rs544.weaker(), Some(FecMode::Rs528));
        assert_eq!(FecMode::None.weaker(), None);
        // Walking up then down returns to the start.
        let m = FecMode::FireCode;
        assert_eq!(m.stronger().unwrap().weaker().unwrap(), m);
    }

    #[test]
    fn default_is_no_fec() {
        assert_eq!(FecMode::default(), FecMode::None);
    }
}
