//! Physical Layer Primitives: the command set and its executor.
//!
//! This module is the boundary the paper draws between physical-layer
//! innovation and control innovation: any reconfigurable-interconnect
//! technology (the optics of ProjecToR, the electrical circuit switching of
//! Shoal, plain lane power gating) is exposed to the Closed Ring Control as
//! the same small vocabulary of [`PlpCommand`]s, and the control plane never
//! needs to know which technology executes them.
//!
//! [`PhyState`] owns every link, lane and bypass in the rack;
//! [`PlpExecutor`] applies commands to it, validating them and reporting the
//! reconfiguration latency each one costs (the [`PlpTiming`] table). The
//! fabric layer in the `rackfabric` core crate is responsible for holding
//! traffic off a link while a command's latency elapses.

use crate::bypass::{Bypass, BypassTable};
use crate::error::PhyError;
use crate::fec::FecMode;
use crate::lane::LaneState;
use crate::link::{Link, LinkId, LinkState};
use crate::media::Media;
use crate::power::{PowerModel, PowerState};
use crate::stats::{LinkTelemetry, TelemetryReport};
use rackfabric_sim::time::{SimDuration, SimTime};
use rackfabric_sim::units::{BitRate, Length, Power};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A Physical Layer Primitive command, as issued by the Closed Ring Control.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlpCommand {
    /// PLP #1 (link breaking): take `lanes` lanes off `link` and terminate
    /// them as a new link between `new_a` and `new_b` (the per-node circuit
    /// switches re-point the freed lanes).
    SplitLink {
        /// Link to take lanes from.
        link: LinkId,
        /// Number of lanes to move.
        lanes: usize,
        /// First endpoint of the newly created link.
        new_a: u32,
        /// Second endpoint of the newly created link.
        new_b: u32,
    },
    /// PLP #1 (bundling): move every lane of `from` into `into` and retire
    /// `from`. Both links must share endpoints and media.
    BundleLinks {
        /// Link to dissolve.
        from: LinkId,
        /// Link that absorbs the lanes.
        into: LinkId,
    },
    /// PLP #1 at finer grain: move `lanes` lanes from one existing link to
    /// another existing link (same constraint set as bundling, but partial).
    MoveLanes {
        /// Source link.
        from: LinkId,
        /// Destination link.
        to: LinkId,
        /// Number of lanes to move.
        lanes: usize,
    },
    /// Power up or down individual lanes of a link without detaching them.
    SetActiveLanes {
        /// Target link.
        link: LinkId,
        /// Number of lanes that should remain usable.
        lanes: usize,
    },
    /// PLP #3: change the power state of a whole link.
    SetPower {
        /// Target link.
        link: LinkId,
        /// Desired power state.
        state: PowerState,
    },
    /// PLP #4: change the FEC codec on a link.
    SetFec {
        /// Target link.
        link: LinkId,
        /// Desired codec.
        mode: FecMode,
    },
    /// PLP #2: install a bypass at `at_node` from `in_link` to `out_link`.
    EnableBypass {
        /// Node whose switch is skipped.
        at_node: u32,
        /// Ingress link.
        in_link: LinkId,
        /// Egress link.
        out_link: LinkId,
    },
    /// PLP #2: remove the bypass keyed by (`at_node`, `in_link`).
    DisableBypass {
        /// Node whose bypass is removed.
        at_node: u32,
        /// Ingress link of the bypass.
        in_link: LinkId,
    },
}

impl PlpCommand {
    /// A short human-readable name used in logs and experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            PlpCommand::SplitLink { .. } => "split_link",
            PlpCommand::BundleLinks { .. } => "bundle_links",
            PlpCommand::MoveLanes { .. } => "move_lanes",
            PlpCommand::SetActiveLanes { .. } => "set_active_lanes",
            PlpCommand::SetPower { .. } => "set_power",
            PlpCommand::SetFec { .. } => "set_fec",
            PlpCommand::EnableBypass { .. } => "enable_bypass",
            PlpCommand::DisableBypass { .. } => "disable_bypass",
        }
    }
}

/// Reconfiguration latencies charged per command class.
///
/// The defaults are in the range reported for electrically switched
/// rack-scale fabrics (microseconds) rather than MEMS optics (milliseconds);
/// experiments that study the break-even flow size sweep this table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlpTiming {
    /// Latency of splitting a link (circuit-switch re-point + retrain).
    pub split: SimDuration,
    /// Latency of bundling two links.
    pub bundle: SimDuration,
    /// Latency of moving lanes between existing links.
    pub move_lanes: SimDuration,
    /// Latency of powering lanes up/down within a link.
    pub set_active_lanes: SimDuration,
    /// Latency of a full power-state change (worst case: off -> active
    /// retrain).
    pub set_power: SimDuration,
    /// Latency of an FEC mode change (PCS retrain).
    pub set_fec: SimDuration,
    /// Latency of installing or removing a bypass cross-connect.
    pub bypass: SimDuration,
}

impl Default for PlpTiming {
    fn default() -> Self {
        PlpTiming {
            split: SimDuration::from_micros(20),
            bundle: SimDuration::from_micros(20),
            move_lanes: SimDuration::from_micros(15),
            set_active_lanes: SimDuration::from_micros(5),
            set_power: SimDuration::from_micros(50),
            set_fec: SimDuration::from_micros(10),
            bypass: SimDuration::from_micros(2),
        }
    }
}

impl PlpTiming {
    /// The latency charged for `command`.
    pub fn latency_of(&self, command: &PlpCommand) -> SimDuration {
        match command {
            PlpCommand::SplitLink { .. } => self.split,
            PlpCommand::BundleLinks { .. } => self.bundle,
            PlpCommand::MoveLanes { .. } => self.move_lanes,
            PlpCommand::SetActiveLanes { .. } => self.set_active_lanes,
            PlpCommand::SetPower { .. } => self.set_power,
            PlpCommand::SetFec { .. } => self.set_fec,
            PlpCommand::EnableBypass { .. } | PlpCommand::DisableBypass { .. } => self.bypass,
        }
    }

    /// A timing table scaled by `factor` (used by the break-even sweep).
    pub fn scaled(&self, factor: f64) -> PlpTiming {
        PlpTiming {
            split: self.split.mul_f64(factor),
            bundle: self.bundle.mul_f64(factor),
            move_lanes: self.move_lanes.mul_f64(factor),
            set_active_lanes: self.set_active_lanes.mul_f64(factor),
            set_power: self.set_power.mul_f64(factor),
            set_fec: self.set_fec.mul_f64(factor),
            bypass: self.bypass.mul_f64(factor),
        }
    }
}

/// Result of executing one PLP command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlpCompletion {
    /// The command's short name.
    pub command: String,
    /// How long the reconfiguration takes before traffic may resume.
    pub duration: SimDuration,
    /// A link created by the command (only for `SplitLink`).
    pub new_link: Option<LinkId>,
    /// Links whose configuration changed.
    pub affected: Vec<LinkId>,
}

/// The complete physical state of the rack's interconnect.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PhyState {
    links: HashMap<LinkId, Link>,
    /// Active bypass cross-connects.
    pub bypasses: BypassTable,
    /// Per-link power state (absent means `Active`).
    pub power_states: HashMap<LinkId, PowerState>,
    /// The power model used for telemetry.
    pub power_model: PowerModel,
    next_link_id: u64,
    next_lane_id: u64,
}

impl PhyState {
    /// Creates an empty physical state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a new link of `lanes` lanes at `lane_rate` between `a` and `b`,
    /// returning its id.
    pub fn add_link(
        &mut self,
        a: u32,
        b: u32,
        media: Media,
        length: Length,
        lanes: usize,
        lane_rate: BitRate,
    ) -> LinkId {
        let id = LinkId(self.next_link_id);
        self.next_link_id += 1;
        let link = Link::new(id, a, b, media, length, lanes, lane_rate, self.next_lane_id);
        self.next_lane_id += lanes as u64;
        self.links.insert(id, link);
        id
    }

    /// Looks up a link.
    pub fn link(&self, id: LinkId) -> Option<&Link> {
        self.links.get(&id)
    }

    /// Mutable lookup.
    pub fn link_mut(&mut self, id: LinkId) -> Option<&mut Link> {
        self.links.get_mut(&id)
    }

    /// All links, in unspecified order.
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.values()
    }

    /// All link ids, sorted (deterministic iteration for the control plane).
    pub fn link_ids(&self) -> Vec<LinkId> {
        let mut ids: Vec<LinkId> = self.links.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Finds an up link between `a` and `b`, if one exists.
    pub fn find_link_between(&self, a: u32, b: u32) -> Option<&Link> {
        let mut ids = self.link_ids();
        ids.retain(|id| {
            let l = &self.links[id];
            l.connects(a, b)
        });
        ids.first().map(|id| &self.links[id])
    }

    /// Effective capacity between `a` and `b`, summed across parallel links.
    pub fn capacity_between(&self, a: u32, b: u32) -> BitRate {
        self.links
            .values()
            .filter(|l| l.connects(a, b))
            .map(|l| l.capacity())
            .sum()
    }

    /// The power state of a link (`Active` when never set).
    pub fn power_state(&self, id: LinkId) -> PowerState {
        self.power_states.get(&id).copied().unwrap_or_default()
    }

    /// Total interconnect power, charging each link for `throughput` looked
    /// up in `throughput_by_link` (absent means idle) and each bypass its
    /// cross-connect cost.
    pub fn total_power(&self, throughput_by_link: &HashMap<LinkId, BitRate>) -> Power {
        let link_power: Power = self
            .links
            .values()
            .map(|l| {
                let tput = throughput_by_link
                    .get(&l.id)
                    .copied()
                    .unwrap_or(BitRate::ZERO);
                self.power_model.link_power(l, tput, self.power_state(l.id))
            })
            .sum();
        link_power + self.power_model.bypass_power(self.bypasses.len())
    }

    /// Builds the rack-wide telemetry report consumed by the CRC.
    /// `utilization`, `queue_bytes` and `throughput` are supplied per link by
    /// the switching layer (absent entries default to idle).
    pub fn telemetry_report(
        &self,
        at: SimTime,
        utilization: &HashMap<LinkId, f64>,
        queue_bytes: &HashMap<LinkId, f64>,
        throughput: &HashMap<LinkId, BitRate>,
    ) -> TelemetryReport {
        let mut report = TelemetryReport::new(at);
        for id in self.link_ids() {
            let link = &self.links[&id];
            let tput = throughput.get(&id).copied().unwrap_or(BitRate::ZERO);
            let power = self
                .power_model
                .link_power(link, tput, self.power_state(id));
            let t: LinkTelemetry = link.telemetry(
                at,
                utilization.get(&id).copied().unwrap_or(0.0),
                queue_bytes.get(&id).copied().unwrap_or(0.0),
                power,
            );
            report.links.push(t);
        }
        report.total_power = self.total_power(throughput);
        report.active_bypasses = self.bypasses.len();
        report
    }
}

/// Applies [`PlpCommand`]s to a [`PhyState`].
#[derive(Debug, Clone, Default)]
pub struct PlpExecutor {
    /// The reconfiguration-latency table.
    pub timing: PlpTiming,
}

impl PlpExecutor {
    /// Creates an executor with explicit timings.
    pub fn new(timing: PlpTiming) -> Self {
        PlpExecutor { timing }
    }

    /// Validates and applies `command` to `state`, returning the completion
    /// record (including how long traffic must be held off the affected
    /// links).
    pub fn execute(
        &self,
        state: &mut PhyState,
        command: &PlpCommand,
    ) -> Result<PlpCompletion, PhyError> {
        let duration = self.timing.latency_of(command);
        let mut completion = PlpCompletion {
            command: command.name().to_string(),
            duration,
            new_link: None,
            affected: Vec::new(),
        };
        match command {
            PlpCommand::SplitLink {
                link,
                lanes,
                new_a,
                new_b,
            } => {
                let (media, length, lane_rate) = {
                    let l = state.links.get(link).ok_or(PhyError::UnknownLink(*link))?;
                    if l.state == LinkState::Down {
                        return Err(PhyError::LinkDown(*link));
                    }
                    (
                        l.media,
                        l.length,
                        l.lanes.first().map(|x| x.rate).unwrap_or(BitRate::ZERO),
                    )
                };
                let taken = {
                    let l = state.links.get_mut(link).expect("checked above");
                    l.take_lanes(*lanes)?
                };
                let new_id = LinkId(state.next_link_id);
                state.next_link_id += 1;
                let mut new_link =
                    Link::new(new_id, *new_a, *new_b, media, length, 0, lane_rate, 0);
                new_link.lanes = taken;
                for lane in &mut new_link.lanes {
                    lane.set_state(LaneState::Up);
                }
                new_link.refresh_ber();
                state.links.insert(new_id, new_link);
                state.bypasses.purge_link(*link);
                completion.new_link = Some(new_id);
                completion.affected = vec![*link, new_id];
            }
            PlpCommand::BundleLinks { from, into } => {
                Self::check_bundle_compatible(state, *from, *into)?;
                let from_link = state.links.remove(from).expect("checked");
                let into_link = state.links.get_mut(into).expect("checked");
                into_link.add_lanes(from_link.lanes);
                state.bypasses.purge_link(*from);
                state.power_states.remove(from);
                completion.affected = vec![*from, *into];
            }
            PlpCommand::MoveLanes { from, to, lanes } => {
                Self::check_bundle_compatible(state, *from, *to)?;
                let taken = {
                    let l = state.links.get_mut(from).expect("checked");
                    l.take_lanes(*lanes)?
                };
                let to_link = state.links.get_mut(to).expect("checked");
                to_link.add_lanes(taken);
                completion.affected = vec![*from, *to];
            }
            PlpCommand::SetActiveLanes { link, lanes } => {
                let l = state
                    .links
                    .get_mut(link)
                    .ok_or(PhyError::UnknownLink(*link))?;
                l.set_active_lanes(*lanes)?;
                completion.affected = vec![*link];
            }
            PlpCommand::SetPower {
                link,
                state: pstate,
            } => {
                let l = state
                    .links
                    .get_mut(link)
                    .ok_or(PhyError::UnknownLink(*link))?;
                match pstate {
                    PowerState::Off => {
                        l.set_power(false);
                        state.bypasses.purge_link(*link);
                    }
                    PowerState::Active | PowerState::LowPower => l.set_power(true),
                }
                state.power_states.insert(*link, *pstate);
                completion.affected = vec![*link];
            }
            PlpCommand::SetFec { link, mode } => {
                let l = state
                    .links
                    .get_mut(link)
                    .ok_or(PhyError::UnknownLink(*link))?;
                if l.state == LinkState::Down {
                    return Err(PhyError::LinkDown(*link));
                }
                l.set_fec(*mode);
                completion.affected = vec![*link];
            }
            PlpCommand::EnableBypass {
                at_node,
                in_link,
                out_link,
            } => {
                let a = state
                    .links
                    .get(in_link)
                    .ok_or(PhyError::UnknownLink(*in_link))?;
                let b = state
                    .links
                    .get(out_link)
                    .ok_or(PhyError::UnknownLink(*out_link))?;
                if !a.touches(*at_node) || !b.touches(*at_node) {
                    return Err(PhyError::BypassEndpointMismatch(*in_link, *out_link));
                }
                if a.state != LinkState::Up {
                    return Err(PhyError::LinkDown(*in_link));
                }
                if b.state != LinkState::Up {
                    return Err(PhyError::LinkDown(*out_link));
                }
                state.bypasses.install(Bypass {
                    at_node: *at_node,
                    in_link: *in_link,
                    out_link: *out_link,
                    latency: Bypass::default_latency(),
                })?;
                completion.affected = vec![*in_link, *out_link];
            }
            PlpCommand::DisableBypass { at_node, in_link } => {
                state.bypasses.remove(*at_node, *in_link);
                completion.affected = vec![*in_link];
            }
        }
        Ok(completion)
    }

    fn check_bundle_compatible(state: &PhyState, from: LinkId, to: LinkId) -> Result<(), PhyError> {
        let a = state.links.get(&from).ok_or(PhyError::UnknownLink(from))?;
        let b = state.links.get(&to).ok_or(PhyError::UnknownLink(to))?;
        let same_endpoints = a.connects(b.endpoint_a, b.endpoint_b);
        let same_media = a.media.kind == b.media.kind;
        if !same_endpoints || !same_media {
            return Err(PhyError::IncompatibleBundle(from, to));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_with_two_parallel_links() -> (PhyState, LinkId, LinkId) {
        let mut s = PhyState::new();
        let a = s.add_link(
            0,
            1,
            Media::optical_fiber(),
            Length::from_m(2),
            4,
            BitRate::from_gbps(25),
        );
        let b = s.add_link(
            0,
            1,
            Media::optical_fiber(),
            Length::from_m(2),
            4,
            BitRate::from_gbps(25),
        );
        (s, a, b)
    }

    #[test]
    fn add_link_assigns_unique_ids_and_lanes() {
        let (s, a, b) = state_with_two_parallel_links();
        assert_ne!(a, b);
        assert_eq!(s.link_count(), 2);
        let lane_ids: Vec<u64> = s
            .links()
            .flat_map(|l| l.lanes.iter().map(|x| x.id.0))
            .collect();
        let mut sorted = lane_ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), lane_ids.len(), "lane ids must be unique");
        assert_eq!(s.capacity_between(0, 1), BitRate::from_gbps(200));
        assert!(s.find_link_between(0, 1).is_some());
        assert!(s.find_link_between(0, 2).is_none());
    }

    #[test]
    fn split_creates_a_new_link_toward_a_new_peer() {
        let (mut s, a, _) = state_with_two_parallel_links();
        let exec = PlpExecutor::default();
        let done = exec
            .execute(
                &mut s,
                &PlpCommand::SplitLink {
                    link: a,
                    lanes: 2,
                    new_a: 0,
                    new_b: 5,
                },
            )
            .unwrap();
        let new_id = done.new_link.expect("split must create a link");
        assert_eq!(done.duration, PlpTiming::default().split);
        assert_eq!(s.link(a).unwrap().total_lanes(), 2);
        let new_link = s.link(new_id).unwrap();
        assert_eq!(new_link.total_lanes(), 2);
        assert!(new_link.connects(0, 5));
        assert_eq!(new_link.raw_capacity(), BitRate::from_gbps(50));
        // Splitting more lanes than remain fails.
        assert!(exec
            .execute(
                &mut s,
                &PlpCommand::SplitLink {
                    link: a,
                    lanes: 2,
                    new_a: 0,
                    new_b: 6
                }
            )
            .is_err());
    }

    #[test]
    fn bundle_merges_parallel_links() {
        let (mut s, a, b) = state_with_two_parallel_links();
        let exec = PlpExecutor::default();
        let done = exec
            .execute(&mut s, &PlpCommand::BundleLinks { from: b, into: a })
            .unwrap();
        assert_eq!(done.affected, vec![b, a]);
        assert_eq!(s.link_count(), 1);
        assert_eq!(s.link(a).unwrap().total_lanes(), 8);
        assert_eq!(s.capacity_between(0, 1), BitRate::from_gbps(200));
        assert!(s.link(b).is_none());
    }

    #[test]
    fn bundle_rejects_incompatible_links() {
        let mut s = PhyState::new();
        let a = s.add_link(
            0,
            1,
            Media::optical_fiber(),
            Length::from_m(2),
            4,
            BitRate::from_gbps(25),
        );
        let c = s.add_link(
            0,
            2,
            Media::optical_fiber(),
            Length::from_m(2),
            4,
            BitRate::from_gbps(25),
        );
        let d = s.add_link(
            0,
            1,
            Media::copper_dac(),
            Length::from_m(2),
            4,
            BitRate::from_gbps(25),
        );
        let exec = PlpExecutor::default();
        // Different endpoints.
        assert!(matches!(
            exec.execute(&mut s, &PlpCommand::BundleLinks { from: c, into: a }),
            Err(PhyError::IncompatibleBundle(_, _))
        ));
        // Different media.
        assert!(matches!(
            exec.execute(&mut s, &PlpCommand::BundleLinks { from: d, into: a }),
            Err(PhyError::IncompatibleBundle(_, _))
        ));
    }

    #[test]
    fn move_lanes_between_parallel_links() {
        let (mut s, a, b) = state_with_two_parallel_links();
        let exec = PlpExecutor::default();
        exec.execute(
            &mut s,
            &PlpCommand::MoveLanes {
                from: a,
                to: b,
                lanes: 3,
            },
        )
        .unwrap();
        assert_eq!(s.link(a).unwrap().total_lanes(), 1);
        assert_eq!(s.link(b).unwrap().total_lanes(), 7);
    }

    #[test]
    fn set_power_and_active_lanes() {
        let (mut s, a, _) = state_with_two_parallel_links();
        let exec = PlpExecutor::default();
        exec.execute(&mut s, &PlpCommand::SetActiveLanes { link: a, lanes: 1 })
            .unwrap();
        assert_eq!(s.link(a).unwrap().raw_capacity(), BitRate::from_gbps(25));
        exec.execute(
            &mut s,
            &PlpCommand::SetPower {
                link: a,
                state: PowerState::Off,
            },
        )
        .unwrap();
        assert_eq!(s.link(a).unwrap().raw_capacity(), BitRate::ZERO);
        assert_eq!(s.power_state(a), PowerState::Off);
        exec.execute(
            &mut s,
            &PlpCommand::SetPower {
                link: a,
                state: PowerState::Active,
            },
        )
        .unwrap();
        assert_eq!(s.power_state(a), PowerState::Active);
        assert!(s.link(a).unwrap().raw_capacity() > BitRate::ZERO);
    }

    #[test]
    fn set_fec_on_unknown_or_down_link_fails() {
        let (mut s, a, _) = state_with_two_parallel_links();
        let exec = PlpExecutor::default();
        assert!(matches!(
            exec.execute(
                &mut s,
                &PlpCommand::SetFec {
                    link: LinkId(99),
                    mode: FecMode::Rs528
                }
            ),
            Err(PhyError::UnknownLink(_))
        ));
        exec.execute(
            &mut s,
            &PlpCommand::SetPower {
                link: a,
                state: PowerState::Off,
            },
        )
        .unwrap();
        assert!(matches!(
            exec.execute(
                &mut s,
                &PlpCommand::SetFec {
                    link: a,
                    mode: FecMode::Rs528
                }
            ),
            Err(PhyError::LinkDown(_))
        ));
    }

    #[test]
    fn bypass_requires_shared_node_and_up_links() {
        let mut s = PhyState::new();
        let ab = s.add_link(
            0,
            1,
            Media::optical_fiber(),
            Length::from_m(2),
            4,
            BitRate::from_gbps(25),
        );
        let bc = s.add_link(
            1,
            2,
            Media::optical_fiber(),
            Length::from_m(2),
            4,
            BitRate::from_gbps(25),
        );
        let cd = s.add_link(
            2,
            3,
            Media::optical_fiber(),
            Length::from_m(2),
            4,
            BitRate::from_gbps(25),
        );
        let exec = PlpExecutor::default();
        // ab and cd do not meet at node 1.
        assert!(matches!(
            exec.execute(
                &mut s,
                &PlpCommand::EnableBypass {
                    at_node: 1,
                    in_link: ab,
                    out_link: cd
                }
            ),
            Err(PhyError::BypassEndpointMismatch(_, _))
        ));
        // ab and bc meet at node 1: ok.
        exec.execute(
            &mut s,
            &PlpCommand::EnableBypass {
                at_node: 1,
                in_link: ab,
                out_link: bc,
            },
        )
        .unwrap();
        assert_eq!(s.bypasses.len(), 1);
        // Installing a second bypass on the same ingress fails.
        assert!(exec
            .execute(
                &mut s,
                &PlpCommand::EnableBypass {
                    at_node: 1,
                    in_link: ab,
                    out_link: bc
                }
            )
            .is_err());
        // Disable removes it.
        exec.execute(
            &mut s,
            &PlpCommand::DisableBypass {
                at_node: 1,
                in_link: ab,
            },
        )
        .unwrap();
        assert!(s.bypasses.is_empty());
    }

    #[test]
    fn powering_off_a_link_purges_its_bypasses() {
        let mut s = PhyState::new();
        let ab = s.add_link(
            0,
            1,
            Media::optical_fiber(),
            Length::from_m(2),
            4,
            BitRate::from_gbps(25),
        );
        let bc = s.add_link(
            1,
            2,
            Media::optical_fiber(),
            Length::from_m(2),
            4,
            BitRate::from_gbps(25),
        );
        let exec = PlpExecutor::default();
        exec.execute(
            &mut s,
            &PlpCommand::EnableBypass {
                at_node: 1,
                in_link: ab,
                out_link: bc,
            },
        )
        .unwrap();
        exec.execute(
            &mut s,
            &PlpCommand::SetPower {
                link: bc,
                state: PowerState::Off,
            },
        )
        .unwrap();
        assert!(
            s.bypasses.is_empty(),
            "bypass through a dead link must be purged"
        );
    }

    #[test]
    fn telemetry_report_covers_every_link() {
        let (s, a, b) = state_with_two_parallel_links();
        let mut util = HashMap::new();
        util.insert(a, 0.9);
        let report = s.telemetry_report(
            SimTime::from_micros(7),
            &util,
            &HashMap::new(),
            &HashMap::new(),
        );
        assert_eq!(report.links.len(), 2);
        assert_eq!(report.link(a).unwrap().utilization, 0.9);
        assert_eq!(report.link(b).unwrap().utilization, 0.0);
        assert!(report.total_power > Power::ZERO);
        assert_eq!(report.active_bypasses, 0);
    }

    #[test]
    fn total_power_includes_dynamic_and_bypass_terms() {
        let (mut s, a, b) = state_with_two_parallel_links();
        let idle = s.total_power(&HashMap::new());
        let mut tput = HashMap::new();
        tput.insert(a, BitRate::from_gbps(100));
        let busy = s.total_power(&tput);
        assert!(busy > idle);
        let exec = PlpExecutor::default();
        exec.execute(
            &mut s,
            &PlpCommand::EnableBypass {
                at_node: 0,
                in_link: a,
                out_link: b,
            },
        )
        .unwrap();
        assert!(s.total_power(&HashMap::new()) > idle);
    }

    #[test]
    fn timing_scaling_is_linear() {
        let t = PlpTiming::default();
        let slow = t.scaled(10.0);
        assert_eq!(slow.split.as_picos(), t.split.as_picos() * 10);
        assert_eq!(
            slow.latency_of(&PlpCommand::SetFec {
                link: LinkId(0),
                mode: FecMode::None
            }),
            t.set_fec.mul_f64(10.0)
        );
    }
}
