//! Transmission media.
//!
//! The paper is explicitly *media agnostic*: the architecture only requires
//! that whatever medium is in use exposes some subset of the Physical Layer
//! Primitives. The simulator still needs concrete numbers for propagation
//! velocity, attenuation and per-lane reach, so this module provides the
//! three media found inside a rack-scale system: direct-attach copper,
//! multi-mode optical fibre, and the electrical backplane connecting sleds in
//! the same chassis.

use rackfabric_sim::time::SimDuration;
use rackfabric_sim::units::Length;
use serde::{Deserialize, Serialize};

/// The family a medium belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MediaKind {
    /// Direct-attach copper (twinax) cable.
    CopperDac,
    /// Multi-mode optical fibre with VCSEL optics.
    OpticalFiber,
    /// PCB backplane traces inside a chassis.
    Backplane,
}

/// A concrete medium instance with its signal-propagation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Media {
    /// Which family this medium is.
    pub kind: MediaKind,
    /// Propagation velocity as a fraction of c.
    pub velocity_factor: f64,
    /// Attenuation in dB per metre at the lane's Nyquist frequency.
    pub attenuation_db_per_m: f64,
    /// Fixed loss of the connectors / transceivers at both ends, in dB.
    pub connector_loss_db: f64,
    /// Transmit-side signal-to-noise ratio in dB before channel loss.
    pub tx_snr_db: f64,
    /// Maximum supported reach; links longer than this refuse to train.
    pub max_reach: Length,
}

impl Media {
    /// Direct-attach copper: cheap and low power but lossy, practical up to a
    /// few metres at 25 Gb/s per lane.
    pub fn copper_dac() -> Media {
        Media {
            kind: MediaKind::CopperDac,
            velocity_factor: 0.70,
            attenuation_db_per_m: 6.0,
            connector_loss_db: 1.5,
            tx_snr_db: 36.0,
            max_reach: Length::from_m(7),
        }
    }

    /// Multi-mode fibre: low loss, rack-length reach, higher transceiver
    /// power.
    pub fn optical_fiber() -> Media {
        Media {
            kind: MediaKind::OpticalFiber,
            velocity_factor: 0.66,
            attenuation_db_per_m: 0.0035,
            connector_loss_db: 3.0,
            tx_snr_db: 34.0,
            max_reach: Length::from_m(100),
        }
    }

    /// Chassis backplane: very short, moderately lossy PCB traces.
    pub fn backplane() -> Media {
        Media {
            kind: MediaKind::Backplane,
            velocity_factor: 0.48,
            attenuation_db_per_m: 20.0,
            connector_loss_db: 1.0,
            tx_snr_db: 38.0,
            max_reach: Length::from_m(1),
        }
    }

    /// Constructs the default medium for a kind.
    pub fn of_kind(kind: MediaKind) -> Media {
        match kind {
            MediaKind::CopperDac => Media::copper_dac(),
            MediaKind::OpticalFiber => Media::optical_fiber(),
            MediaKind::Backplane => Media::backplane(),
        }
    }

    /// Propagation delay across `length` of this medium.
    pub fn propagation_delay(&self, length: Length) -> SimDuration {
        length.propagation_delay(self.velocity_factor)
    }

    /// Total channel loss in dB across `length`, including connectors.
    pub fn channel_loss_db(&self, length: Length) -> f64 {
        self.attenuation_db_per_m * length.as_m_f64() + self.connector_loss_db
    }

    /// True if a link of this length can train at all.
    pub fn supports_reach(&self, length: Length) -> bool {
        length <= self.max_reach
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_have_sensible_ordering() {
        let copper = Media::copper_dac();
        let fiber = Media::optical_fiber();
        let backplane = Media::backplane();
        // Fibre loses far less signal per metre than copper, which loses less
        // than PCB trace.
        assert!(fiber.attenuation_db_per_m < copper.attenuation_db_per_m);
        assert!(copper.attenuation_db_per_m < backplane.attenuation_db_per_m);
        // Fibre reaches the whole rack, copper a few metres, backplane less.
        assert!(fiber.max_reach > copper.max_reach);
        assert!(copper.max_reach > backplane.max_reach);
    }

    #[test]
    fn propagation_is_roughly_5ns_per_metre_in_fibre() {
        let fiber = Media::optical_fiber();
        let d = fiber.propagation_delay(Length::from_m(1));
        let ns = d.as_nanos_f64();
        assert!((4.5..5.5).contains(&ns), "1 m of fibre was {ns} ns");
        // The paper's 2 m inter-switch hop is therefore ~10 ns of media delay.
        let hop = fiber.propagation_delay(Length::from_m(2)).as_nanos_f64();
        assert!((9.0..11.0).contains(&hop));
    }

    #[test]
    fn copper_is_slightly_faster_than_fibre_per_metre() {
        let copper = Media::copper_dac().propagation_delay(Length::from_m(2));
        let fiber = Media::optical_fiber().propagation_delay(Length::from_m(2));
        assert!(copper < fiber, "copper velocity factor is higher");
    }

    #[test]
    fn channel_loss_grows_with_length() {
        let copper = Media::copper_dac();
        assert!(
            copper.channel_loss_db(Length::from_m(3)) > copper.channel_loss_db(Length::from_m(1))
        );
        // 3 m DAC: 6 dB/m * 3 + 1.5 = 19.5 dB.
        assert!((copper.channel_loss_db(Length::from_m(3)) - 19.5).abs() < 1e-9);
    }

    #[test]
    fn reach_limits_are_enforced() {
        assert!(Media::copper_dac().supports_reach(Length::from_m(5)));
        assert!(!Media::copper_dac().supports_reach(Length::from_m(20)));
        assert!(Media::optical_fiber().supports_reach(Length::from_m(40)));
        assert!(!Media::backplane().supports_reach(Length::from_m(2)));
    }

    #[test]
    fn of_kind_round_trips() {
        for kind in [
            MediaKind::CopperDac,
            MediaKind::OpticalFiber,
            MediaKind::Backplane,
        ] {
            assert_eq!(Media::of_kind(kind).kind, kind);
        }
    }
}
