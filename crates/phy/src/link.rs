//! Links: bundles of lanes between two endpoints.
//!
//! A link is the object the Closed Ring Control prices and the Physical
//! Layer Primitives manipulate. It owns a set of [`Lane`]s, a [`Media`], a
//! physical length and a [`FecMode`]; its effective capacity, traversal
//! latency, error rate and power draw all derive from those.

use crate::error::PhyError;
use crate::fec::FecMode;
use crate::lane::{Lane, LaneId, LaneState};
use crate::media::Media;
use crate::signal;
use crate::stats::LinkTelemetry;
use rackfabric_sim::time::{SimDuration, SimTime};
use rackfabric_sim::units::{BitRate, Bytes, Length, Power};
use serde::{Deserialize, Serialize};

/// Identifier of a link within the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u64);

/// Administrative/operational state of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LinkState {
    /// Carrying traffic.
    #[default]
    Up,
    /// Administratively or operationally down (PLP #3 with `on = false`).
    Down,
    /// Mid-reconfiguration (splitting, bundling, retraining after an FEC
    /// change); traffic is paused until the PLP completion fires.
    Reconfiguring,
}

/// A physical link: a bundle of lanes over one medium between two endpoints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    /// Fabric-wide identifier.
    pub id: LinkId,
    /// One endpoint (node index as assigned by the topology layer).
    pub endpoint_a: u32,
    /// The other endpoint.
    pub endpoint_b: u32,
    /// Medium this link runs over.
    pub media: Media,
    /// Physical length of the cable / trace.
    pub length: Length,
    /// The lanes bundled into this link.
    pub lanes: Vec<Lane>,
    /// FEC codec applied on every lane.
    pub fec: FecMode,
    /// Operational state.
    pub state: LinkState,
}

impl Link {
    /// Creates a link of `num_lanes` lanes, each at `lane_rate`, assigning
    /// lane ids starting from `first_lane_id`. BER is initialised from the
    /// signal-integrity model.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: LinkId,
        endpoint_a: u32,
        endpoint_b: u32,
        media: Media,
        length: Length,
        num_lanes: usize,
        lane_rate: BitRate,
        first_lane_id: u64,
    ) -> Self {
        let lanes = (0..num_lanes)
            .map(|i| Lane::new(LaneId(first_lane_id + i as u64), lane_rate))
            .collect();
        let mut link = Link {
            id,
            endpoint_a,
            endpoint_b,
            media,
            length,
            lanes,
            fec: FecMode::None,
            state: LinkState::Up,
        };
        link.refresh_ber();
        link
    }

    /// True if the link connects `a` and `b` (in either orientation).
    pub fn connects(&self, a: u32, b: u32) -> bool {
        (self.endpoint_a == a && self.endpoint_b == b)
            || (self.endpoint_a == b && self.endpoint_b == a)
    }

    /// True if the link touches node `n`.
    pub fn touches(&self, n: u32) -> bool {
        self.endpoint_a == n || self.endpoint_b == n
    }

    /// Number of lanes currently usable (up).
    pub fn active_lanes(&self) -> usize {
        self.lanes.iter().filter(|l| l.state.is_usable()).count()
    }

    /// Number of lanes physically attached.
    pub fn total_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Raw aggregate signalling rate of the usable lanes.
    pub fn raw_capacity(&self) -> BitRate {
        if self.state != LinkState::Up {
            return BitRate::ZERO;
        }
        self.lanes.iter().map(|l| l.usable_rate()).sum()
    }

    /// Effective capacity after FEC overhead.
    pub fn capacity(&self) -> BitRate {
        self.fec.effective_rate(self.raw_capacity())
    }

    /// Time to serialize `size` onto the link at its effective capacity.
    pub fn serialization_delay(&self, size: Bytes) -> SimDuration {
        self.capacity().serialization_delay(size)
    }

    /// Propagation delay across the link's medium and length.
    pub fn propagation_delay(&self) -> SimDuration {
        self.media.propagation_delay(self.length)
    }

    /// Latency added by the FEC encoder/decoder pair.
    pub fn fec_latency(&self) -> SimDuration {
        self.fec.added_latency()
    }

    /// One-way traversal latency of a frame of `size`: serialization +
    /// propagation + FEC. Queueing and switching are accounted by the switch
    /// layer, not here.
    pub fn traversal_latency(&self, size: Bytes) -> SimDuration {
        self.serialization_delay(size) + self.propagation_delay() + self.fec_latency()
    }

    /// Recomputes each lane's pre-FEC BER from the signal-integrity model
    /// (media, length, per-lane rate, per-lane impairment).
    pub fn refresh_ber(&mut self) {
        for lane in &mut self.lanes {
            lane.pre_fec_ber =
                signal::lane_ber(&self.media, self.length, lane.rate, lane.impairment_db);
        }
    }

    /// Worst pre-FEC BER across usable lanes (1e-18 floor when no lanes).
    pub fn worst_pre_fec_ber(&self) -> f64 {
        self.lanes
            .iter()
            .filter(|l| l.state.is_usable())
            .map(|l| l.pre_fec_ber)
            .fold(1e-18, f64::max)
    }

    /// Post-FEC BER of the link with the currently configured codec.
    pub fn post_fec_ber(&self) -> f64 {
        self.fec.post_fec_ber_from_pre(self.worst_pre_fec_ber())
    }

    /// Changes the FEC mode. The caller (PLP executor) is responsible for
    /// modelling the retraining latency.
    pub fn set_fec(&mut self, mode: FecMode) {
        self.fec = mode;
    }

    /// Sets the number of usable lanes by powering lanes up or down, highest
    /// lane index first (PLP #1 at the "thin out a link" end, PLP #3 per
    /// lane). Requesting more usable lanes than physically attached is an
    /// error.
    pub fn set_active_lanes(&mut self, usable: usize) -> Result<(), PhyError> {
        if usable > self.lanes.len() {
            return Err(PhyError::NotEnoughLanes {
                link: self.id,
                requested: usable,
                available: self.lanes.len(),
            });
        }
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            let want_up = i < usable;
            let is_up = lane.state.is_usable();
            if want_up && !is_up {
                lane.set_state(LaneState::Up);
            } else if !want_up && is_up {
                lane.set_state(LaneState::Off);
            }
        }
        Ok(())
    }

    /// Removes `k` lanes from the tail of the bundle and returns them (PLP
    /// #1: link breaking). The removed lanes keep their identities so they
    /// can be re-bundled onto another link.
    pub fn take_lanes(&mut self, k: usize) -> Result<Vec<Lane>, PhyError> {
        if k >= self.lanes.len() {
            return Err(PhyError::NotEnoughLanes {
                link: self.id,
                requested: k,
                available: self.lanes.len(),
            });
        }
        let at = self.lanes.len() - k;
        Ok(self.lanes.split_off(at))
    }

    /// Appends lanes to the bundle (PLP #1: bundling).
    pub fn add_lanes(&mut self, mut lanes: Vec<Lane>) {
        self.lanes.append(&mut lanes);
        self.refresh_ber();
    }

    /// Powers the whole link on or off (PLP #3).
    pub fn set_power(&mut self, on: bool) {
        self.state = if on { LinkState::Up } else { LinkState::Down };
        for lane in &mut self.lanes {
            lane.set_state(if on { LaneState::Up } else { LaneState::Off });
        }
    }

    /// Distributes `bytes` of carried traffic across the usable lanes (round
    /// robin by byte count is indistinguishable at this granularity).
    pub fn record_traffic(&mut self, now: SimTime, bytes: u64) {
        let usable: Vec<usize> = self
            .lanes
            .iter()
            .enumerate()
            .filter(|(_, l)| l.state.is_usable())
            .map(|(i, _)| i)
            .collect();
        if usable.is_empty() {
            return;
        }
        let per_lane = bytes / usable.len() as u64;
        let mut remainder = bytes % usable.len() as u64;
        for idx in usable {
            let extra = if remainder > 0 {
                remainder -= 1;
                1
            } else {
                0
            };
            self.lanes[idx].record_traffic(now, per_lane + extra);
        }
    }

    /// Builds a telemetry snapshot. Utilization, queue occupancy and power
    /// are supplied by the switch layer and power model respectively, because
    /// the link itself does not know about queues or the power state machine.
    pub fn telemetry(
        &self,
        at: SimTime,
        utilization: f64,
        queue_occupancy_bytes: f64,
        power: Power,
    ) -> LinkTelemetry {
        LinkTelemetry {
            link: self.id,
            at,
            active_lanes: self.active_lanes(),
            total_lanes: self.total_lanes(),
            capacity: self.capacity(),
            utilization,
            worst_pre_fec_ber: self.worst_pre_fec_ber(),
            post_fec_ber: self.post_fec_ber(),
            fec_mode: self.fec,
            latency: self.traversal_latency(Bytes::new(1500)),
            queue_occupancy_bytes,
            power,
            up: self.state == LinkState::Up,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn four_lane_link() -> Link {
        Link::new(
            LinkId(0),
            0,
            1,
            Media::optical_fiber(),
            Length::from_m(2),
            4,
            BitRate::from_gbps(25),
            0,
        )
    }

    #[test]
    fn hundred_gig_link_from_four_lanes() {
        let link = four_lane_link();
        assert_eq!(link.total_lanes(), 4);
        assert_eq!(link.active_lanes(), 4);
        assert_eq!(link.raw_capacity(), BitRate::from_gbps(100));
        // With no FEC, effective == raw.
        assert_eq!(link.capacity(), BitRate::from_gbps(100));
        assert!(link.connects(0, 1) && link.connects(1, 0));
        assert!(link.touches(0) && !link.touches(7));
    }

    #[test]
    fn traversal_latency_components_add_up() {
        let link = four_lane_link();
        let frame = Bytes::new(1500);
        let total = link.traversal_latency(frame);
        let sum = link.serialization_delay(frame) + link.propagation_delay() + link.fec_latency();
        assert_eq!(total, sum);
        // 1500 B at 100 G is 120 ns; 2 m fibre is ~10 ns; no FEC.
        let ns = total.as_nanos_f64();
        assert!((125.0..140.0).contains(&ns), "traversal was {ns} ns");
    }

    #[test]
    fn fec_reduces_capacity_and_adds_latency_but_cleans_ber() {
        let mut link = Link::new(
            LinkId(1),
            0,
            1,
            Media::copper_dac(),
            Length::from_m(5),
            4,
            BitRate::from_gbps(50),
            0,
        );
        let ber_before = link.post_fec_ber();
        let cap_before = link.capacity();
        let lat_before = link.traversal_latency(Bytes::new(1500));
        link.set_fec(FecMode::Rs544);
        assert!(link.capacity() < cap_before);
        assert!(link.traversal_latency(Bytes::new(1500)) > lat_before);
        assert!(link.post_fec_ber() < ber_before);
    }

    #[test]
    fn set_active_lanes_halves_capacity() {
        let mut link = four_lane_link();
        link.set_active_lanes(2).unwrap();
        assert_eq!(link.active_lanes(), 2);
        assert_eq!(link.raw_capacity(), BitRate::from_gbps(50));
        link.set_active_lanes(4).unwrap();
        assert_eq!(link.raw_capacity(), BitRate::from_gbps(100));
        assert!(link.set_active_lanes(5).is_err());
    }

    #[test]
    fn take_and_add_lanes_preserve_identity() {
        let mut link = four_lane_link();
        let taken = link.take_lanes(2).unwrap();
        assert_eq!(taken.len(), 2);
        assert_eq!(link.total_lanes(), 2);
        assert_eq!(link.raw_capacity(), BitRate::from_gbps(50));
        let ids: Vec<u64> = taken.iter().map(|l| l.id.0).collect();
        assert_eq!(ids, vec![2, 3]);
        // Cannot take every lane: a link must keep at least one.
        assert!(link.take_lanes(2).is_err());
        link.add_lanes(taken);
        assert_eq!(link.total_lanes(), 4);
    }

    #[test]
    fn power_off_removes_capacity() {
        let mut link = four_lane_link();
        link.set_power(false);
        assert_eq!(link.state, LinkState::Down);
        assert_eq!(link.raw_capacity(), BitRate::ZERO);
        assert_eq!(link.capacity(), BitRate::ZERO);
        link.set_power(true);
        assert_eq!(link.raw_capacity(), BitRate::from_gbps(100));
    }

    #[test]
    fn ber_refresh_tracks_length_and_rate() {
        let short = Link::new(
            LinkId(0),
            0,
            1,
            Media::copper_dac(),
            Length::from_m(1),
            4,
            BitRate::from_gbps(25),
            0,
        );
        let long = Link::new(
            LinkId(1),
            0,
            1,
            Media::copper_dac(),
            Length::from_m(5),
            4,
            BitRate::from_gbps(50),
            4,
        );
        assert!(long.worst_pre_fec_ber() > short.worst_pre_fec_ber());
    }

    #[test]
    fn traffic_is_spread_across_usable_lanes() {
        let mut link = four_lane_link();
        link.set_active_lanes(3).unwrap();
        link.record_traffic(SimTime::from_micros(1), 10);
        let carried: Vec<u64> = link.lanes.iter().map(|l| l.stats.bytes_carried).collect();
        assert_eq!(carried.iter().sum::<u64>(), 10);
        assert_eq!(carried[3], 0, "the powered-down lane must carry nothing");
        assert!(carried[0] >= 3 && carried[0] <= 4);
    }

    #[test]
    fn traffic_on_fully_down_link_is_dropped_silently() {
        let mut link = four_lane_link();
        link.set_power(false);
        link.record_traffic(SimTime::from_micros(1), 1000);
        assert!(link.lanes.iter().all(|l| l.stats.bytes_carried == 0));
    }

    #[test]
    fn telemetry_snapshot_reflects_link_state() {
        let mut link = four_lane_link();
        link.set_fec(FecMode::Rs528);
        link.set_active_lanes(2).unwrap();
        let t = link.telemetry(SimTime::from_micros(3), 0.7, 12_000.0, Power::from_watts(2));
        assert_eq!(t.link, link.id);
        assert_eq!(t.active_lanes, 2);
        assert_eq!(t.total_lanes, 4);
        assert_eq!(t.fec_mode, FecMode::Rs528);
        assert!(t.up);
        assert!((t.utilization - 0.7).abs() < 1e-12);
        assert!(t.capacity < BitRate::from_gbps(50));
        assert!(t.latency > SimDuration::from_nanos(100));
    }
}
