//! Physical-layer error type.

use crate::lane::LaneId;
use crate::link::LinkId;
use std::fmt;

/// Errors returned by physical-layer operations and PLP command execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhyError {
    /// The referenced link does not exist in the physical state.
    UnknownLink(LinkId),
    /// The referenced lane does not exist on the link.
    UnknownLane(LinkId, LaneId),
    /// A split/bundle request asked for more lanes than the link owns.
    NotEnoughLanes {
        /// The link that was asked to give up lanes.
        link: LinkId,
        /// Lanes requested.
        requested: usize,
        /// Lanes actually present.
        available: usize,
    },
    /// The two links cannot be bundled (different endpoints or media).
    IncompatibleBundle(LinkId, LinkId),
    /// The command is not supported by the link's media/PLP capability set.
    UnsupportedPrimitive(&'static str),
    /// The link is administratively or operationally down.
    LinkDown(LinkId),
    /// A bypass was requested through a node where the two links do not meet.
    BypassEndpointMismatch(LinkId, LinkId),
    /// A bypass already exists for this ingress link.
    BypassAlreadyActive(LinkId),
    /// Generic invalid-argument error with a human-readable reason.
    Invalid(String),
}

impl fmt::Display for PhyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhyError::UnknownLink(l) => write!(f, "unknown link {l:?}"),
            PhyError::UnknownLane(l, lane) => write!(f, "unknown lane {lane:?} on link {l:?}"),
            PhyError::NotEnoughLanes {
                link,
                requested,
                available,
            } => write!(
                f,
                "link {link:?} has {available} lanes, cannot take {requested}"
            ),
            PhyError::IncompatibleBundle(a, b) => {
                write!(f, "links {a:?} and {b:?} cannot be bundled")
            }
            PhyError::UnsupportedPrimitive(p) => write!(f, "primitive {p} not supported"),
            PhyError::LinkDown(l) => write!(f, "link {l:?} is down"),
            PhyError::BypassEndpointMismatch(a, b) => {
                write!(f, "links {a:?} and {b:?} do not share a node for bypass")
            }
            PhyError::BypassAlreadyActive(l) => {
                write!(f, "a bypass is already active on link {l:?}")
            }
            PhyError::Invalid(msg) => write!(f, "invalid physical-layer request: {msg}"),
        }
    }
}

impl std::error::Error for PhyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PhyError::NotEnoughLanes {
            link: LinkId(3),
            requested: 4,
            available: 2,
        };
        let s = format!("{e}");
        assert!(s.contains("2 lanes"));
        assert!(s.contains("cannot take 4"));
        assert!(format!("{}", PhyError::UnknownLink(LinkId(9))).contains("unknown link"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(PhyError::LinkDown(LinkId(1)));
        assert!(e.to_string().contains("down"));
    }
}
