//! Physical lanes.
//!
//! A lane is the unit the PLPs reason about: a single SerDes-to-SerDes
//! channel running at (typically) 25 Gb/s. Links are bundles of lanes
//! ([`crate::link::Link`]); splitting, bundling, powering down and adaptive
//! FEC all operate at lane granularity, and PLP #5 (per-lane statistics)
//! reports the counters kept here.

use crate::stats::LaneStats;
use rackfabric_sim::time::SimTime;
use rackfabric_sim::units::BitRate;
use serde::{Deserialize, Serialize};

/// Identifier of a lane within the whole fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LaneId(pub u64);

/// Operational state of a lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LaneState {
    /// Carrying traffic.
    #[default]
    Up,
    /// Powered but still acquiring lock / aligning; not yet carrying traffic.
    Training,
    /// Powered off (PLP #3).
    Off,
    /// Declared faulty by the health monitor.
    Faulty,
}

impl LaneState {
    /// True if the lane currently contributes bandwidth.
    pub fn is_usable(self) -> bool {
        matches!(self, LaneState::Up)
    }
    /// True if the lane consumes active power.
    pub fn is_powered(self) -> bool {
        matches!(self, LaneState::Up | LaneState::Training)
    }
}

/// A single physical lane.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lane {
    /// Fabric-wide identifier.
    pub id: LaneId,
    /// Raw signalling rate of the lane.
    pub rate: BitRate,
    /// Operational state.
    pub state: LaneState,
    /// Current pre-FEC bit error rate estimate for this lane.
    pub pre_fec_ber: f64,
    /// Additional impairment margin (dB) accumulated by ageing/temperature;
    /// fed into the signal model by the owning link.
    pub impairment_db: f64,
    /// Running counters reported through PLP #5.
    pub stats: LaneStats,
}

impl Lane {
    /// Creates an up lane at `rate` with a clean channel.
    pub fn new(id: LaneId, rate: BitRate) -> Self {
        Lane {
            id,
            rate,
            state: LaneState::Up,
            pre_fec_ber: 1e-15,
            impairment_db: 0.0,
            stats: LaneStats::default(),
        }
    }

    /// The bandwidth this lane currently contributes (zero unless up).
    pub fn usable_rate(&self) -> BitRate {
        if self.state.is_usable() {
            self.rate
        } else {
            BitRate::ZERO
        }
    }

    /// Records `bytes` carried by this lane at `now`, updating utilization
    /// accounting and the expected bit-error counter.
    pub fn record_traffic(&mut self, now: SimTime, bytes: u64) {
        self.stats.bytes_carried += bytes;
        self.stats.last_activity = now;
        // Expected number of bit errors added by this transfer.
        self.stats.accumulated_bit_errors += self.pre_fec_ber * (bytes as f64 * 8.0);
    }

    /// Transitions the lane's state.
    pub fn set_state(&mut self, state: LaneState) {
        self.state = state;
        self.stats.state_transitions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_lane_is_up_and_clean() {
        let l = Lane::new(LaneId(3), BitRate::from_gbps(25));
        assert_eq!(l.state, LaneState::Up);
        assert!(l.pre_fec_ber < 1e-12);
        assert_eq!(l.usable_rate(), BitRate::from_gbps(25));
    }

    #[test]
    fn non_up_lanes_contribute_no_bandwidth() {
        let mut l = Lane::new(LaneId(0), BitRate::from_gbps(25));
        for s in [LaneState::Training, LaneState::Off, LaneState::Faulty] {
            l.set_state(s);
            assert_eq!(l.usable_rate(), BitRate::ZERO);
        }
        l.set_state(LaneState::Up);
        assert_eq!(l.usable_rate(), BitRate::from_gbps(25));
        assert_eq!(l.stats.state_transitions, 4);
    }

    #[test]
    fn state_predicates() {
        assert!(LaneState::Up.is_usable());
        assert!(!LaneState::Training.is_usable());
        assert!(LaneState::Training.is_powered());
        assert!(!LaneState::Off.is_powered());
        assert!(!LaneState::Faulty.is_powered());
    }

    #[test]
    fn traffic_accounting_accumulates_errors() {
        let mut l = Lane::new(LaneId(1), BitRate::from_gbps(25));
        l.pre_fec_ber = 1e-9;
        l.record_traffic(SimTime::from_micros(5), 1_000_000); // 8e6 bits
        assert_eq!(l.stats.bytes_carried, 1_000_000);
        assert!((l.stats.accumulated_bit_errors - 8e-3).abs() < 1e-12);
        assert_eq!(l.stats.last_activity, SimTime::from_micros(5));
        l.record_traffic(SimTime::from_micros(6), 1_000_000);
        assert_eq!(l.stats.bytes_carried, 2_000_000);
    }
}
