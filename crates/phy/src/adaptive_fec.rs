//! Adaptive forward error correction — PLP #4.
//!
//! The controller picks, per link, the *weakest* FEC codec that still meets a
//! post-FEC BER target, because every step up the ladder costs latency,
//! bandwidth overhead and power (see [`crate::fec::FecMode`]). A hysteresis
//! margin stops the choice from flapping when the channel sits exactly at a
//! codec's threshold.

use crate::fec::FecMode;
use crate::link::Link;
use serde::{Deserialize, Serialize};

/// Policy for choosing FEC codecs from link BER telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveFecController {
    /// Post-FEC BER the fabric must stay below (typical Ethernet target is
    /// 1e-12 or better).
    pub ber_target: f64,
    /// A mode is only relaxed (made weaker) if the weaker mode beats the
    /// target by this many decades; prevents flapping at the boundary.
    pub hysteresis_decades: f64,
}

impl Default for AdaptiveFecController {
    fn default() -> Self {
        AdaptiveFecController {
            ber_target: 1e-12,
            hysteresis_decades: 1.0,
        }
    }
}

impl AdaptiveFecController {
    /// Creates a controller with an explicit BER target.
    pub fn with_target(ber_target: f64) -> Self {
        AdaptiveFecController {
            ber_target,
            ..Default::default()
        }
    }

    /// The weakest mode whose post-FEC BER meets `target`, or the strongest
    /// mode if none do (best effort on a hopeless channel).
    pub fn weakest_sufficient(&self, pre_fec_ber: f64, target: f64) -> FecMode {
        for mode in FecMode::ALL {
            if mode.post_fec_ber_from_pre(pre_fec_ber) <= target {
                return mode;
            }
        }
        FecMode::Rs544
    }

    /// Recommends a codec for `link` given its current pre-FEC BER. Returns
    /// `None` when the currently configured codec should be kept (either it
    /// is already the right one, or switching would not clear the hysteresis
    /// margin).
    pub fn recommend(&self, link: &Link) -> Option<FecMode> {
        let pre = link.worst_pre_fec_ber();
        let current = link.fec;
        let ideal = self.weakest_sufficient(pre, self.ber_target);

        if ideal == current {
            return None;
        }
        // Strengthening: always do it as soon as the target is violated.
        if (ideal as usize) > (current as usize)
            || FecMode::ALL.iter().position(|m| *m == ideal)
                > FecMode::ALL.iter().position(|m| *m == current)
        {
            return Some(ideal);
        }
        // Weakening: only if the weaker codec beats the target by the
        // hysteresis margin.
        let relaxed_target = self.ber_target * 10f64.powf(-self.hysteresis_decades);
        let relaxed_ideal = self.weakest_sufficient(pre, relaxed_target);
        if relaxed_ideal != current {
            Some(relaxed_ideal)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkId;
    use crate::media::Media;
    use rackfabric_sim::units::{BitRate, Length};

    fn link_with_ber(ber: f64) -> Link {
        let mut l = Link::new(
            LinkId(0),
            0,
            1,
            Media::copper_dac(),
            Length::from_m(2),
            4,
            BitRate::from_gbps(25),
            0,
        );
        for lane in &mut l.lanes {
            lane.pre_fec_ber = ber;
        }
        l
    }

    #[test]
    fn clean_channel_needs_no_fec() {
        let ctl = AdaptiveFecController::default();
        assert_eq!(ctl.weakest_sufficient(1e-15, 1e-12), FecMode::None);
        let l = link_with_ber(1e-15);
        assert_eq!(ctl.recommend(&l), None, "already at None, keep it");
    }

    #[test]
    fn marginal_channel_gets_the_weakest_sufficient_code() {
        let ctl = AdaptiveFecController::default();
        // A fairly bad channel needs a stronger code than a mild one.
        let mild = ctl.weakest_sufficient(1e-8, 1e-12);
        let bad = ctl.weakest_sufficient(1e-5, 1e-12);
        assert!(mild != FecMode::None);
        let order = |m: FecMode| FecMode::ALL.iter().position(|x| *x == m).unwrap();
        assert!(order(bad) >= order(mild));
    }

    #[test]
    fn hopeless_channel_gets_strongest_code() {
        let ctl = AdaptiveFecController::default();
        assert_eq!(ctl.weakest_sufficient(0.1, 1e-12), FecMode::Rs544);
    }

    #[test]
    fn degradation_triggers_strengthening() {
        let ctl = AdaptiveFecController::default();
        let l = link_with_ber(1e-6);
        let rec = ctl.recommend(&l).expect("a 1e-6 channel needs FEC");
        assert_ne!(rec, FecMode::None);
    }

    #[test]
    fn recovery_only_relaxes_past_hysteresis() {
        let ctl = AdaptiveFecController::default();
        // Configure a strong code on a now-clean channel: should relax.
        let mut l = link_with_ber(1e-15);
        l.set_fec(FecMode::Rs544);
        assert_eq!(ctl.recommend(&l), Some(FecMode::None));

        // A channel that only just meets the target with no FEC must NOT be
        // relaxed away from its current (stronger) setting.
        // Find a pre-FEC BER where None meets 1e-12 but not 1e-13.
        let mut marginal = None;
        let mut ber = 1e-16;
        while ber < 1e-10 {
            let post = FecMode::None.post_fec_ber_from_pre(ber);
            if post <= 1e-12 && post > 1e-13 {
                marginal = Some(ber);
                break;
            }
            ber *= 1.5;
        }
        if let Some(ber) = marginal {
            let mut l2 = link_with_ber(ber);
            l2.set_fec(FecMode::FireCode);
            assert_eq!(
                ctl.recommend(&l2),
                None,
                "marginal channel must keep its stronger codec (hysteresis)"
            );
        }
    }

    #[test]
    fn recommendation_is_stable_under_repeated_evaluation() {
        let ctl = AdaptiveFecController::default();
        let mut l = link_with_ber(1e-7);
        if let Some(m) = ctl.recommend(&l) {
            l.set_fec(m);
        }
        // Applying the recommendation leaves nothing more to recommend.
        assert_eq!(ctl.recommend(&l), None);
    }
}
