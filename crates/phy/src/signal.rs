//! Signal-integrity model: from channel loss to a pre-FEC bit error rate.
//!
//! The model is intentionally simple but has the right shape: the received
//! SNR is the transmit SNR minus the channel loss minus a rate penalty
//! (doubling the per-lane rate costs ~3 dB), and the bit error rate follows
//! the standard Q-function of the SNR. What the CRC needs from this chain is
//! only (a) that BER worsens smoothly as links get longer/faster/noisier and
//! (b) realistic orders of magnitude (1e-15 on a clean short link, 1e-5 on a
//! marginal one), both of which hold.

use crate::media::Media;
use rackfabric_sim::units::{BitRate, Length};

/// Reference per-lane rate at which the media's `tx_snr_db` is quoted.
pub const REFERENCE_LANE_RATE: BitRate = BitRate::from_gbps(25);

/// Additional SNR penalty in dB for every doubling of the lane rate above the
/// reference rate.
pub const RATE_PENALTY_DB_PER_OCTAVE: f64 = 3.0;

/// Computes the received SNR in dB for a lane of `rate` over `length` of
/// `media`, with an extra impairment term (crosstalk, ageing, temperature)
/// expressed in dB.
pub fn received_snr_db(media: &Media, length: Length, rate: BitRate, impairment_db: f64) -> f64 {
    let loss = media.channel_loss_db(length);
    let rate_ratio = rate.as_bps() as f64 / REFERENCE_LANE_RATE.as_bps() as f64;
    let rate_penalty = if rate_ratio > 1.0 {
        RATE_PENALTY_DB_PER_OCTAVE * rate_ratio.log2()
    } else {
        0.0
    };
    media.tx_snr_db - loss - rate_penalty - impairment_db.max(0.0)
}

/// Approximates the Gaussian Q-function Q(x) = P(N(0,1) > x).
///
/// Uses the Karagiannidis–Lioumpas closed-form approximation, accurate to a
/// few percent over the range of interest (x in 0..8), which is more than
/// enough to place BER on the right order of magnitude.
pub fn q_function(x: f64) -> f64 {
    if x <= 0.0 {
        return 0.5;
    }
    let num = (1.0 - (-1.4 * x).exp()) * (-x * x / 2.0).exp();
    num / (1.135 * (2.0 * std::f64::consts::PI).sqrt() * x)
}

/// Converts a received SNR (dB) into a pre-FEC bit error rate, assuming
/// NRZ signalling where BER = Q(sqrt(SNR_linear)).
pub fn snr_to_ber(snr_db: f64) -> f64 {
    if snr_db <= 0.0 {
        return 0.5;
    }
    let snr_linear = 10f64.powf(snr_db / 10.0);
    q_function(snr_linear.sqrt()).clamp(1e-18, 0.5)
}

/// End-to-end helper: pre-FEC BER of a lane of `rate` over `length` of
/// `media` with an `impairment_db` margin eaten away.
pub fn lane_ber(media: &Media, length: Length, rate: BitRate, impairment_db: f64) -> f64 {
    snr_to_ber(received_snr_db(media, length, rate, impairment_db))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::Media;

    #[test]
    fn q_function_reference_points() {
        // Q(0) = 0.5 by definition.
        assert!((q_function(0.0) - 0.5).abs() < 1e-12);
        // Q(x) is decreasing.
        assert!(q_function(1.0) > q_function(2.0));
        assert!(q_function(2.0) > q_function(4.0));
        // Known values: Q(3) ~ 1.35e-3, Q(6) ~ 9.9e-10 (within ~20 %).
        let q3 = q_function(3.0);
        assert!((1.0e-3..2.0e-3).contains(&q3), "Q(3) was {q3}");
        let q6 = q_function(6.0);
        assert!((5e-10..2e-9).contains(&q6), "Q(6) was {q6}");
    }

    #[test]
    fn snr_to_ber_is_monotone_decreasing() {
        let mut last = 1.0;
        for snr in [0.0, 5.0, 10.0, 13.0, 15.0, 17.0, 20.0] {
            let ber = snr_to_ber(snr);
            assert!(ber <= last, "BER must not increase with SNR");
            last = ber;
        }
        assert_eq!(snr_to_ber(-3.0), 0.5);
    }

    #[test]
    fn short_clean_links_have_negligible_ber() {
        let fiber = Media::optical_fiber();
        let ber = lane_ber(&fiber, Length::from_m(2), BitRate::from_gbps(25), 0.0);
        assert!(
            ber < 1e-12,
            "2 m fibre lane should be essentially error free, was {ber}"
        );
    }

    #[test]
    fn long_copper_at_high_rate_is_marginal() {
        let copper = Media::copper_dac();
        let clean = lane_ber(&copper, Length::from_m(1), BitRate::from_gbps(25), 0.0);
        let marginal = lane_ber(&copper, Length::from_m(5), BitRate::from_gbps(50), 0.0);
        assert!(
            marginal > clean * 1e3,
            "5 m @50G must be much worse than 1 m @25G"
        );
        assert!(marginal > 1e-13 && marginal < 0.5);
    }

    #[test]
    fn impairment_degrades_ber() {
        let fiber = Media::optical_fiber();
        let base = lane_ber(&fiber, Length::from_m(30), BitRate::from_gbps(25), 0.0);
        let impaired = lane_ber(&fiber, Length::from_m(30), BitRate::from_gbps(25), 20.0);
        assert!(impaired > base);
    }

    #[test]
    fn rate_penalty_only_applies_above_reference() {
        let fiber = Media::optical_fiber();
        let at_10g = received_snr_db(&fiber, Length::from_m(2), BitRate::from_gbps(10), 0.0);
        let at_25g = received_snr_db(&fiber, Length::from_m(2), BitRate::from_gbps(25), 0.0);
        let at_50g = received_snr_db(&fiber, Length::from_m(2), BitRate::from_gbps(50), 0.0);
        assert_eq!(at_10g, at_25g, "below-reference rates pay no penalty");
        assert!(
            (at_25g - at_50g - 3.0).abs() < 1e-9,
            "one octave costs 3 dB"
        );
    }
}
