//! High-speed bypass — PLP #2.
//!
//! A bypass connects two links that meet at a node "at the lowest possible
//! physical level": instead of the packet climbing into the node's switching
//! logic (hundreds of nanoseconds of SerDes, MAC, lookup and arbitration), a
//! cross-connect in the PHY forwards the signal with only a retiming delay of
//! a few tens of nanoseconds. A bypass therefore turns a multi-hop path into
//! something that behaves almost like a single long cable, at the cost of the
//! bypassed node losing the ability to inspect or inject traffic on that
//! pair of links.

use crate::error::PhyError;
use crate::link::LinkId;
use rackfabric_sim::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One active bypass cross-connect at a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bypass {
    /// The node whose switching logic is skipped.
    pub at_node: u32,
    /// The link traffic arrives on.
    pub in_link: LinkId,
    /// The link traffic is forwarded onto.
    pub out_link: LinkId,
    /// Retiming / cross-connect latency added in place of the switch
    /// traversal.
    pub latency: SimDuration,
}

impl Bypass {
    /// Default retiming latency of a PHY-level cross-connect.
    pub fn default_latency() -> SimDuration {
        SimDuration::from_nanos(25)
    }
}

/// The set of bypasses currently active in the fabric, indexed by
/// (node, ingress link).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BypassTable {
    entries: HashMap<(u32, LinkId), Bypass>,
}

impl BypassTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a bypass. Fails if the ingress link at that node already has
    /// one (the cross-connect hardware is a 1:1 mapping).
    pub fn install(&mut self, bypass: Bypass) -> Result<(), PhyError> {
        let key = (bypass.at_node, bypass.in_link);
        if self.entries.contains_key(&key) {
            return Err(PhyError::BypassAlreadyActive(bypass.in_link));
        }
        self.entries.insert(key, bypass);
        Ok(())
    }

    /// Removes the bypass for `in_link` at `node`, returning it if present.
    pub fn remove(&mut self, node: u32, in_link: LinkId) -> Option<Bypass> {
        self.entries.remove(&(node, in_link))
    }

    /// Looks up the bypass (if any) that traffic arriving at `node` on
    /// `in_link` will take.
    pub fn lookup(&self, node: u32, in_link: LinkId) -> Option<&Bypass> {
        self.entries.get(&(node, in_link))
    }

    /// Number of active bypasses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no bypasses are active.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes every bypass touching `link` (used when the link is broken,
    /// re-bundled or powered off).
    pub fn purge_link(&mut self, link: LinkId) -> usize {
        let before = self.entries.len();
        self.entries
            .retain(|_, b| b.in_link != link && b.out_link != link);
        before - self.entries.len()
    }

    /// Iterates over all active bypasses.
    pub fn iter(&self) -> impl Iterator<Item = &Bypass> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bypass(node: u32, inl: u64, outl: u64) -> Bypass {
        Bypass {
            at_node: node,
            in_link: LinkId(inl),
            out_link: LinkId(outl),
            latency: Bypass::default_latency(),
        }
    }

    #[test]
    fn install_lookup_remove() {
        let mut t = BypassTable::new();
        assert!(t.is_empty());
        t.install(bypass(3, 10, 11)).unwrap();
        assert_eq!(t.len(), 1);
        let found = t.lookup(3, LinkId(10)).unwrap();
        assert_eq!(found.out_link, LinkId(11));
        assert!(
            t.lookup(3, LinkId(11)).is_none(),
            "lookup is keyed by ingress link"
        );
        assert!(t.lookup(4, LinkId(10)).is_none(), "lookup is keyed by node");
        let removed = t.remove(3, LinkId(10)).unwrap();
        assert_eq!(removed.in_link, LinkId(10));
        assert!(t.is_empty());
    }

    #[test]
    fn double_install_is_rejected() {
        let mut t = BypassTable::new();
        t.install(bypass(1, 5, 6)).unwrap();
        let err = t.install(bypass(1, 5, 7)).unwrap_err();
        assert_eq!(err, PhyError::BypassAlreadyActive(LinkId(5)));
        // A different ingress link at the same node is fine.
        t.install(bypass(1, 8, 9)).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn purge_link_removes_both_directions() {
        let mut t = BypassTable::new();
        t.install(bypass(1, 5, 6)).unwrap();
        t.install(bypass(2, 7, 5)).unwrap();
        t.install(bypass(3, 8, 9)).unwrap();
        let purged = t.purge_link(LinkId(5));
        assert_eq!(purged, 2);
        assert_eq!(t.len(), 1);
        assert!(t.lookup(3, LinkId(8)).is_some());
    }

    #[test]
    fn default_latency_is_much_smaller_than_a_switch() {
        // A cut-through switch is hundreds of ns; the bypass must be tens.
        assert!(Bypass::default_latency() < SimDuration::from_nanos(100));
        assert!(Bypass::default_latency() > SimDuration::ZERO);
    }

    #[test]
    fn iteration_sees_all_entries() {
        let mut t = BypassTable::new();
        t.install(bypass(1, 1, 2)).unwrap();
        t.install(bypass(2, 3, 4)).unwrap();
        let nodes: Vec<u32> = t.iter().map(|b| b.at_node).collect();
        assert_eq!(nodes.len(), 2);
        assert!(nodes.contains(&1) && nodes.contains(&2));
    }
}
