//! Power model.
//!
//! Rack-scale systems inherit the power budget of a traditional rack (the
//! paper lists power as one of the two first-order constraints alongside
//! latency), so every PLP decision is made against the power it adds or
//! saves. The model here charges each powered lane a static SerDes cost plus
//! a per-bit dynamic cost, each FEC engine its own cost, and each bypass a
//! small cross-connect cost; a powered-down lane costs (almost) nothing.

use crate::fec::FecMode;
use crate::link::{Link, LinkState};
use rackfabric_sim::units::{BitRate, Power};
use serde::{Deserialize, Serialize};

/// Power state the CRC can put a link into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PowerState {
    /// Full power, all configured lanes active.
    #[default]
    Active,
    /// Low-power idle: lanes keep lock but transmit idles; reduced draw and
    /// instant (sub-microsecond) exit.
    LowPower,
    /// Completely off: zero dynamic and static draw, expensive to re-train.
    Off,
}

/// The coefficients of the power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Static power of one active lane's SerDes pair (both ends).
    pub lane_static: Power,
    /// Dynamic energy cost expressed as power per Gb/s of carried traffic.
    pub dynamic_per_gbps: Power,
    /// Fraction of static power still drawn in low-power idle.
    pub low_power_fraction: f64,
    /// Power of an optical transceiver pair per lane (added for fibre media).
    pub optics_per_lane: Power,
    /// Power of one active bypass cross-connect.
    pub bypass_crossconnect: Power,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            // ~750 mW per 25G SerDes pair is typical of the generation the
            // paper targets.
            lane_static: Power::from_milliwatts(750),
            dynamic_per_gbps: Power::from_milliwatts(15),
            low_power_fraction: 0.25,
            optics_per_lane: Power::from_milliwatts(350),
            bypass_crossconnect: Power::from_milliwatts(450),
        }
    }
}

impl PowerModel {
    /// Power drawn by a link given its current state, configured FEC and the
    /// offered load (as achieved throughput).
    pub fn link_power(&self, link: &Link, throughput: BitRate, state: PowerState) -> Power {
        if state == PowerState::Off || link.state == LinkState::Down {
            return Power::ZERO;
        }
        let powered_lanes = link.lanes.iter().filter(|l| l.state.is_powered()).count() as u64;
        let is_optical = matches!(link.media.kind, crate::media::MediaKind::OpticalFiber);
        let mut static_power = self.lane_static * powered_lanes;
        if is_optical {
            static_power += self.optics_per_lane * powered_lanes;
        }
        static_power += link.fec.power_per_lane() * powered_lanes;

        match state {
            PowerState::Active => {
                let dynamic = self
                    .dynamic_per_gbps
                    .scale(throughput.as_gbps_f64().max(0.0));
                static_power + dynamic
            }
            PowerState::LowPower => static_power.scale(self.low_power_fraction),
            PowerState::Off => Power::ZERO,
        }
    }

    /// Power of `n` active bypass cross-connects.
    pub fn bypass_power(&self, active_bypasses: usize) -> Power {
        self.bypass_crossconnect * active_bypasses as u64
    }

    /// Estimated saving from dropping a link from `from_lanes` to `to_lanes`
    /// active lanes (static component only; used by the CRC when planning).
    pub fn lane_reduction_saving(&self, link: &Link, from_lanes: usize, to_lanes: usize) -> Power {
        if to_lanes >= from_lanes {
            return Power::ZERO;
        }
        let delta = (from_lanes - to_lanes) as u64;
        let is_optical = matches!(link.media.kind, crate::media::MediaKind::OpticalFiber);
        let mut per_lane = self.lane_static + link.fec.power_per_lane();
        if is_optical {
            per_lane += self.optics_per_lane;
        }
        per_lane * delta
    }

    /// Power cost of enabling FEC `mode` on a link with `lanes` active lanes.
    pub fn fec_cost(&self, mode: FecMode, lanes: usize) -> Power {
        mode.power_per_lane() * lanes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkId;
    use crate::media::Media;
    use rackfabric_sim::units::Length;

    fn link(media: Media, lanes: usize) -> Link {
        Link::new(
            LinkId(0),
            0,
            1,
            media,
            Length::from_m(2),
            lanes,
            BitRate::from_gbps(25),
            0,
        )
    }

    #[test]
    fn idle_link_draws_static_power_only() {
        let m = PowerModel::default();
        let l = link(Media::copper_dac(), 4);
        let idle = m.link_power(&l, BitRate::ZERO, PowerState::Active);
        let busy = m.link_power(&l, BitRate::from_gbps(100), PowerState::Active);
        assert_eq!(idle, Power::from_milliwatts(3000));
        assert!(busy > idle);
        // Dynamic component: 100 Gb/s * 15 mW/Gbps = 1.5 W.
        assert_eq!(busy, Power::from_milliwatts(4500));
    }

    #[test]
    fn optical_links_cost_more_than_copper() {
        let m = PowerModel::default();
        let copper = m.link_power(
            &link(Media::copper_dac(), 4),
            BitRate::ZERO,
            PowerState::Active,
        );
        let fibre = m.link_power(
            &link(Media::optical_fiber(), 4),
            BitRate::ZERO,
            PowerState::Active,
        );
        assert!(fibre > copper);
    }

    #[test]
    fn fec_engines_add_power() {
        let m = PowerModel::default();
        let mut l = link(Media::copper_dac(), 4);
        let without = m.link_power(&l, BitRate::ZERO, PowerState::Active);
        l.set_fec(FecMode::Rs544);
        let with = m.link_power(&l, BitRate::ZERO, PowerState::Active);
        assert_eq!(with - without, Power::from_milliwatts(800));
        assert_eq!(m.fec_cost(FecMode::Rs544, 4), Power::from_milliwatts(800));
    }

    #[test]
    fn low_power_and_off_states() {
        let m = PowerModel::default();
        let l = link(Media::copper_dac(), 4);
        let active = m.link_power(&l, BitRate::ZERO, PowerState::Active);
        let low = m.link_power(&l, BitRate::ZERO, PowerState::LowPower);
        let off = m.link_power(&l, BitRate::ZERO, PowerState::Off);
        assert!(low < active);
        assert!((low.as_watts_f64() - active.as_watts_f64() * 0.25).abs() < 1e-9);
        assert_eq!(off, Power::ZERO);
    }

    #[test]
    fn powered_down_lanes_do_not_draw() {
        let m = PowerModel::default();
        let mut l = link(Media::copper_dac(), 4);
        let four = m.link_power(&l, BitRate::ZERO, PowerState::Active);
        l.set_active_lanes(1).unwrap();
        let one = m.link_power(&l, BitRate::ZERO, PowerState::Active);
        assert_eq!(one * 4, four);
        assert_eq!(
            m.lane_reduction_saving(&l, 4, 1),
            Power::from_milliwatts(750 * 3)
        );
        assert_eq!(m.lane_reduction_saving(&l, 1, 4), Power::ZERO);
    }

    #[test]
    fn administratively_down_link_draws_nothing() {
        let m = PowerModel::default();
        let mut l = link(Media::copper_dac(), 4);
        l.set_power(false);
        assert_eq!(
            m.link_power(&l, BitRate::from_gbps(10), PowerState::Active),
            Power::ZERO
        );
    }

    #[test]
    fn bypass_power_scales_with_count() {
        let m = PowerModel::default();
        assert_eq!(m.bypass_power(0), Power::ZERO);
        assert_eq!(m.bypass_power(3), Power::from_milliwatts(1350));
    }
}
