//! Per-lane and per-link telemetry — PLP #5.
//!
//! The paper's Closed Ring Control "uses feedback from the interconnect such
//! as latency, power consumption etc., to tag each link with a cost
//! function". These are the structures that carry that feedback: raw per-lane
//! counters ([`LaneStats`]), a per-link snapshot ([`LinkTelemetry`]) and the
//! rack-wide report ([`TelemetryReport`]) delivered to the controller on
//! every control epoch.

use crate::fec::FecMode;
use crate::link::LinkId;
use rackfabric_sim::time::{SimDuration, SimTime};
use rackfabric_sim::units::{BitRate, Power};
use serde::{Deserialize, Serialize};

/// Raw counters kept by each lane (PLP #5: per-lane statistics).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LaneStats {
    /// Total bytes carried by the lane.
    pub bytes_carried: u64,
    /// Expected number of bit errors accumulated (BER × bits).
    pub accumulated_bit_errors: f64,
    /// Number of state transitions (up/down/training/faulty).
    pub state_transitions: u64,
    /// Last instant the lane carried traffic.
    pub last_activity: SimTime,
}

/// A per-link telemetry snapshot, produced once per control epoch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkTelemetry {
    /// Which link this snapshot describes.
    pub link: LinkId,
    /// Instant the snapshot was taken.
    pub at: SimTime,
    /// Number of usable lanes.
    pub active_lanes: usize,
    /// Total lanes physically attached to the link.
    pub total_lanes: usize,
    /// Effective (post-FEC-overhead) capacity.
    pub capacity: BitRate,
    /// Offered load over the last epoch as a fraction of capacity (0..1+,
    /// values above 1 indicate an overloaded link).
    pub utilization: f64,
    /// Worst pre-FEC bit error rate across the link's lanes.
    pub worst_pre_fec_ber: f64,
    /// Post-FEC bit error rate with the currently configured codec.
    pub post_fec_ber: f64,
    /// FEC mode currently configured.
    pub fec_mode: FecMode,
    /// One-way latency contributed by this link (serialization of an MTU +
    /// propagation + FEC), as measured over the last epoch.
    pub latency: SimDuration,
    /// Mean queue occupancy in bytes at the transmitting port over the epoch.
    pub queue_occupancy_bytes: f64,
    /// Electrical power currently drawn by the link's lanes and FEC engines.
    pub power: Power,
    /// True if the link is administratively up.
    pub up: bool,
}

impl LinkTelemetry {
    /// A congestion indicator in [0, 1]: how close the link is to saturation,
    /// blending utilization with queue build-up.
    pub fn congestion_score(&self, queue_reference_bytes: f64) -> f64 {
        let util = self.utilization.clamp(0.0, 2.0) / 2.0;
        let queue = if queue_reference_bytes > 0.0 {
            (self.queue_occupancy_bytes / queue_reference_bytes).clamp(0.0, 1.0)
        } else {
            0.0
        };
        (0.6 * util + 0.4 * queue).clamp(0.0, 1.0)
    }

    /// A health indicator in [0, 1]: 1 is a clean link, 0 is unusable.
    pub fn health_score(&self, ber_target: f64) -> f64 {
        if !self.up || self.active_lanes == 0 {
            return 0.0;
        }
        if self.post_fec_ber <= ber_target {
            1.0
        } else {
            // Each decade above target halves the health.
            let decades = (self.post_fec_ber / ber_target).log10().max(0.0);
            (0.5f64.powf(decades)).clamp(0.0, 1.0)
        }
    }
}

/// The rack-wide telemetry report handed to the Closed Ring Control each
/// epoch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// Instant the report was assembled.
    pub at: SimTime,
    /// Snapshot for every link in the fabric.
    pub links: Vec<LinkTelemetry>,
    /// Total power drawn by the interconnect at the snapshot instant.
    pub total_power: Power,
    /// Number of active bypasses.
    pub active_bypasses: usize,
}

impl TelemetryReport {
    /// Creates an empty report at `at`.
    pub fn new(at: SimTime) -> Self {
        TelemetryReport {
            at,
            links: Vec::new(),
            total_power: Power::ZERO,
            active_bypasses: 0,
        }
    }

    /// Looks up one link's snapshot.
    pub fn link(&self, id: LinkId) -> Option<&LinkTelemetry> {
        self.links.iter().find(|l| l.link == id)
    }

    /// The most congested link, if any links are present.
    pub fn most_congested(&self, queue_reference_bytes: f64) -> Option<&LinkTelemetry> {
        self.links.iter().max_by(|a, b| {
            a.congestion_score(queue_reference_bytes)
                .partial_cmp(&b.congestion_score(queue_reference_bytes))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// Mean utilization across up links (0 when there are none).
    pub fn mean_utilization(&self) -> f64 {
        let up: Vec<&LinkTelemetry> = self.links.iter().filter(|l| l.up).collect();
        if up.is_empty() {
            0.0
        } else {
            up.iter().map(|l| l.utilization).sum::<f64>() / up.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn telemetry(link: u64, util: f64, queue: f64) -> LinkTelemetry {
        LinkTelemetry {
            link: LinkId(link),
            at: SimTime::from_micros(10),
            active_lanes: 4,
            total_lanes: 4,
            capacity: BitRate::from_gbps(100),
            utilization: util,
            worst_pre_fec_ber: 1e-12,
            post_fec_ber: 1e-15,
            fec_mode: FecMode::Rs528,
            latency: SimDuration::from_nanos(200),
            queue_occupancy_bytes: queue,
            power: Power::from_watts(3),
            up: true,
        }
    }

    #[test]
    fn congestion_score_orders_links() {
        let idle = telemetry(0, 0.05, 0.0);
        let busy = telemetry(1, 0.9, 40_000.0);
        assert!(busy.congestion_score(64_000.0) > idle.congestion_score(64_000.0));
        assert!(idle.congestion_score(64_000.0) >= 0.0);
        assert!(busy.congestion_score(64_000.0) <= 1.0);
    }

    #[test]
    fn congestion_score_handles_zero_reference() {
        let t = telemetry(0, 0.5, 1000.0);
        let s = t.congestion_score(0.0);
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn health_score_degrades_with_ber() {
        let mut t = telemetry(0, 0.1, 0.0);
        assert_eq!(t.health_score(1e-12), 1.0);
        t.post_fec_ber = 1e-10; // two decades above a 1e-12 target
        let h = t.health_score(1e-12);
        assert!(
            (0.2..0.3).contains(&h),
            "two decades over target ~0.25, got {h}"
        );
        t.up = false;
        assert_eq!(t.health_score(1e-12), 0.0);
    }

    #[test]
    fn report_lookup_and_aggregates() {
        let mut r = TelemetryReport::new(SimTime::from_micros(1));
        r.links.push(telemetry(0, 0.2, 0.0));
        r.links.push(telemetry(1, 0.8, 10_000.0));
        r.links.push(telemetry(2, 0.5, 0.0));
        assert!(r.link(LinkId(1)).is_some());
        assert!(r.link(LinkId(9)).is_none());
        assert_eq!(r.most_congested(64_000.0).unwrap().link, LinkId(1));
        assert!((r.mean_utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_well_behaved() {
        let r = TelemetryReport::new(SimTime::ZERO);
        assert!(r.most_congested(1.0).is_none());
        assert_eq!(r.mean_utilization(), 0.0);
    }
}
