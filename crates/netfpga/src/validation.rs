//! Cross-validation of the event-driven switch model against the cycle-level
//! SUME model (Experiment E7).
//!
//! The paper validates its small-scale omnet++ simulation against a NetFPGA
//! SUME proof of concept before scaling up. Here both sides are models, but
//! they are *independent* models of the same datapath built at different
//! levels of abstraction: the DES side charges an analytic pipeline latency
//! plus serialization, the cycle model streams the frame through a clocked
//! 256-bit pipeline. If the two disagree wildly, one of them is wrong.

use crate::pipeline::{SumeConfig, SumeSwitch};
use rackfabric_phy::link::{Link, LinkId};
use rackfabric_phy::media::Media;
use rackfabric_sim::time::SimDuration;
use rackfabric_sim::units::{Bytes, Length};
use rackfabric_switch::model::{SwitchKind, SwitchModel};
use serde::{Deserialize, Serialize};

/// The outcome of validating one frame size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationPoint {
    /// Frame size examined.
    pub frame_bytes: u64,
    /// Per-hop latency predicted by the discrete-event model (ns).
    pub des_latency_ns: f64,
    /// Per-hop latency predicted by the cycle-level model (ns).
    pub cycle_latency_ns: f64,
    /// Relative error |des - cycle| / cycle.
    pub relative_error: f64,
}

/// A full validation report across frame sizes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValidationReport {
    /// One point per frame size.
    pub points: Vec<ValidationPoint>,
    /// Largest relative error across all points.
    pub worst_relative_error: f64,
}

impl ValidationReport {
    /// True if every point agrees within `tolerance` (e.g. 0.25 = 25 %).
    pub fn passes(&self, tolerance: f64) -> bool {
        self.worst_relative_error <= tolerance
    }
}

/// Runs the validation: for each frame size, compare the DES per-hop latency
/// (store-and-forward, matching the SUME reference switch's output-queued
/// design, over a 10G link) with the cycle model's idle forwarding latency.
pub fn validate_against_des(frame_sizes: &[u64]) -> ValidationReport {
    let config = SumeConfig::default();
    // The DES-side equivalent of the SUME datapath: a store-and-forward
    // switch whose pipeline depth matches the reference design's fixed
    // cycles, forwarding onto a single-lane 10G link. The ingress
    // store-and-forward is charged explicitly below, mirroring how the fabric
    // model charges the sender's serialization separately.
    let pipeline = config.clock_period * config.fixed_pipeline_cycles;
    let des_model = SwitchModel {
        kind: SwitchKind::StoreAndForward,
        pipeline_latency: pipeline,
    };
    let egress_link = Link::new(
        LinkId(0),
        0,
        1,
        Media::copper_dac(),
        Length::from_m(0),
        1,
        config.port_rate,
        0,
    );

    let mut points = Vec::new();
    for &size in frame_sizes {
        let frame = Bytes::new(size);
        // DES: ingress serialization + switch traversal (pipeline + egress
        // store-and-forward serialization). Propagation over 0 m is nil.
        let ingress = config.port_rate.serialization_delay(frame);
        let des: SimDuration = ingress
            + des_model.traversal_latency(frame, &egress_link)
            + config.clock_period * egress_link.total_lanes() as u64; // retiming
        let mut cycle_model = SumeSwitch::new(config);
        let cyc = cycle_model.idle_forward_latency(frame, 0);
        let des_ns = des.as_nanos_f64();
        let cyc_ns = cyc.as_nanos_f64();
        let rel = (des_ns - cyc_ns).abs() / cyc_ns.max(1e-9);
        points.push(ValidationPoint {
            frame_bytes: size,
            des_latency_ns: des_ns,
            cycle_latency_ns: cyc_ns,
            relative_error: rel,
        });
    }
    let worst = points.iter().map(|p| p.relative_error).fold(0.0, f64::max);
    ValidationReport {
        points,
        worst_relative_error: worst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_agree_within_tolerance_across_frame_sizes() {
        let report = validate_against_des(&[64, 256, 512, 1024, 1500]);
        assert_eq!(report.points.len(), 5);
        assert!(
            report.passes(0.25),
            "worst relative error {} exceeds 25 %: {:#?}",
            report.worst_relative_error,
            report.points
        );
    }

    #[test]
    fn latency_grows_with_frame_size_in_both_models() {
        let report = validate_against_des(&[64, 512, 1500]);
        let des: Vec<f64> = report.points.iter().map(|p| p.des_latency_ns).collect();
        let cyc: Vec<f64> = report.points.iter().map(|p| p.cycle_latency_ns).collect();
        assert!(des.windows(2).all(|w| w[0] < w[1]));
        assert!(cyc.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn tolerance_check_is_strict() {
        let report = validate_against_des(&[1500]);
        assert!(!report.passes(report.worst_relative_error / 2.0 - f64::EPSILON));
        assert!(report.passes(1.0));
    }
}
