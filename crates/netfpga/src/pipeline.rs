//! Cycle-level model of the SUME reference switch datapath.
//!
//! The NetFPGA SUME reference switch is a 4x10G output-queued switch built
//! around a 256-bit AXI-Stream datapath clocked at 200 MHz (5 ns per cycle).
//! A frame moves through: input queue → round-robin input arbiter → header
//! parse + output-port lookup → output queue → 10G MAC egress. Each stage
//! contributes a fixed number of cycles plus, for the store-and-forward
//! output queue, the cycles needed to stream the frame across the datapath.

use rackfabric_sim::time::SimDuration;
use rackfabric_sim::units::{BitRate, Bytes};
use serde::{Deserialize, Serialize};

/// Static configuration of the modelled device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SumeConfig {
    /// Core clock period (5 ns at 200 MHz).
    pub clock_period: SimDuration,
    /// Datapath width in bytes per cycle (256 bit = 32 B).
    pub datapath_bytes_per_cycle: u64,
    /// Fixed pipeline depth in cycles (arbiter + parser + lookup + queue
    /// control), taken from the reference design's latency report.
    pub fixed_pipeline_cycles: u64,
    /// Line rate of each port.
    pub port_rate: BitRate,
    /// Number of ports.
    pub ports: usize,
}

impl Default for SumeConfig {
    fn default() -> Self {
        SumeConfig {
            clock_period: SimDuration::from_nanos(5),
            datapath_bytes_per_cycle: 32,
            fixed_pipeline_cycles: 30,
            port_rate: BitRate::from_gbps(10),
            ports: 4,
        }
    }
}

/// The cycle-level switch model.
#[derive(Debug, Clone)]
pub struct SumeSwitch {
    /// Device configuration.
    pub config: SumeConfig,
    /// Per-output-port cycle at which the port becomes free.
    egress_free_cycle: Vec<u64>,
    /// Current cycle counter.
    cycle: u64,
    /// Frames forwarded per output port.
    pub forwarded: Vec<u64>,
}

impl SumeSwitch {
    /// Creates a switch.
    pub fn new(config: SumeConfig) -> Self {
        SumeSwitch {
            egress_free_cycle: vec![0; config.ports],
            forwarded: vec![0; config.ports],
            config,
            cycle: 0,
        }
    }

    /// The current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advances the clock by `cycles`.
    pub fn tick(&mut self, cycles: u64) {
        self.cycle += cycles;
    }

    /// Number of datapath cycles needed to stream a frame of `size`.
    pub fn streaming_cycles(&self, size: Bytes) -> u64 {
        size.as_u64().div_ceil(self.config.datapath_bytes_per_cycle)
    }

    /// Injects a frame of `size` destined for `output_port` at the current
    /// cycle and returns the cycle at which its last byte leaves the egress
    /// MAC. Queueing behind earlier frames on the same output is modelled;
    /// contention on the shared datapath is folded into the fixed pipeline.
    ///
    /// # Panics
    /// Panics if `output_port` is out of range.
    pub fn forward(&mut self, size: Bytes, output_port: usize) -> u64 {
        assert!(output_port < self.config.ports, "no such port");
        // Ingress + pipeline: the frame must be fully received from the 10G
        // MAC (store and forward into the input queue), then spends the fixed
        // pipeline depth, then is streamed into the output queue.
        let wire_time = self.config.port_rate.serialization_delay(size);
        let ingress_cycles = Self::duration_to_cycles(wire_time, self.config.clock_period);
        let ready_cycle = self.cycle
            + ingress_cycles
            + self.config.fixed_pipeline_cycles
            + self.streaming_cycles(size);
        // Egress: wait for the port, then serialize onto the wire again.
        let start = ready_cycle.max(self.egress_free_cycle[output_port]);
        let egress_cycles = Self::duration_to_cycles(wire_time, self.config.clock_period);
        let done = start + egress_cycles;
        self.egress_free_cycle[output_port] = done;
        self.forwarded[output_port] += 1;
        done
    }

    /// Latency, in simulated time, of forwarding one frame through an
    /// otherwise idle switch (the number Experiment E7 compares with the DES
    /// model).
    pub fn idle_forward_latency(&mut self, size: Bytes, output_port: usize) -> SimDuration {
        let start_cycle = self.cycle;
        let done = self.forward(size, output_port);
        self.config.clock_period * (done - start_cycle)
    }

    fn duration_to_cycles(d: SimDuration, period: SimDuration) -> u64 {
        d.as_picos().div_ceil(period.as_picos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_cycles_round_up() {
        let s = SumeSwitch::new(SumeConfig::default());
        assert_eq!(s.streaming_cycles(Bytes::new(32)), 1);
        assert_eq!(s.streaming_cycles(Bytes::new(33)), 2);
        assert_eq!(s.streaming_cycles(Bytes::new(1500)), 47);
    }

    #[test]
    fn idle_latency_is_microsecond_scale_for_mtu_at_10g() {
        let mut s = SumeSwitch::new(SumeConfig::default());
        let lat = s.idle_forward_latency(Bytes::new(1500), 0);
        let us = lat.as_micros_f64();
        // Two 1.2 us wire times (in + out) plus ~0.4 us of pipeline.
        assert!(
            (2.0..3.5).contains(&us),
            "MTU store-and-forward latency was {us} us"
        );
        // A minimum-size frame is much faster but still pays the pipeline.
        let mut s2 = SumeSwitch::new(SumeConfig::default());
        let small = s2.idle_forward_latency(Bytes::new(64), 0);
        assert!(small < lat);
        assert!(small.as_nanos_f64() > 150.0);
    }

    #[test]
    fn output_contention_serialises_frames() {
        let mut s = SumeSwitch::new(SumeConfig::default());
        let first_done = s.forward(Bytes::new(1500), 2);
        let second_done = s.forward(Bytes::new(1500), 2);
        let wire_cycles = SumeSwitch::duration_to_cycles(
            BitRate::from_gbps(10).serialization_delay(Bytes::new(1500)),
            SimDuration::from_nanos(5),
        );
        assert_eq!(second_done, first_done + wire_cycles);
        // A different port does not wait.
        let other_done = s.forward(Bytes::new(1500), 3);
        assert!(other_done < second_done);
        assert_eq!(s.forwarded[2], 2);
        assert_eq!(s.forwarded[3], 1);
    }

    #[test]
    fn clock_advances_independently() {
        let mut s = SumeSwitch::new(SumeConfig::default());
        assert_eq!(s.cycle(), 0);
        s.tick(100);
        assert_eq!(s.cycle(), 100);
        let done = s.forward(Bytes::new(64), 0);
        assert!(done > 100);
    }

    #[test]
    #[should_panic(expected = "no such port")]
    fn out_of_range_port_panics() {
        let mut s = SumeSwitch::new(SumeConfig::default());
        s.forward(Bytes::new(64), 4);
    }
}
