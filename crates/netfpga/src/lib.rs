//! # rackfabric-netfpga
//!
//! A cycle-level model of a NetFPGA-SUME-style 4-port reference switch, used
//! to cross-validate the event-driven switch model.
//!
//! The paper's evaluation methodology (Section 4) is: build a small-scale
//! simulation, validate it against a hardware proof of concept on the NetFPGA
//! SUME platform, then scale the simulation up. The hardware is not available
//! here, so this crate substitutes the closest synthetic equivalent: a
//! cycle-accurate model of the SUME reference switch datapath (input
//! arbitration → header parse → lookup → output queue → egress), clocked at
//! the reference design's 200 MHz with a 256-bit datapath. Experiment E7
//! compares the per-hop latency this model predicts with the event-driven
//! [`SwitchModel`](rackfabric_switch::SwitchModel) used by the large-scale
//! simulation; agreement within a few tens of nanoseconds is the validation
//! criterion.

pub mod pipeline;
pub mod validation;

pub use pipeline::{SumeConfig, SumeSwitch};
pub use validation::{validate_against_des, ValidationReport};
