//! Property test: the calendar-queue scheduler delivers exactly the same
//! `(time, EventId)` sequence as the reference binary-heap scheduler for
//! arbitrary schedule/cancel/pop interleavings, across arbitrary queue
//! geometries. This is the invariant that lets the engine swap schedulers
//! without ever changing simulation results.

use proptest::prelude::*;
use rackfabric_sim::calendar::CalendarQueue;
use rackfabric_sim::event::EventId;
use rackfabric_sim::queue::{EventQueue, Scheduler};
use rackfabric_sim::time::SimTime;

/// One scripted operation against both schedulers.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule at `now + offset_ps`.
    Push(u64),
    /// Cancel the id `k % ids_issued` (exercises pending, delivered and
    /// repeated cancellations alike).
    Cancel(u64),
    /// Pop one event.
    Pop,
    /// Peek the next timestamp.
    Peek,
}

/// Drives the same operation script against both schedulers and asserts the
/// observable behaviour matches step for step. Returns the delivery trace.
fn run_script(ops: &[Op], width_shift: u32, bucket_shift: u32) -> Vec<(u64, u64)> {
    let mut heap: EventQueue<u64> = EventQueue::new();
    let mut cal: CalendarQueue<u64> = CalendarQueue::with_geometry(width_shift, bucket_shift);
    let mut next_id = 0u64;
    let mut clock = 0u64; // monotone like the engine's clock
    let mut trace = Vec::new();
    for op in ops {
        match *op {
            Op::Push(offset) => {
                let at = SimTime::from_picos(clock.saturating_add(offset));
                let id = EventId(next_id);
                next_id += 1;
                heap.push(at, id, id.as_u64());
                cal.push(at, id, id.as_u64());
            }
            Op::Cancel(k) => {
                if next_id > 0 {
                    let victim = EventId(k % next_id);
                    assert_eq!(
                        heap.cancel(victim),
                        cal.cancel(victim),
                        "cancel({victim:?}) disagreed"
                    );
                }
            }
            Op::Pop => {
                let a = heap.pop();
                let b = cal.pop();
                match (a, b) {
                    (Some((ta, ia, va)), Some((tb, ib, vb))) => {
                        assert_eq!((ta, ia, va), (tb, ib, vb), "pop order diverged");
                        assert!(ta.as_picos() >= clock, "time went backwards");
                        clock = ta.as_picos();
                        trace.push((ta.as_picos(), ia.as_u64()));
                    }
                    (None, None) => {}
                    (a, b) => panic!("one scheduler drained early: heap={a:?} cal={b:?}"),
                }
            }
            Op::Peek => {
                assert_eq!(heap.peek_time(), cal.peek_time(), "peek_time diverged");
            }
        }
        assert_eq!(heap.len(), cal.len(), "live counts diverged");
        assert_eq!(heap.is_empty(), cal.is_empty());
    }
    // Drain both completely; the tails must agree too.
    loop {
        match (heap.pop(), cal.pop()) {
            (Some((ta, ia, _)), Some((tb, ib, _))) => {
                assert_eq!((ta, ia), (tb, ib), "drain order diverged");
                trace.push((ta.as_picos(), ia.as_u64()));
            }
            (None, None) => break,
            (a, b) => panic!("one scheduler drained early: heap={a:?} cal={b:?}"),
        }
    }
    trace
}

/// Decodes a deterministic operation script from a seed: a mix of pushes
/// (short, medium and far offsets), cancels, pops and peeks.
fn script_from_seed(seed: u64, len: usize) -> Vec<Op> {
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..len)
        .map(|_| match next() % 10 {
            0..=3 => {
                // Offsets spanning sub-bucket, multi-bucket and far-overflow
                // distances so every level of the calendar is exercised.
                let magnitude = match next() % 4 {
                    0 => next() % 1_000,              // within one bucket
                    1 => next() % 1_000_000,          // a few buckets
                    2 => next() % 1_000_000_000,      // across the ring
                    _ => next() % 50_000_000_000_000, // far overflow
                };
                Op::Push(magnitude)
            }
            4..=5 => Op::Cancel(next()),
            6 => Op::Peek,
            _ => Op::Pop,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// 256 random schedule/cancel/pop scripts over random queue geometries
    /// must produce identical `(time, id)` delivery orders on both
    /// schedulers, pop for pop.
    #[test]
    fn calendar_matches_heap_on_random_scripts(
        seed in 0u64..1_000_000_000,
        len in 50usize..400,
        width_shift in 4u32..24,
        bucket_shift in 1u32..10,
    ) {
        let ops = script_from_seed(seed, len);
        let trace = run_script(&ops, width_shift, bucket_shift);
        // Sanity: the shared trace itself is monotone in (time, id).
        for pair in trace.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "delivery times must be monotone");
        }
    }

    /// Geometry never changes results: the same script delivers the same
    /// trace on very different calendar shapes.
    #[test]
    fn geometry_is_performance_only(seed in 0u64..1_000_000_000) {
        let ops = script_from_seed(seed, 200);
        let a = run_script(&ops, 4, 2);
        let b = run_script(&ops, 16, 11);
        let c = run_script(&ops, 22, 5);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&b, &c);
    }
}
