//! Conservative time-window execution of a sharded model.
//!
//! The monolithic [`Simulator`](crate::engine::Simulator) drives one model on
//! one core. This module is the substrate for running a simulation split
//! into **shards**: each shard owns a disjoint slice of the model's state and
//! a private [`CalendarQueue`], and the [`WindowedSim`] driver advances all
//! shards through **windows** bounded by a conservative lookahead — the
//! synchronous-window variant of conservative parallel DES, executed by a
//! phase-counted protocol that lets unblocked workers run ahead instead of
//! rendezvousing at a central barrier. A shard may freely process every event
//! strictly before the window edge because the protocol guarantees no other
//! shard can still produce an event inside the window:
//!
//! * Cross-shard interactions travel as [`Envelope`]s through per-shard
//!   **outboxes**. During a window each shard appends to its own outbox with
//!   no locking or atomics; at the end of its round the owning worker flushes
//!   the outbox into the destination shards' **inboxes**, and every worker
//!   merges its shards' inboxes at the start of its next round.
//! * Every envelope must be timestamped at least one **lookahead** after the
//!   sending shard's current time (asserted at send). The window length never
//!   exceeds the lookahead (see *window fusion* below for the one widening
//!   that preserves the bound), so an envelope handed over between rounds is
//!   always still in the receiver's future.
//!
//! ## The phase-counted round protocol
//!
//! Workers never meet at a barrier. Each worker `w` owns the shard cells
//! `w, w + workers, …` and publishes, per **round**, a small summary of its
//! cells (earliest pending active/passive event, cumulative event and stop
//! counters) into a parity-double-buffered slot, then advances a monotonic
//! **seal** counter. A worker enters round `r` as soon as every peer's seal
//! has reached `r - 1`; when that already holds on arrival the worker
//! **early-advances** without waiting. Every worker then runs the *same pure
//! planner* over the *same sealed summaries*, so all workers compute an
//! identical window/sync/stop decision without any coordinator thread — the
//! serial section and the two barrier crossings of the previous
//! sense-reversing design are gone. The parity buffer is safe because a peer
//! cannot start round `r + 1` (and overwrite the `r - 1` parity) before this
//! worker seals round `r`, which happens only after it finished reading the
//! `r - 1` summaries.
//!
//! A full rendezvous happens only at [`SyncHook`] control points: all workers
//! seal the sync round, worker 0 waits for every seal, runs `on_sync` with
//! exclusive access to all shards, republishes the hook parameters
//! (lookahead, next sync, stop threshold) and every worker's summary, and
//! releases the peers through a sync generation counter. Sync points are
//! driver-level, not events, so they impose a total order against
//! surrounding events. The hook's `lookahead`/`next_sync`/`stop_threshold`
//! are sampled at run start and after each `on_sync` — they must only change
//! inside `on_sync`.
//!
//! ## Determinism: content-keyed event ordering
//!
//! The engine's schedulers deliver events in `(time, EventId)` order. The
//! monolithic simulator allocates ids from a sequence counter, which makes
//! same-instant ordering depend on *allocation order* — a property that
//! cannot be reproduced when the allocating work is distributed over shards.
//! The windowed driver therefore gives the **model** control of the id: every
//! scheduled event and envelope carries an explicit 64-bit `key`, and
//! same-instant events are delivered in ascending key order. A model that
//! derives keys from stable identities (flow ids, sequence numbers) gets an
//! event order that is a pure function of the simulation content — identical
//! for 1 shard and N shards, and identical no matter how rounds interleave
//! with local scheduling.
//!
//! Two caveats follow from keyed ids: keys must be unique among events
//! pending at the same instant (models derive them from identities that can
//! be pending at most once), and cancellation is not offered (the lazy
//! cancel sets in the schedulers assume ids are never reused; keyed models
//! re-use a key only after its event was delivered).
//!
//! ## Passive events and adaptive window fusion
//!
//! A model may classify some event keys as **passive** via
//! [`ShardModel::passive_key`]: a passive event's handler must not schedule
//! or send anything (it only folds the event into model state — e.g. a
//! delivery acknowledgment updating flow progress). Passive events live in a
//! second calendar per cell so the planner can see the earliest *active*
//! event separately. When the planner has observed a streak of windows that
//! processed only passive events (nothing could have crossed shards), it
//! **fuses** upcoming windows: the window edge extends beyond one lookahead,
//! up to `earliest_active + lookahead` (so any active event inside the fused
//! span can still legally send an envelope past the edge) and a deterministic
//! cap. Fusion is a pure function of sim state — never wall clock — and is
//! disabled whenever an event budget or stop threshold is set, so the exact
//! instant those checks land stays on the unfused lattice. Fusion (and early
//! advance) can change how many windows a run takes, but never which events
//! run, in which order, or what the model computes — exports stay
//! byte-identical.
//!
//! Worker threads are persistent for the whole run; with a single worker the
//! same code path runs inline with no synchronisation at all. Thread count
//! never affects results — only the shard *content* does, and a well-keyed
//! model makes even the shard count immaterial.

use crate::calendar::CalendarQueue;
use crate::engine::RunOutcome;
use crate::event::EventId;
use crate::queue::Scheduler;
use crate::time::{SimDuration, SimTime};
use rackfabric_obs::profile::WindowProfiler;
use rackfabric_obs::Observer;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// A cross-shard message: an event addressed to another shard at an absolute
/// instant, with the content-derived tie-break key.
#[derive(Debug)]
pub struct Envelope<E> {
    /// Destination shard index.
    pub to: usize,
    /// Absolute delivery instant (≥ sender's now + lookahead).
    pub at: SimTime,
    /// Content-derived tie-break key (see module docs).
    pub key: u64,
    /// The event payload delivered to the destination shard.
    pub event: E,
}

/// The scheduling interface handed to a shard while it processes one event.
pub struct WindowCtx<'a, E> {
    now: SimTime,
    shard: usize,
    window_end_ps: u64,
    active: &'a mut CalendarQueue<E>,
    passive: &'a mut CalendarQueue<E>,
    outbox: &'a mut Vec<Envelope<E>>,
    classify: fn(u64) -> bool,
    #[cfg(debug_assertions)]
    handling_passive: bool,
}

impl<'a, E> WindowCtx<'a, E> {
    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The index of the shard processing this event.
    #[inline]
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Schedules a local event on this shard at `at` with tie-break `key`.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn schedule(&mut self, at: SimTime, key: u64, event: E) {
        #[cfg(debug_assertions)]
        debug_assert!(
            !self.handling_passive,
            "shard {} scheduled from a passive event handler (key classified \
             passive must not schedule or send)",
            self.shard
        );
        assert!(
            at >= self.now,
            "shard {} scheduled an event in the past (now={}, at={})",
            self.shard,
            self.now,
            at
        );
        if (self.classify)(key) {
            self.passive.push(at, EventId(key), event);
        } else {
            self.active.push(at, EventId(key), event);
        }
    }

    /// Sends an event to shard `to` (possibly this shard) at `at` with
    /// tie-break `key`. Self-sends short-circuit into the local queue —
    /// because delivery order is keyed, this is indistinguishable from a
    /// round hand-off, which is what keeps 1-shard and N-shard runs
    /// identical.
    ///
    /// # Panics
    /// Panics when a cross-shard send violates the conservative lookahead
    /// (`at` earlier than the current window's edge): such an envelope could
    /// land in a part of the window its receiver already processed.
    pub fn send(&mut self, to: usize, at: SimTime, key: u64, event: E) {
        if to == self.shard {
            self.schedule(at, key, event);
            return;
        }
        #[cfg(debug_assertions)]
        debug_assert!(
            !self.handling_passive,
            "shard {} sent from a passive event handler (key classified \
             passive must not schedule or send)",
            self.shard
        );
        assert!(
            at.as_picos() >= self.window_end_ps,
            "shard {} sent an envelope below the conservative window edge \
             (at={}, window end={} ps): lookahead bound violated",
            self.shard,
            at,
            self.window_end_ps
        );
        self.outbox.push(Envelope { to, at, key, event });
    }
}

/// A model shard drivable by [`WindowedSim`].
pub trait ShardModel: Send {
    /// The event payload (local events and envelopes share the type).
    type Event: Send;

    /// Processes one event. All scheduling goes through the context.
    fn handle(&mut self, ctx: &mut WindowCtx<'_, Self::Event>, event: Self::Event);

    /// Classifies an event key as **passive**: its handler folds the event
    /// into model state without scheduling or sending anything. Passive
    /// events are what window fusion amortises over (see module docs). Must
    /// be a pure function of the key. Defaults to "nothing is passive".
    fn passive_key(key: u64) -> bool {
        let _ = key;
        false
    }

    /// This shard's contribution towards the hook's
    /// [`stop_threshold`](SyncHook::stop_threshold) (e.g. completed flows).
    /// Must be non-decreasing over the run. Defaults to 0.
    fn stop_contribution(&self) -> u64 {
        0
    }
}

/// Exclusive access to every shard, handed to [`SyncHook`] callbacks at
/// sync points (models live behind per-shard locks during a parallel run).
pub struct ShardsView<'a, M: ShardModel> {
    guards: Vec<MutexGuard<'a, ShardCell<M>>>,
}

impl<'a, M: ShardModel> ShardsView<'a, M> {
    /// Number of shards.
    pub fn len(&self) -> usize {
        self.guards.len()
    }

    /// True when the view holds no shards (never the case in a run).
    pub fn is_empty(&self) -> bool {
        self.guards.is_empty()
    }

    /// Mutable access to shard `i`'s model.
    pub fn model(&mut self, i: usize) -> &mut M {
        &mut self.guards[i].model
    }

    /// Iterates over every shard's model.
    pub fn models_mut(&mut self) -> impl Iterator<Item = &mut M> + use<'_, 'a, M> {
        self.guards.iter_mut().map(|g| &mut g.model)
    }
}

/// Global-control callbacks of a windowed run.
///
/// `next_sync`, `lookahead`, and `stop_threshold` are sampled at run start
/// and re-sampled after every `on_sync` call — they must only change inside
/// `on_sync` (the workers plan rounds from the sampled values).
pub trait SyncHook<M: ShardModel> {
    /// Absolute time of the next synchronous control point
    /// ([`SimTime::MAX`] when there is none). Must be non-decreasing between
    /// `on_sync` calls.
    fn next_sync(&self) -> SimTime;

    /// Runs the control point at `at`. Every event strictly before `at` has
    /// been processed; no event at or after `at` has.
    fn on_sync(&mut self, at: SimTime, shards: &mut ShardsView<'_, M>);

    /// Stops the run (outcome [`RunOutcome::Stopped`]) at the first window
    /// edge where the sum of every shard's
    /// [`stop_contribution`](ShardModel::stop_contribution) reaches this
    /// threshold. [`u64::MAX`] (the default) never stops. Replaces the old
    /// per-window `keep_running` callback with a check each worker evaluates
    /// locally from published counters — no rendezvous needed.
    fn stop_threshold(&self) -> u64 {
        u64::MAX
    }

    /// The conservative lookahead for upcoming windows: a lower bound on the
    /// delay of every cross-shard envelope. Clamped to at least 1 ps by the
    /// driver. **Must not depend on the shard count** if runs with different
    /// shard counts are expected to produce identical results (the window
    /// sequence — and therefore where budget/stop checks land — derives from
    /// it).
    fn lookahead(&self) -> SimDuration;
}

pub(crate) struct ShardCell<M: ShardModel> {
    shard: usize,
    pub(crate) model: M,
    active: CalendarQueue<M::Event>,
    passive: CalendarQueue<M::Event>,
    outbox: Vec<Envelope<M::Event>>,
    /// Cumulative events processed by this cell (active + passive).
    events: u64,
    /// Cumulative active events processed by this cell.
    active_events: u64,
}

impl<M: ShardModel> ShardCell<M> {
    fn push(&mut self, at: SimTime, key: u64, event: M::Event, classify: fn(u64) -> bool) {
        if classify(key) {
            self.passive.push(at, EventId(key), event);
        } else {
            self.active.push(at, EventId(key), event);
        }
    }

    /// Processes every pending event strictly before `end_ps`, merging the
    /// active and passive calendars in `(time, key)` order.
    fn drain(&mut self, end_ps: u64, classify: fn(u64) -> bool) {
        loop {
            let a = self.active.peek_entry();
            let p = self.passive.peek_entry();
            let (t, from_passive) = match (a, p) {
                (None, None) => break,
                (Some((ta, _)), None) => (ta, false),
                (None, Some((tp, _))) => (tp, true),
                (Some((ta, ka)), Some((tp, kp))) => {
                    if (tp, kp.0) < (ta, ka.0) {
                        (tp, true)
                    } else {
                        (ta, false)
                    }
                }
            };
            if t.as_picos() >= end_ps {
                break;
            }
            let (at, _id, event) = if from_passive {
                self.passive.pop().expect("peeked event must pop")
            } else {
                self.active.pop().expect("peeked event must pop")
            };
            self.events += 1;
            if !from_passive {
                self.active_events += 1;
            }
            let mut ctx = WindowCtx {
                now: at,
                shard: self.shard,
                window_end_ps: end_ps,
                active: &mut self.active,
                passive: &mut self.passive,
                outbox: &mut self.outbox,
                classify,
                #[cfg(debug_assertions)]
                handling_passive: from_passive,
            };
            self.model.handle(&mut ctx, event);
        }
    }

    /// Earliest pending `(active, passive)` instants in picoseconds
    /// (`u64::MAX` when the respective calendar is empty).
    fn mins(&mut self) -> (u64, u64) {
        let a = self
            .active
            .peek_entry()
            .map_or(u64::MAX, |(t, _)| t.as_picos());
        let p = self
            .passive
            .peek_entry()
            .map_or(u64::MAX, |(t, _)| t.as_picos());
        (a, p)
    }
}

/// What [`WindowedSim::run`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowedOutcome {
    /// Why the run ended (same vocabulary as the monolithic engine).
    pub outcome: RunOutcome,
    /// The clock when the run ended.
    pub now: SimTime,
    /// Total events processed across all shards.
    pub events: u64,
    /// Number of conservative windows executed.
    pub windows: u64,
    /// Number of sync points executed.
    pub syncs: u64,
}

/// Seal value a worker stores when it unwinds: peers spinning on the seal
/// panic instead of deadlocking.
const POISONED: u64 = u64::MAX;

/// Consecutive passive-only windows before fusion engages.
const FUSION_STREAK: u64 = 4;

/// A fused window never spans more than this many lookaheads.
const FUSION_CAP: u64 = 1024;

/// Per-round summary a worker publishes about its owned cells.
#[derive(Debug, Default)]
struct RoundData {
    /// Earliest pending active event (ps) across owned cells and envelopes
    /// flushed this round.
    active_min: AtomicU64,
    /// Earliest pending passive event (ps), same coverage.
    passive_min: AtomicU64,
    /// Cumulative events processed by owned cells.
    events: AtomicU64,
    /// Cumulative active events processed by owned cells.
    active_events: AtomicU64,
    /// Sum of owned models' stop contributions.
    contrib: AtomicU64,
}

/// One worker's slot on the board: a monotonic seal plus a parity pair of
/// round summaries. Cache-line aligned so seal spinning stays local.
#[repr(align(128))]
struct PhaseSlot {
    /// Highest round this worker has sealed ([`POISONED`] on panic).
    seal: AtomicU64,
    rounds: [RoundData; 2],
}

impl PhaseSlot {
    fn new() -> Self {
        PhaseSlot {
            seal: AtomicU64::new(0),
            rounds: [RoundData::default(), RoundData::default()],
        }
    }

    /// Stores `totals` into the parity slot of `round` (plain stores — the
    /// Release is the subsequent seal update).
    fn store_round(&self, round: u64, totals: &WorkerTotals) {
        let slot = &self.rounds[(round % 2) as usize];
        slot.active_min.store(totals.active_min, Ordering::Relaxed);
        slot.passive_min
            .store(totals.passive_min, Ordering::Relaxed);
        slot.events.store(totals.events, Ordering::Relaxed);
        slot.active_events
            .store(totals.active_events, Ordering::Relaxed);
        slot.contrib.store(totals.contrib, Ordering::Relaxed);
    }

    /// Publishes `totals` for `round` and seals it.
    fn publish(&self, round: u64, totals: &WorkerTotals) {
        self.store_round(round, totals);
        self.seal.store(round, Ordering::Release);
    }
}

/// The shared coordination state of one run.
struct Board {
    phases: Vec<PhaseSlot>,
    /// Current conservative lookahead in ps (sampled from the hook).
    lookahead_ps: AtomicU64,
    /// Next sync instant in ps (`u64::MAX` = none; sampled from the hook).
    next_sync_ps: AtomicU64,
    /// Stop threshold over summed contributions (sampled from the hook).
    stop_threshold: AtomicU64,
    /// Completed sync count; peers park on this while worker 0 runs the hook.
    sync_gen: AtomicU64,
    /// More workers than hardware threads: a waiting worker's peer cannot
    /// be running concurrently, so spinning only steals the CPU the peer
    /// needs — yield immediately instead.
    oversubscribed: bool,
}

impl Board {
    fn new(workers: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Board {
            phases: (0..workers).map(|_| PhaseSlot::new()).collect(),
            lookahead_ps: AtomicU64::new(1),
            next_sync_ps: AtomicU64::new(u64::MAX),
            stop_threshold: AtomicU64::new(u64::MAX),
            sync_gen: AtomicU64::new(0),
            oversubscribed: workers > cores,
        }
    }

    /// Folds every worker's summary for `round` into one global snapshot.
    fn snapshot(&self, round: u64) -> Snapshot {
        let parity = (round % 2) as usize;
        let mut s = Snapshot {
            active_min: u64::MAX,
            passive_min: u64::MAX,
            events: 0,
            active_events: 0,
            contrib: 0,
        };
        for phase in &self.phases {
            let r = &phase.rounds[parity];
            s.active_min = s.active_min.min(r.active_min.load(Ordering::Relaxed));
            s.passive_min = s.passive_min.min(r.passive_min.load(Ordering::Relaxed));
            s.events += r.events.load(Ordering::Relaxed);
            s.active_events += r.active_events.load(Ordering::Relaxed);
            s.contrib += r.contrib.load(Ordering::Relaxed);
        }
        s
    }
}

/// The global pending/progress state all workers plan from: identical on
/// every worker because it derives only from sealed round summaries.
#[derive(Debug, Clone, Copy)]
struct Snapshot {
    active_min: u64,
    passive_min: u64,
    events: u64,
    active_events: u64,
    contrib: u64,
}

/// Accumulator for one worker's owned cells within one round.
#[derive(Debug, Clone, Copy)]
struct WorkerTotals {
    active_min: u64,
    passive_min: u64,
    events: u64,
    active_events: u64,
    contrib: u64,
}

impl WorkerTotals {
    fn new() -> Self {
        WorkerTotals {
            active_min: u64::MAX,
            passive_min: u64::MAX,
            events: 0,
            active_events: 0,
            contrib: 0,
        }
    }

    fn absorb_cell<M: ShardModel>(&mut self, cell: &mut ShardCell<M>) {
        let (a, p) = cell.mins();
        self.active_min = self.active_min.min(a);
        self.passive_min = self.passive_min.min(p);
        self.events += cell.events;
        self.active_events += cell.active_events;
        self.contrib += cell.model.stop_contribution();
    }

    fn cover_envelope(&mut self, at_ps: u64, passive: bool) {
        if passive {
            self.passive_min = self.passive_min.min(at_ps);
        } else {
            self.active_min = self.active_min.min(at_ps);
        }
    }
}

/// One step of the window planner.
enum Plan {
    /// Run the sync hook at this instant.
    Sync(SimTime),
    /// Drain all shards up to `end_ps`; `fused_ps` is how far the edge was
    /// extended beyond one lookahead (0 = unfused).
    Window { end_ps: u64, fused_ps: u64 },
    /// Nothing left to do.
    Done(RunOutcome),
}

/// A planning decision plus the accounting of the window that just finished
/// (its length and event delta, for the profiler).
struct Decision {
    step: Plan,
    finished: Option<(u64, u64)>,
}

/// The replicated control state: every worker owns a `Planner` and feeds it
/// the same snapshots, so all copies stay in lockstep — the plan is a pure
/// function of sealed sim state, never of worker identity or wall clock.
#[derive(Debug, Clone)]
struct Planner {
    now: SimTime,
    horizon: SimTime,
    budget: u64,
    windows: u64,
    syncs: u64,
    prev_events: u64,
    prev_active: u64,
    /// Consecutive windows that processed zero active events (and therefore
    /// could not have produced a cross-shard envelope). A pure function of
    /// event content, so identical across shard and worker counts.
    streak: u64,
    /// The window planned last round, awaiting accounting.
    prev_window: Option<(u64, u64)>,
}

impl Planner {
    /// Accounts the previous round's window (budget/stop checks land here,
    /// in the same order as the serial engine) and plans the next step.
    fn plan(
        &mut self,
        snap: &Snapshot,
        lookahead_ps: u64,
        next_sync_ps: u64,
        stop_threshold: u64,
    ) -> Decision {
        let mut finished = None;
        if let Some((start, end)) = self.prev_window.take() {
            self.windows += 1;
            self.now = SimTime::from_picos(end.saturating_sub(1)).min(self.horizon);
            let delta = snap.events.saturating_sub(self.prev_events);
            self.prev_events = snap.events;
            let active_delta = snap.active_events.saturating_sub(self.prev_active);
            self.prev_active = snap.active_events;
            if active_delta == 0 {
                self.streak += 1;
            } else {
                self.streak = 0;
            }
            finished = Some((end.saturating_sub(start), delta));
            if snap.events >= self.budget {
                return Decision {
                    step: Plan::Done(RunOutcome::EventBudgetExhausted),
                    finished,
                };
            }
            if snap.contrib >= stop_threshold {
                return Decision {
                    step: Plan::Done(RunOutcome::Stopped),
                    finished,
                };
            }
        }
        // `u64::MAX` means "no sync point" — it must never be stepped to,
        // even with an unbounded horizon.
        let has_sync = next_sync_ps < u64::MAX;
        let lookahead = lookahead_ps.max(1);
        let horizon_ps = self.horizon.as_picos();
        let t = snap.active_min.min(snap.passive_min);
        let step = if t == u64::MAX {
            if has_sync && next_sync_ps <= horizon_ps {
                Plan::Sync(SimTime::from_picos(next_sync_ps))
            } else {
                Plan::Done(RunOutcome::Drained)
            }
        } else if has_sync && next_sync_ps <= t.min(horizon_ps) {
            Plan::Sync(SimTime::from_picos(next_sync_ps))
        } else if t > horizon_ps {
            self.now = self.horizon;
            Plan::Done(RunOutcome::HorizonReached)
        } else {
            // Half-open [t, end): the window may not cross the next sync
            // point, and events exactly at the horizon still run.
            let bound = |e: u64| e.min(next_sync_ps).min(horizon_ps.saturating_add(1));
            let base = bound(t.saturating_add(lookahead));
            let mut end = base;
            let mut fused_ps = 0;
            // Fusion: only passive events below the earliest active one, so
            // nothing in [t, end) can send below the edge as long as the edge
            // stays ≤ active_min + lookahead. Disabled when budget/stop
            // checks must land on the unfused window lattice.
            if self.budget == u64::MAX
                && stop_threshold == u64::MAX
                && self.streak >= FUSION_STREAK
                && snap.active_min > t
            {
                let cap = bound(
                    snap.active_min
                        .saturating_add(lookahead)
                        .min(t.saturating_add(lookahead.saturating_mul(FUSION_CAP))),
                );
                if cap > base {
                    fused_ps = cap - base;
                    end = cap;
                }
            }
            self.prev_window = Some((t, end));
            Plan::Window {
                end_ps: end,
                fused_ps,
            }
        };
        Decision { step, finished }
    }
}

/// Stores [`POISONED`] into the owner's seal on unwind so peers spinning on
/// it panic instead of deadlocking.
struct PoisonGuard<'a> {
    seal: &'a AtomicU64,
    armed: bool,
}

impl<'a> PoisonGuard<'a> {
    fn new(seal: &'a AtomicU64) -> Self {
        PoisonGuard { seal, armed: true }
    }

    fn defuse(mut self) {
        self.armed = false;
    }
}

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.seal.store(POISONED, Ordering::Release);
        }
    }
}

/// Deterministic wall-clock jitter for stress tests: occasionally sleeps or
/// yields based on a hash of `(seed, worker, round)`. Never touches sim
/// state, so results are unaffected by construction.
fn stagger_pause(seed: u64, worker: u64, round: u64) {
    let mut x = seed
        ^ worker.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ round.wrapping_mul(0xD1B5_4A32_D192_ED03);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    match x % 8 {
        0 => std::thread::sleep(std::time::Duration::from_micros((x >> 8) % 50)),
        1 | 2 => std::thread::yield_now(),
        _ => {}
    }
}

struct CellSlot<M: ShardModel> {
    cell: Mutex<ShardCell<M>>,
    /// Envelopes flushed to this cell by other workers, merged into the
    /// cell's calendars at the start of the owner's next round. Leaf lock:
    /// taken only while holding a cell lock (cell → inbox), never the
    /// reverse.
    inbox: Mutex<Vec<Envelope<M::Event>>>,
}

/// A sharded simulation advanced in conservative time windows.
pub struct WindowedSim<M: ShardModel> {
    cells: Vec<CellSlot<M>>,
    now: SimTime,
    events: u64,
    event_budget: u64,
    /// Worker threads used for window execution (0 = one per shard, capped
    /// at the machine's parallelism).
    workers: usize,
    /// The model's passive-key classifier, captured as a fn pointer so cell
    /// plumbing stays generic over the event type only.
    classify: fn(u64) -> bool,
    /// Chaos seed for stress tests (see [`WindowedSim::with_stagger`]).
    stagger: Option<u64>,
    /// Shard/window profiler (barrier waits, drain times, window stats);
    /// `None` (the default) records nothing and reads no clocks.
    profiler: Option<Arc<WindowProfiler>>,
    /// Trace/metrics hook for span recording; disabled by default.
    observer: Observer,
}

impl<M: ShardModel> WindowedSim<M> {
    /// Creates a windowed simulation over one model per shard.
    pub fn new(models: Vec<M>) -> Self {
        assert!(
            !models.is_empty(),
            "a windowed sim needs at least one shard"
        );
        let cells = models
            .into_iter()
            .enumerate()
            .map(|(shard, model)| CellSlot {
                cell: Mutex::new(ShardCell {
                    shard,
                    model,
                    active: CalendarQueue::new(),
                    passive: CalendarQueue::new(),
                    outbox: Vec::new(),
                    events: 0,
                    active_events: 0,
                }),
                inbox: Mutex::new(Vec::new()),
            })
            .collect();
        WindowedSim {
            cells,
            now: SimTime::ZERO,
            events: 0,
            event_budget: u64::MAX,
            workers: 0,
            classify: M::passive_key,
            stagger: None,
            profiler: None,
            observer: Observer::off(),
        }
    }

    /// Caps the total number of events processed across all shards.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Sets the worker-thread count (0 = one per shard, capped at the
    /// machine's parallelism). Thread count never affects results.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Injects deterministic wall-clock jitter (sleeps/yields keyed off
    /// `seed`, the worker index, and the round number) into the worker loop.
    /// For stress-testing the round protocol: staggered workers must still
    /// produce identical results. Never affects sim state.
    pub fn with_stagger(mut self, seed: u64) -> Self {
        self.stagger = Some(seed);
        self
    }

    /// Attaches a shard/window profiler. The profiler records wall-clock
    /// barrier waits and drain times plus deterministic per-shard event and
    /// mailbox counts; it never influences the run. Its slot count must
    /// cover this sim's shards.
    pub fn with_profiler(mut self, profiler: Arc<WindowProfiler>) -> Self {
        assert!(
            profiler.shard_count() >= self.cells.len(),
            "profiler has {} shard slots but the sim has {} shards",
            profiler.shard_count(),
            self.cells.len()
        );
        self.profiler = Some(profiler);
        self
    }

    /// Attaches an observer (trace sink / metrics registry). Window, drain,
    /// and sync spans are recorded when the observer carries a trace sink;
    /// the default [`Observer::off`] records nothing.
    pub fn with_observer(mut self, observer: Observer) -> Self {
        self.observer = observer;
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.cells.len()
    }

    /// The current simulated time (the low edge of planning).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Schedules an event on shard `shard` from outside the run (seeding).
    pub fn schedule(&mut self, shard: usize, at: SimTime, key: u64, event: M::Event) {
        let classify = self.classify;
        let cell = self.cells[shard]
            .cell
            .get_mut()
            .expect("shard lock poisoned");
        cell.push(at, key, event, classify);
    }

    /// Exclusive access to shard `shard`'s model between runs.
    pub fn model_mut(&mut self, shard: usize) -> &mut M {
        &mut self.cells[shard]
            .cell
            .get_mut()
            .expect("shard lock poisoned")
            .model
    }

    /// Consumes the simulation, returning the shard models in order.
    pub fn into_models(self) -> Vec<M> {
        self.cells
            .into_iter()
            .map(|c| c.cell.into_inner().expect("shard lock poisoned").model)
            .collect()
    }

    /// Locks every shard (uncontended outside rounds) into a view.
    fn view(&self) -> ShardsView<'_, M> {
        ShardsView {
            guards: self
                .cells
                .iter()
                .map(|c| c.cell.lock().expect("shard lock poisoned"))
                .collect(),
        }
    }

    /// Waits until every peer has sealed at least `target`. Records the wait
    /// (0 ns on the no-wait fast path, which counts as an early advance).
    fn wait_seals(&self, board: &Board, me: usize, workers: usize, target: u64) {
        if workers == 1 {
            return;
        }
        let profiler = self.profiler.as_deref();
        let start = profiler.map(|_| Instant::now());
        let mut waited = false;
        for (w, phase) in board.phases.iter().enumerate() {
            if w == me {
                continue;
            }
            let mut spins = 0u32;
            loop {
                let s = phase.seal.load(Ordering::Acquire);
                if s == POISONED {
                    panic!("peer window worker panicked");
                }
                if s >= target {
                    break;
                }
                waited = true;
                spins += 1;
                if spins < 64 && !board.oversubscribed {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        if let Some(p) = profiler {
            let nanos = if waited {
                start.expect("profiler wait start").elapsed().as_nanos() as u64
            } else {
                0
            };
            p.record_barrier_wait(me, nanos);
            if !waited && target >= 1 {
                p.record_early_advance(me);
            }
        }
    }

    /// Merges a cell's inbox into its calendars, drains it through the
    /// window, flushes its outbox into destination inboxes (covering the
    /// envelopes' instants in `totals`), and absorbs the cell's summary.
    fn process_cell(
        &self,
        idx: usize,
        end_ps: Option<u64>,
        totals: &mut WorkerTotals,
        profiler: Option<&WindowProfiler>,
    ) {
        let classify = self.classify;
        let slot = &self.cells[idx];
        let mut cell = slot.cell.lock().expect("shard lock poisoned");
        {
            let mut inbox = slot.inbox.lock().expect("inbox lock poisoned");
            for env in inbox.drain(..) {
                cell.push(env.at, env.key, env.event, classify);
            }
        }
        if let Some(end_ps) = end_ps {
            match profiler {
                Some(p) => {
                    let before = cell.events;
                    let start = Instant::now();
                    cell.drain(end_ps, classify);
                    p.record_drain(
                        cell.shard,
                        start.elapsed().as_nanos() as u64,
                        cell.events - before,
                    );
                }
                None => cell.drain(end_ps, classify),
            }
            for env in cell.outbox.drain(..) {
                if let Some(p) = profiler {
                    p.record_mailbox_in(env.to, 1);
                }
                totals.cover_envelope(env.at.as_picos(), classify(env.key));
                self.cells[env.to]
                    .inbox
                    .lock()
                    .expect("inbox lock poisoned")
                    .push(env);
            }
        }
        totals.absorb_cell(&mut cell);
    }

    /// The per-worker round loop. Worker 0 carries the hook (peers pass
    /// `None`) and is the only worker that runs sync callbacks and records
    /// profiler window/sync totals; every worker runs the identical planner.
    fn worker_loop<H: SyncHook<M>>(
        &self,
        board: &Board,
        mut hook: Option<&mut H>,
        worker: usize,
        workers: usize,
        mut planner: Planner,
    ) -> WindowedOutcome {
        let profiler = self.profiler.as_deref();
        let guard = PoisonGuard::new(&board.phases[worker].seal);
        let mut round: u64 = 1;
        let outcome = loop {
            if let Some(seed) = self.stagger {
                if workers > 1 {
                    stagger_pause(seed, worker as u64, round);
                }
            }
            self.wait_seals(board, worker, workers, round - 1);
            let snap = board.snapshot(round - 1);
            let decision = planner.plan(
                &snap,
                board.lookahead_ps.load(Ordering::Relaxed),
                board.next_sync_ps.load(Ordering::Relaxed),
                board.stop_threshold.load(Ordering::Relaxed),
            );
            if worker == 0 {
                if let (Some(p), Some((len_ps, events))) = (profiler, decision.finished) {
                    p.record_window(len_ps, events);
                }
            }
            match decision.step {
                Plan::Done(outcome) => break outcome,
                Plan::Sync(at) => {
                    let mut totals = WorkerTotals::new();
                    for idx in (worker..self.cells.len()).step_by(workers) {
                        self.process_cell(idx, None, &mut totals, profiler);
                    }
                    board.phases[worker].publish(round, &totals);
                    if worker == 0 {
                        self.wait_seals(board, worker, workers, round);
                        let hook = hook.as_mut().expect("worker 0 carries the sync hook");
                        {
                            let _span = self.observer.span(0, "sync", "windows");
                            let mut view = self.view();
                            hook.on_sync(at, &mut view);
                            // Republish every worker's summary from the
                            // post-hook state: `on_sync` may have mutated
                            // models or scheduled events.
                            for (w, phase) in board.phases.iter().enumerate() {
                                let mut t = WorkerTotals::new();
                                for idx in (w..self.cells.len()).step_by(workers) {
                                    t.absorb_cell(&mut view.guards[idx]);
                                }
                                phase.store_round(round, &t);
                            }
                        }
                        board
                            .lookahead_ps
                            .store(hook.lookahead().as_picos().max(1), Ordering::Relaxed);
                        board
                            .next_sync_ps
                            .store(hook.next_sync().as_picos(), Ordering::Relaxed);
                        board
                            .stop_threshold
                            .store(hook.stop_threshold(), Ordering::Relaxed);
                        if let Some(p) = profiler {
                            p.record_sync();
                        }
                        board.sync_gen.store(planner.syncs + 1, Ordering::Release);
                    } else {
                        let w0 = &board.phases[0].seal;
                        let mut spins = 0u32;
                        while board.sync_gen.load(Ordering::Acquire) <= planner.syncs {
                            if w0.load(Ordering::Acquire) == POISONED {
                                panic!("peer window worker panicked");
                            }
                            spins += 1;
                            if spins < 64 && !board.oversubscribed {
                                std::hint::spin_loop();
                            } else {
                                std::thread::yield_now();
                            }
                        }
                    }
                    planner.syncs += 1;
                    planner.now = at;
                }
                Plan::Window { end_ps, fused_ps } => {
                    let mut span = if worker == 0 {
                        if let (Some(p), true) = (profiler, fused_ps > 0) {
                            p.record_fused_window(fused_ps);
                        }
                        self.observer.span(0, "window", "windows")
                    } else {
                        self.observer.span(worker as u64, "drain", "windows")
                    };
                    if worker == 0 && self.observer.is_enabled() {
                        span.arg_u64("end_ps", end_ps);
                    }
                    let mut totals = WorkerTotals::new();
                    for idx in (worker..self.cells.len()).step_by(workers) {
                        self.process_cell(idx, Some(end_ps), &mut totals, profiler);
                    }
                    drop(span);
                    board.phases[worker].publish(round, &totals);
                }
            }
            round += 1;
        };
        guard.defuse();
        WindowedOutcome {
            outcome,
            now: planner.now,
            events: planner.prev_events,
            windows: planner.windows,
            syncs: planner.syncs,
        }
    }

    /// Runs until `horizon` (inclusive), the queues drain, the hook's stop
    /// threshold is met, or the event budget is exhausted.
    pub fn run<H: SyncHook<M>>(&mut self, horizon: SimTime, hook: &mut H) -> WindowedOutcome {
        let workers = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(self.cells.len())
        } else {
            self.workers.min(self.cells.len())
        }
        .max(1);
        if let Some(sink) = self.observer.trace() {
            for w in 0..workers {
                sink.name_lane(w as u64, format!("worker {w}"));
            }
        }
        // Single-threaded prologue: merge any envelopes left in inboxes by a
        // previous budget/stop exit, then publish every worker's round-0
        // summary so the first round plans from complete coverage.
        let board = Board::new(workers);
        let classify = self.classify;
        let mut prev_events = 0u64;
        let mut prev_active = 0u64;
        for (w, phase) in board.phases.iter().enumerate() {
            let mut totals = WorkerTotals::new();
            for idx in (w..self.cells.len()).step_by(workers) {
                let slot = &mut self.cells[idx];
                let cell = slot.cell.get_mut().expect("shard lock poisoned");
                let inbox = slot.inbox.get_mut().expect("inbox lock poisoned");
                for env in inbox.drain(..) {
                    cell.push(env.at, env.key, env.event, classify);
                }
                totals.absorb_cell(cell);
            }
            phase.store_round(0, &totals);
            prev_events += totals.events;
            prev_active += totals.active_events;
        }
        board
            .lookahead_ps
            .store(hook.lookahead().as_picos().max(1), Ordering::Relaxed);
        board
            .next_sync_ps
            .store(hook.next_sync().as_picos(), Ordering::Relaxed);
        board
            .stop_threshold
            .store(hook.stop_threshold(), Ordering::Relaxed);
        let planner = Planner {
            now: self.now,
            horizon,
            budget: self.event_budget,
            windows: 0,
            syncs: 0,
            prev_events,
            prev_active,
            streak: 0,
            prev_window: None,
        };
        let result = if workers == 1 {
            self.worker_loop(&board, Some(hook), 0, 1, planner)
        } else {
            let this = &*self;
            let board = &board;
            std::thread::scope(|scope| {
                for w in 1..workers {
                    let peer_planner = planner.clone();
                    scope.spawn(move || {
                        this.worker_loop::<H>(board, None, w, workers, peer_planner);
                    });
                }
                this.worker_loop(board, Some(hook), 0, workers, planner)
            })
        };
        self.now = result.now;
        self.events = result.events;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ring of logical nodes passing a token: node `n` receives the token,
    /// records `(time, n, hops)`, and forwards it to `(n + 1) % nodes` with a
    /// fixed latency. Nodes are mapped onto shards round-robin, so different
    /// shard counts exercise both local sends and cross-shard envelopes.
    struct Ring {
        shard: usize,
        shards: usize,
        nodes: usize,
        latency: SimDuration,
        hops_left: u64,
        trace: Vec<(u64, usize, u64)>,
    }

    #[derive(Debug)]
    struct Token {
        node: usize,
        hops: u64,
    }

    impl ShardModel for Ring {
        type Event = Token;
        fn handle(&mut self, ctx: &mut WindowCtx<'_, Token>, token: Token) {
            assert_eq!(token.node % self.shards, self.shard);
            self.trace
                .push((ctx.now().as_picos(), token.node, token.hops));
            if token.hops >= self.hops_left {
                return;
            }
            let next = (token.node + 1) % self.nodes;
            ctx.send(
                next % self.shards,
                ctx.now() + self.latency,
                token.hops + 1,
                Token {
                    node: next,
                    hops: token.hops + 1,
                },
            );
        }

        fn stop_contribution(&self) -> u64 {
            self.trace.len() as u64
        }
    }

    struct NoSync {
        lookahead: SimDuration,
    }
    impl SyncHook<Ring> for NoSync {
        fn next_sync(&self) -> SimTime {
            SimTime::MAX
        }
        fn on_sync(&mut self, _: SimTime, _: &mut ShardsView<'_, Ring>) {}
        fn lookahead(&self) -> SimDuration {
            self.lookahead
        }
    }

    fn ring_models(shards: usize, hops: u64) -> Vec<Ring> {
        (0..shards)
            .map(|shard| Ring {
                shard,
                shards,
                nodes: 5,
                latency: SimDuration::from_nanos(7),
                hops_left: hops,
                trace: Vec::new(),
            })
            .collect()
    }

    fn collect_trace(sim: WindowedSim<Ring>) -> Vec<(u64, usize, u64)> {
        let mut trace: Vec<(u64, usize, u64)> = sim
            .into_models()
            .into_iter()
            .flat_map(|m| m.trace)
            .collect();
        trace.sort();
        trace
    }

    fn run_ring(shards: usize, workers: usize) -> Vec<(u64, usize, u64)> {
        let latency = SimDuration::from_nanos(7);
        let mut sim = WindowedSim::new(ring_models(shards, 200)).with_workers(workers);
        sim.schedule(0, SimTime::ZERO, 0, Token { node: 0, hops: 0 });
        let out = sim.run(SimTime::MAX, &mut NoSync { lookahead: latency });
        assert_eq!(out.outcome, RunOutcome::Drained);
        assert_eq!(out.events, 201);
        collect_trace(sim)
    }

    /// An instrumented run produces the identical trace, and the profiler
    /// accounts every event, window, and cross-shard envelope.
    #[test]
    fn profiling_does_not_change_the_trace() {
        let baseline = run_ring(3, 2);
        let latency = SimDuration::from_nanos(7);
        let profiler = Arc::new(WindowProfiler::new(3));
        let mut sim = WindowedSim::new(ring_models(3, 200))
            .with_workers(2)
            .with_profiler(profiler.clone())
            .with_observer(Observer::enabled());
        sim.schedule(0, SimTime::ZERO, 0, Token { node: 0, hops: 0 });
        let out = sim.run(SimTime::MAX, &mut NoSync { lookahead: latency });
        assert_eq!(out.outcome, RunOutcome::Drained);
        let trace = collect_trace(sim);
        assert_eq!(trace, baseline);
        let profile = profiler.snapshot();
        assert_eq!(profile.shard_events().iter().sum::<u64>(), out.events);
        assert_eq!(profile.windows, out.windows);
        // The ring crosses shards, so envelopes flowed through the mailbox.
        assert!(profile.shards.iter().map(|s| s.mailbox_in).sum::<u64>() > 0);
        // Two workers both recorded their round waits.
        assert!(profile.workers[0].barrier_waits > 0);
        assert!(profile.workers[1].barrier_waits > 0);
        assert_eq!(profile.events_per_window.sum, out.events);
    }

    #[test]
    fn shard_count_does_not_change_the_trace() {
        let one = run_ring(1, 1);
        assert_eq!(one.len(), 201);
        assert_eq!(one, run_ring(2, 1));
        assert_eq!(one, run_ring(5, 2));
        assert_eq!(one, run_ring(3, 3));
    }

    /// Deterministically staggered workers (injected sleeps/yields at round
    /// entry) still produce the identical trace: the round protocol never
    /// lets wall-clock skew reach sim state.
    #[test]
    fn staggered_workers_produce_identical_traces() {
        let baseline = run_ring(1, 1);
        for (shards, workers, seed) in [(5, 2, 11u64), (5, 3, 12), (3, 3, 99), (4, 2, 7)] {
            let latency = SimDuration::from_nanos(7);
            let mut sim = WindowedSim::new(ring_models(shards, 200))
                .with_workers(workers)
                .with_stagger(seed);
            sim.schedule(0, SimTime::ZERO, 0, Token { node: 0, hops: 0 });
            let out = sim.run(SimTime::MAX, &mut NoSync { lookahead: latency });
            assert_eq!(out.outcome, RunOutcome::Drained);
            assert_eq!(out.events, 201);
            assert_eq!(
                collect_trace(sim),
                baseline,
                "stagger seed {seed} with {shards} shards / {workers} workers diverged"
            );
        }
    }

    #[test]
    fn event_budget_stops_the_run() {
        let models: Vec<Ring> = (0..2)
            .map(|shard| Ring {
                shard,
                shards: 2,
                nodes: 2,
                latency: SimDuration::from_nanos(1),
                hops_left: u64::MAX,
                trace: Vec::new(),
            })
            .collect();
        let mut sim = WindowedSim::new(models)
            .with_event_budget(100)
            .with_workers(1);
        sim.schedule(0, SimTime::ZERO, 0, Token { node: 0, hops: 0 });
        let out = sim.run(
            SimTime::MAX,
            &mut NoSync {
                lookahead: SimDuration::from_nanos(1),
            },
        );
        assert_eq!(out.outcome, RunOutcome::EventBudgetExhausted);
        assert!(out.events >= 100);
    }

    /// The hook's stop threshold over summed shard contributions replaces
    /// the old per-window callback, and the stop lands on the same window
    /// edge for every shard and worker count.
    #[test]
    fn stop_threshold_is_shard_and_worker_invariant() {
        struct StopAt {
            lookahead: SimDuration,
            threshold: u64,
        }
        impl SyncHook<Ring> for StopAt {
            fn next_sync(&self) -> SimTime {
                SimTime::MAX
            }
            fn on_sync(&mut self, _: SimTime, _: &mut ShardsView<'_, Ring>) {}
            fn lookahead(&self) -> SimDuration {
                self.lookahead
            }
            fn stop_threshold(&self) -> u64 {
                self.threshold
            }
        }
        let run = |shards: usize, workers: usize| {
            let mut sim = WindowedSim::new(ring_models(shards, u64::MAX)).with_workers(workers);
            sim.schedule(0, SimTime::ZERO, 0, Token { node: 0, hops: 0 });
            let out = sim.run(
                SimTime::MAX,
                &mut StopAt {
                    lookahead: SimDuration::from_nanos(7),
                    threshold: 50,
                },
            );
            assert_eq!(out.outcome, RunOutcome::Stopped);
            assert!(out.events >= 50);
            (out.now, out.events, collect_trace(sim))
        };
        let one = run(1, 1);
        assert_eq!(one, run(3, 2));
        assert_eq!(one, run(5, 3));
    }

    #[test]
    fn horizon_bounds_the_run() {
        let models: Vec<Ring> = vec![Ring {
            shard: 0,
            shards: 1,
            nodes: 1,
            latency: SimDuration::from_nanos(10),
            hops_left: u64::MAX,
            trace: Vec::new(),
        }];
        let mut sim = WindowedSim::new(models).with_workers(1);
        sim.schedule(0, SimTime::ZERO, 0, Token { node: 0, hops: 0 });
        let out = sim.run(
            SimTime::from_nanos(100),
            &mut NoSync {
                lookahead: SimDuration::from_nanos(10),
            },
        );
        assert_eq!(out.outcome, RunOutcome::HorizonReached);
        // Tokens at 0, 10, ..., 100 ns inclusive.
        assert_eq!(out.events, 11);
        assert_eq!(out.now, SimTime::from_nanos(100));
    }

    /// Sync points interleave deterministically with events: everything
    /// strictly before the sync instant is processed first.
    #[test]
    fn sync_points_observe_a_consistent_cut() {
        struct EpochHook {
            next: SimTime,
            period: SimDuration,
            cuts: Vec<(u64, usize)>,
        }
        impl SyncHook<Ring> for EpochHook {
            fn next_sync(&self) -> SimTime {
                self.next
            }
            fn on_sync(&mut self, at: SimTime, shards: &mut ShardsView<'_, Ring>) {
                let seen: usize = (0..shards.len()).map(|i| shards.model(i).trace.len()).sum();
                self.cuts.push((at.as_picos(), seen));
                self.next = at + self.period;
            }
            fn lookahead(&self) -> SimDuration {
                SimDuration::from_nanos(7)
            }
        }
        let run = |shards: usize, workers: usize| {
            let models: Vec<Ring> = (0..shards)
                .map(|shard| Ring {
                    shard,
                    shards,
                    nodes: 4,
                    latency: SimDuration::from_nanos(7),
                    hops_left: 50,
                    trace: Vec::new(),
                })
                .collect();
            let mut sim = WindowedSim::new(models).with_workers(workers);
            sim.schedule(0, SimTime::ZERO, 0, Token { node: 0, hops: 0 });
            let mut hook = EpochHook {
                next: SimTime::from_nanos(20),
                period: SimDuration::from_nanos(20),
                cuts: Vec::new(),
            };
            let out = sim.run(SimTime::from_nanos(400), &mut hook);
            assert_eq!(out.outcome, RunOutcome::Drained);
            assert!(out.syncs > 0);
            hook.cuts
        };
        let one = run(1, 1);
        assert_eq!(one, run(4, 1));
        assert_eq!(one, run(4, 3));
    }

    /// A model with passive tail events (deliveries that only fold into
    /// state): after enough passive-only windows the planner fuses windows,
    /// shrinking the window count without moving a single event.
    mod fusion {
        use super::*;

        const PASSIVE_BIT: u64 = 1 << 63;

        struct Soak {
            shard: usize,
            shards: usize,
            trace: Vec<(u64, u64)>,
        }

        impl ShardModel for Soak {
            type Event = u64;
            fn handle(&mut self, ctx: &mut WindowCtx<'_, u64>, key: u64) {
                self.trace.push((ctx.now().as_picos(), key));
                // Active tokens hop to the next shard a few times; passive
                // events only record.
                if key & PASSIVE_BIT == 0 && key < 10 {
                    let to = (self.shard + 1) % self.shards;
                    ctx.send(to, ctx.now() + SimDuration::from_nanos(7), key + 1, key + 1);
                }
            }
            fn passive_key(key: u64) -> bool {
                key & PASSIVE_BIT != 0
            }
        }

        fn run_soak(
            shards: usize,
            workers: usize,
            profiler: Option<Arc<WindowProfiler>>,
        ) -> (WindowedOutcome, Vec<(u64, u64)>) {
            let models: Vec<Soak> = (0..shards)
                .map(|shard| Soak {
                    shard,
                    shards,
                    trace: Vec::new(),
                })
                .collect();
            let mut sim = WindowedSim::new(models).with_workers(workers);
            if let Some(p) = profiler {
                sim = sim.with_profiler(p);
            }
            // One active chain early, then a long passive tail: 300 events
            // spaced one lookahead apart starting at 1 µs.
            sim.schedule(0, SimTime::ZERO, 0, 0);
            for k in 0..300u64 {
                let at = SimTime::from_nanos(1_000 + 7 * k);
                let key = PASSIVE_BIT | k;
                sim.schedule((k as usize) % shards, at, key, key);
            }
            let out = sim.run(
                SimTime::MAX,
                &mut NoSyncSoak {
                    lookahead: SimDuration::from_nanos(7),
                },
            );
            assert_eq!(out.outcome, RunOutcome::Drained);
            assert_eq!(out.events, 311);
            let mut trace: Vec<(u64, u64)> = sim
                .into_models()
                .into_iter()
                .flat_map(|m| m.trace)
                .collect();
            trace.sort();
            (out, trace)
        }

        struct NoSyncSoak {
            lookahead: SimDuration,
        }
        impl SyncHook<Soak> for NoSyncSoak {
            fn next_sync(&self) -> SimTime {
                SimTime::MAX
            }
            fn on_sync(&mut self, _: SimTime, _: &mut ShardsView<'_, Soak>) {}
            fn lookahead(&self) -> SimDuration {
                self.lookahead
            }
        }

        #[test]
        fn passive_tails_fuse_windows_without_moving_events() {
            let (one, trace_one) = run_soak(1, 1, None);
            // The passive tail spans 300 lookaheads; fusion must collapse it
            // far below one window per event.
            assert!(
                one.windows < 100,
                "expected fused windows, got {}",
                one.windows
            );
            let profiler = Arc::new(WindowProfiler::new(3));
            let (three, trace_three) = run_soak(3, 2, Some(profiler.clone()));
            assert_eq!(trace_one, trace_three);
            assert_eq!(one.events, three.events);
            // The fusion lattice is shard-count independent: it keys off
            // active-event streaks, not cross-shard traffic counts.
            assert_eq!(one.windows, three.windows);
            assert_eq!(one.now, three.now);
            let profile = profiler.snapshot();
            assert!(profile.fused_windows > 0);
            assert!(profile.fused_picos > 0);
        }
    }

    #[test]
    #[should_panic(expected = "lookahead bound violated")]
    fn cross_shard_sends_below_the_window_edge_panic() {
        struct Bad {
            shard: usize,
        }
        impl ShardModel for Bad {
            type Event = ();
            fn handle(&mut self, ctx: &mut WindowCtx<'_, ()>, _: ()) {
                // Claims a 100 ns lookahead but sends 1 ns ahead.
                let to = 1 - self.shard;
                ctx.send(to, ctx.now() + SimDuration::from_nanos(1), 1, ());
            }
        }
        struct Hook;
        impl SyncHook<Bad> for Hook {
            fn next_sync(&self) -> SimTime {
                SimTime::MAX
            }
            fn on_sync(&mut self, _: SimTime, _: &mut ShardsView<'_, Bad>) {}
            fn lookahead(&self) -> SimDuration {
                SimDuration::from_nanos(100)
            }
        }
        let mut sim = WindowedSim::new(vec![Bad { shard: 0 }, Bad { shard: 1 }]).with_workers(1);
        sim.schedule(0, SimTime::from_nanos(50), 0, ());
        sim.run(SimTime::MAX, &mut Hook);
    }
}
