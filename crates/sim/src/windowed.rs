//! Conservative time-window execution of a sharded model.
//!
//! The monolithic [`Simulator`](crate::engine::Simulator) drives one model on
//! one core. This module is the substrate for running a simulation split
//! into **shards**: each shard owns a disjoint slice of the model's state and
//! a private [`CalendarQueue`], and the [`WindowedSim`] driver advances all
//! shards in lockstep **windows** bounded by a conservative lookahead — the
//! classic synchronous-window variant of conservative parallel DES. A shard
//! may freely process every event strictly before the window edge because the
//! protocol guarantees no other shard can still produce an event inside the
//! window:
//!
//! * Cross-shard interactions travel as [`Envelope`]s through per-shard
//!   **outboxes**. During a window each shard appends to its own outbox with
//!   no locking or atomics; envelopes are routed into the destination shards'
//!   queues at the barrier between windows.
//! * Every envelope must be timestamped at least one **lookahead** after the
//!   sending shard's current time (asserted at the barrier). The window
//!   length never exceeds the lookahead, so an envelope handed over at a
//!   barrier is always still in the receiver's future.
//!
//! ## Determinism: content-keyed event ordering
//!
//! The engine's schedulers deliver events in `(time, EventId)` order. The
//! monolithic simulator allocates ids from a sequence counter, which makes
//! same-instant ordering depend on *allocation order* — a property that
//! cannot be reproduced when the allocating work is distributed over shards.
//! The windowed driver therefore gives the **model** control of the id: every
//! scheduled event and envelope carries an explicit 64-bit `key`, and
//! same-instant events are delivered in ascending key order. A model that
//! derives keys from stable identities (flow ids, sequence numbers) gets an
//! event order that is a pure function of the simulation content — identical
//! for 1 shard and N shards, and identical no matter how envelopes interleave
//! with local scheduling.
//!
//! Two caveats follow from keyed ids: keys must be unique among events
//! pending at the same instant (models derive them from identities that can
//! be pending at most once), and cancellation is not offered (the lazy
//! cancel sets in the schedulers assume ids are never reused; keyed models
//! re-use a key only after its event was delivered).
//!
//! Global control that must observe *all* shards at one instant (e.g. a
//! telemetry/control epoch) runs through the [`SyncHook`]: the driver stops
//! window planning at `next_sync()`, calls `on_sync` with exclusive access to
//! every shard, and resumes. Sync points are driver-level, not events, so
//! they impose a total order against surrounding events: everything strictly
//! before the sync instant happens before it, everything at or after happens
//! after.
//!
//! Worker threads are persistent for the whole run and synchronise on a
//! spinning barrier; with a single worker (or one shard) the driver runs
//! inline with no synchronisation at all. Thread count never affects results
//! — only the shard *content* does, and a well-keyed model makes even the
//! shard count immaterial.

use crate::calendar::CalendarQueue;
use crate::engine::RunOutcome;
use crate::event::EventId;
use crate::queue::Scheduler;
use crate::time::{SimDuration, SimTime};
use rackfabric_obs::profile::WindowProfiler;
use rackfabric_obs::Observer;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// A cross-shard message: an event addressed to another shard at an absolute
/// instant, with the content-derived tie-break key.
#[derive(Debug)]
pub struct Envelope<E> {
    /// Destination shard index.
    pub to: usize,
    /// Absolute delivery instant (≥ sender's now + lookahead).
    pub at: SimTime,
    /// Content-derived tie-break key (see module docs).
    pub key: u64,
    /// The event payload delivered to the destination shard.
    pub event: E,
}

/// The scheduling interface handed to a shard while it processes one event.
pub struct WindowCtx<'a, E> {
    now: SimTime,
    shard: usize,
    window_end_ps: u64,
    queue: &'a mut CalendarQueue<E>,
    outbox: &'a mut Vec<Envelope<E>>,
}

impl<'a, E> WindowCtx<'a, E> {
    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The index of the shard processing this event.
    #[inline]
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Schedules a local event on this shard at `at` with tie-break `key`.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn schedule(&mut self, at: SimTime, key: u64, event: E) {
        assert!(
            at >= self.now,
            "shard {} scheduled an event in the past (now={}, at={})",
            self.shard,
            self.now,
            at
        );
        self.queue.push(at, EventId(key), event);
    }

    /// Sends an event to shard `to` (possibly this shard) at `at` with
    /// tie-break `key`. Self-sends short-circuit into the local queue —
    /// because delivery order is keyed, this is indistinguishable from a
    /// barrier hand-off, which is what keeps 1-shard and N-shard runs
    /// identical.
    ///
    /// # Panics
    /// Panics when a cross-shard send violates the conservative lookahead
    /// (`at` earlier than the current window's edge): such an envelope could
    /// land in a part of the window its receiver already processed.
    pub fn send(&mut self, to: usize, at: SimTime, key: u64, event: E) {
        if to == self.shard {
            self.schedule(at, key, event);
            return;
        }
        assert!(
            at.as_picos() >= self.window_end_ps,
            "shard {} sent an envelope below the conservative window edge \
             (at={}, window end={} ps): lookahead bound violated",
            self.shard,
            at,
            self.window_end_ps
        );
        self.outbox.push(Envelope { to, at, key, event });
    }
}

/// A model shard drivable by [`WindowedSim`].
pub trait ShardModel: Send {
    /// The event payload (local events and envelopes share the type).
    type Event: Send;

    /// Processes one event. All scheduling goes through the context.
    fn handle(&mut self, ctx: &mut WindowCtx<'_, Self::Event>, event: Self::Event);
}

/// Exclusive access to every shard, handed to [`SyncHook`] callbacks at
/// barriers (models live behind per-shard locks during a parallel run).
pub struct ShardsView<'a, M: ShardModel> {
    guards: Vec<MutexGuard<'a, ShardCell<M>>>,
}

impl<'a, M: ShardModel> ShardsView<'a, M> {
    /// Number of shards.
    pub fn len(&self) -> usize {
        self.guards.len()
    }

    /// True when the view holds no shards (never the case in a run).
    pub fn is_empty(&self) -> bool {
        self.guards.is_empty()
    }

    /// Mutable access to shard `i`'s model.
    pub fn model(&mut self, i: usize) -> &mut M {
        &mut self.guards[i].model
    }

    /// Iterates over every shard's model.
    pub fn models_mut(&mut self) -> impl Iterator<Item = &mut M> + use<'_, 'a, M> {
        self.guards.iter_mut().map(|g| &mut g.model)
    }
}

/// Global-control callbacks of a windowed run.
pub trait SyncHook<M: ShardModel> {
    /// Absolute time of the next synchronous control point
    /// ([`SimTime::MAX`] when there is none). Must be non-decreasing between
    /// `on_sync` calls.
    fn next_sync(&self) -> SimTime;

    /// Runs the control point at `at`. Every event strictly before `at` has
    /// been processed; no event at or after `at` has.
    fn on_sync(&mut self, at: SimTime, shards: &mut ShardsView<'_, M>);

    /// The conservative lookahead for upcoming windows: a lower bound on the
    /// delay of every cross-shard envelope. Clamped to at least 1 ps by the
    /// driver. **Must not depend on the shard count** if runs with different
    /// shard counts are expected to produce identical results (the window
    /// sequence — and therefore where budget/stop checks land — derives from
    /// it).
    fn lookahead(&self) -> SimDuration;

    /// Called after every window; return false to stop the run (the model's
    /// equivalent of [`crate::event::Context::stop`]).
    fn keep_running(&mut self, now: SimTime, shards: &mut ShardsView<'_, M>) -> bool;
}

pub(crate) struct ShardCell<M: ShardModel> {
    shard: usize,
    pub(crate) model: M,
    queue: CalendarQueue<M::Event>,
    outbox: Vec<Envelope<M::Event>>,
    events: u64,
}

impl<M: ShardModel> ShardCell<M> {
    /// Processes every pending event strictly before `end_ps`.
    fn drain(&mut self, end_ps: u64) {
        while let Some(t) = self.queue.peek_time() {
            if t.as_picos() >= end_ps {
                break;
            }
            let (at, _id, event) = self.queue.pop().expect("peeked event must pop");
            self.events += 1;
            let mut ctx = WindowCtx {
                now: at,
                shard: self.shard,
                window_end_ps: end_ps,
                queue: &mut self.queue,
                outbox: &mut self.outbox,
            };
            self.model.handle(&mut ctx, event);
        }
    }
}

/// What [`WindowedSim::run`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowedOutcome {
    /// Why the run ended (same vocabulary as the monolithic engine).
    pub outcome: RunOutcome,
    /// The clock when the run ended.
    pub now: SimTime,
    /// Total events processed across all shards.
    pub events: u64,
    /// Number of conservative windows executed.
    pub windows: u64,
    /// Number of sync points executed.
    pub syncs: u64,
}

/// One step of the window planner.
enum Step {
    /// Run the sync hook at this instant.
    Sync(SimTime),
    /// Drain all shards over `[start_ps, end_ps)` (start = the earliest
    /// pending event; carried so the profiler can record window lengths).
    Window { start_ps: u64, end_ps: u64 },
    /// Nothing left to do.
    Done(RunOutcome),
}

/// Drains one shard cell, timing the drain and counting its events when a
/// profiler is attached. Shared by the serial path, worker 0, and the
/// spawned workers.
fn drain_cell<M: ShardModel>(
    cell: &Mutex<ShardCell<M>>,
    end_ps: u64,
    profiler: Option<&WindowProfiler>,
) {
    let mut guard = cell.lock().expect("shard lock poisoned");
    match profiler {
        Some(p) => {
            let before = guard.events;
            let start = Instant::now();
            guard.drain(end_ps);
            p.record_drain(
                guard.shard,
                start.elapsed().as_nanos() as u64,
                guard.events - before,
            );
        }
        None => guard.drain(end_ps),
    }
}

/// Waits at the barrier, timing the wait per worker when a profiler is
/// attached (the disabled path reads no clock).
fn timed_wait(barrier: &SpinBarrier, worker: usize, profiler: Option<&WindowProfiler>) {
    match profiler {
        Some(p) => {
            let start = Instant::now();
            barrier.wait();
            p.record_barrier_wait(worker, start.elapsed().as_nanos() as u64);
        }
        None => barrier.wait(),
    }
}

/// A sense-reversing spinning barrier for the persistent window workers.
/// Window bodies are short (often well under a microsecond), so parking on a
/// futex every window would dominate; spinning with a yield fallback keeps
/// the barrier in the tens-of-nanoseconds range.
struct SpinBarrier {
    arrived: AtomicUsize,
    generation: AtomicUsize,
    total: usize,
}

impl SpinBarrier {
    fn new(total: usize) -> Self {
        SpinBarrier {
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            total,
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// The published window edge: `u64::MAX` tells the workers to exit.
const EXIT: u64 = u64::MAX;

/// A sharded simulation advanced in conservative time windows.
pub struct WindowedSim<M: ShardModel> {
    cells: Vec<Mutex<ShardCell<M>>>,
    now: SimTime,
    events: u64,
    event_budget: u64,
    /// Worker threads used for window execution (0 = one per shard, capped
    /// at the machine's parallelism).
    workers: usize,
    /// Shard/window profiler (barrier waits, drain times, window stats);
    /// `None` (the default) records nothing and reads no clocks.
    profiler: Option<Arc<WindowProfiler>>,
    /// Trace/metrics hook for span recording; disabled by default.
    observer: Observer,
}

impl<M: ShardModel> WindowedSim<M> {
    /// Creates a windowed simulation over one model per shard.
    pub fn new(models: Vec<M>) -> Self {
        assert!(
            !models.is_empty(),
            "a windowed sim needs at least one shard"
        );
        let cells = models
            .into_iter()
            .enumerate()
            .map(|(shard, model)| {
                Mutex::new(ShardCell {
                    shard,
                    model,
                    queue: CalendarQueue::new(),
                    outbox: Vec::new(),
                    events: 0,
                })
            })
            .collect();
        WindowedSim {
            cells,
            now: SimTime::ZERO,
            events: 0,
            event_budget: u64::MAX,
            workers: 0,
            profiler: None,
            observer: Observer::off(),
        }
    }

    /// Caps the total number of events processed across all shards.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Sets the worker-thread count (0 = one per shard, capped at the
    /// machine's parallelism). Thread count never affects results.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Attaches a shard/window profiler. The profiler records wall-clock
    /// barrier waits and drain times plus deterministic per-shard event and
    /// mailbox counts; it never influences the run. Its slot count must
    /// cover this sim's shards.
    pub fn with_profiler(mut self, profiler: Arc<WindowProfiler>) -> Self {
        assert!(
            profiler.shard_count() >= self.cells.len(),
            "profiler has {} shard slots but the sim has {} shards",
            profiler.shard_count(),
            self.cells.len()
        );
        self.profiler = Some(profiler);
        self
    }

    /// Attaches an observer (trace sink / metrics registry). Window, drain,
    /// and sync spans are recorded when the observer carries a trace sink;
    /// the default [`Observer::off`] records nothing.
    pub fn with_observer(mut self, observer: Observer) -> Self {
        self.observer = observer;
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.cells.len()
    }

    /// The current simulated time (the low edge of planning).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Schedules an event on shard `shard` from outside the run (seeding).
    pub fn schedule(&mut self, shard: usize, at: SimTime, key: u64, event: M::Event) {
        let cell = self.cells[shard].get_mut().expect("shard lock poisoned");
        cell.queue.push(at, EventId(key), event);
    }

    /// Exclusive access to shard `shard`'s model between runs.
    pub fn model_mut(&mut self, shard: usize) -> &mut M {
        &mut self.cells[shard]
            .get_mut()
            .expect("shard lock poisoned")
            .model
    }

    /// Consumes the simulation, returning the shard models in order.
    pub fn into_models(self) -> Vec<M> {
        self.cells
            .into_iter()
            .map(|c| c.into_inner().expect("shard lock poisoned").model)
            .collect()
    }

    /// Locks every shard (uncontended outside windows) into a view.
    fn view(&self) -> ShardsView<'_, M> {
        ShardsView {
            guards: self
                .cells
                .iter()
                .map(|c| c.lock().expect("shard lock poisoned"))
                .collect(),
        }
    }

    /// The earliest pending event across all shards.
    fn min_pending(&self) -> Option<SimTime> {
        let mut min = None;
        for cell in &self.cells {
            let mut cell = cell.lock().expect("shard lock poisoned");
            if let Some(t) = cell.queue.peek_time() {
                min = Some(min.map_or(t, |m: SimTime| m.min(t)));
            }
        }
        min
    }

    /// Routes every outbox envelope into its destination queue. Runs at
    /// barriers only; asserts the conservative bound on every envelope.
    fn exchange(&self, window_end_ps: u64) {
        let mut pending: Vec<Envelope<M::Event>> = Vec::new();
        for cell in &self.cells {
            let mut cell = cell.lock().expect("shard lock poisoned");
            pending.append(&mut cell.outbox);
        }
        for env in pending {
            assert!(
                env.at.as_picos() >= window_end_ps,
                "envelope below the conservative window edge (at={}, end={} ps)",
                env.at,
                window_end_ps
            );
            if let Some(p) = &self.profiler {
                p.record_mailbox_in(env.to, 1);
            }
            let mut dest = self.cells[env.to].lock().expect("shard lock poisoned");
            dest.queue.push(env.at, EventId(env.key), env.event);
        }
    }

    /// Plans the next step given the global pending state and the hook's
    /// sync/lookahead answers. Pure control logic — identical for any shard
    /// or worker count.
    fn plan_step<H: SyncHook<M>>(&self, hook: &H, horizon: SimTime) -> Step {
        // `SimTime::MAX` means "no sync point" — it must never be stepped
        // to, even with an unbounded horizon.
        let next_sync = hook.next_sync();
        let has_sync = next_sync < SimTime::MAX;
        let lookahead = hook.lookahead().as_picos().max(1);
        match self.min_pending() {
            None => {
                if has_sync && next_sync <= horizon {
                    Step::Sync(next_sync)
                } else {
                    Step::Done(RunOutcome::Drained)
                }
            }
            Some(t) => {
                if has_sync && next_sync <= t.min(horizon) {
                    Step::Sync(next_sync)
                } else if t > horizon {
                    Step::Done(RunOutcome::HorizonReached)
                } else {
                    // Half-open [t, end): the window may not cross the next
                    // sync point, and events exactly at the horizon still run.
                    let end = t
                        .as_picos()
                        .saturating_add(lookahead)
                        .min(next_sync.as_picos())
                        .min(horizon.as_picos().saturating_add(1));
                    Step::Window {
                        start_ps: t.as_picos(),
                        end_ps: end,
                    }
                }
            }
        }
    }

    /// Runs until `horizon` (inclusive), the queues drain, the hook stops the
    /// run, or the event budget is exhausted.
    pub fn run<H: SyncHook<M>>(&mut self, horizon: SimTime, hook: &mut H) -> WindowedOutcome {
        let workers = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(self.cells.len())
        } else {
            self.workers.min(self.cells.len())
        }
        .max(1);
        if let Some(sink) = self.observer.trace() {
            for w in 0..workers {
                sink.name_lane(w as u64, format!("worker {w}"));
            }
        }
        let result = if workers == 1 {
            self.run_on(horizon, hook, None, 1)
        } else {
            let barrier = SpinBarrier::new(workers);
            let edge = AtomicU64::new(0);
            let cells = &self.cells;
            let this = &*self;
            std::thread::scope(|scope| {
                for worker in 1..workers {
                    let barrier = &barrier;
                    let edge = &edge;
                    let profiler = self.profiler.clone();
                    let observer = self.observer.clone();
                    scope.spawn(move || loop {
                        timed_wait(barrier, worker, profiler.as_deref());
                        let end = edge.load(Ordering::Acquire);
                        if end == EXIT {
                            break;
                        }
                        {
                            let _span = observer.span(worker as u64, "drain", "windows");
                            for cell in cells.iter().skip(worker).step_by(workers) {
                                drain_cell(cell, end, profiler.as_deref());
                            }
                        }
                        timed_wait(barrier, worker, profiler.as_deref());
                    });
                }
                this.run_on(horizon, hook, Some((&barrier, &edge)), workers)
            })
        };
        self.now = result.now;
        self.events = result.events;
        result
    }

    /// The main control loop. With `sync` = None runs serially; otherwise
    /// coordinates the persistent workers through the barrier, executing this
    /// thread's share (`worker 0`) inline.
    fn run_on<H: SyncHook<M>>(
        &self,
        horizon: SimTime,
        hook: &mut H,
        sync: Option<(&SpinBarrier, &AtomicU64)>,
        workers: usize,
    ) -> WindowedOutcome {
        let mut now = self.now;
        let mut windows = 0u64;
        let mut syncs = 0u64;
        let total_events = |this: &Self| -> u64 {
            this.cells
                .iter()
                .map(|c| c.lock().expect("shard lock poisoned").events)
                .sum()
        };
        let finish = |outcome: RunOutcome, now: SimTime, events: u64, windows, syncs| {
            if let Some((barrier, edge)) = sync {
                edge.store(EXIT, Ordering::Release);
                barrier.wait();
            }
            WindowedOutcome {
                outcome,
                now,
                events,
                windows,
                syncs,
            }
        };
        let mut prev_events = if self.profiler.is_some() || self.observer.is_enabled() {
            total_events(self)
        } else {
            0
        };
        loop {
            match self.plan_step(hook, horizon) {
                Step::Done(outcome) => {
                    if outcome == RunOutcome::HorizonReached {
                        now = horizon;
                    }
                    return finish(outcome, now, total_events(self), windows, syncs);
                }
                Step::Sync(at) => {
                    let _span = self.observer.span(0, "sync", "windows");
                    let mut view = self.view();
                    hook.on_sync(at, &mut view);
                    drop(view);
                    now = at;
                    syncs += 1;
                    if let Some(p) = &self.profiler {
                        p.record_sync();
                    }
                }
                Step::Window { start_ps, end_ps } => {
                    let mut window_span = self.observer.span(0, "window", "windows");
                    match sync {
                        None => {
                            for cell in &self.cells {
                                drain_cell(cell, end_ps, self.profiler.as_deref());
                            }
                        }
                        Some((barrier, edge)) => {
                            edge.store(end_ps, Ordering::Release);
                            timed_wait(barrier, 0, self.profiler.as_deref());
                            for cell in self.cells.iter().step_by(workers) {
                                drain_cell(cell, end_ps, self.profiler.as_deref());
                            }
                            timed_wait(barrier, 0, self.profiler.as_deref());
                        }
                    }
                    self.exchange(end_ps);
                    now = SimTime::from_picos(end_ps.saturating_sub(1)).min(horizon);
                    windows += 1;
                    let events = total_events(self);
                    if self.profiler.is_some() || self.observer.is_enabled() {
                        let delta = events.saturating_sub(prev_events);
                        prev_events = events;
                        if let Some(p) = &self.profiler {
                            p.record_window(end_ps.saturating_sub(start_ps), delta);
                        }
                        window_span.arg_u64("events", delta);
                        window_span.arg_u64("end_ps", end_ps);
                    }
                    drop(window_span);
                    if events >= self.event_budget {
                        return finish(
                            RunOutcome::EventBudgetExhausted,
                            now,
                            events,
                            windows,
                            syncs,
                        );
                    }
                    let mut view = self.view();
                    let go = hook.keep_running(now, &mut view);
                    drop(view);
                    if !go {
                        return finish(RunOutcome::Stopped, now, events, windows, syncs);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ring of logical nodes passing a token: node `n` receives the token,
    /// records `(time, n, hops)`, and forwards it to `(n + 1) % nodes` with a
    /// fixed latency. Nodes are mapped onto shards round-robin, so different
    /// shard counts exercise both local sends and cross-shard envelopes.
    struct Ring {
        shard: usize,
        shards: usize,
        nodes: usize,
        latency: SimDuration,
        hops_left: u64,
        trace: Vec<(u64, usize, u64)>,
    }

    #[derive(Debug)]
    struct Token {
        node: usize,
        hops: u64,
    }

    impl ShardModel for Ring {
        type Event = Token;
        fn handle(&mut self, ctx: &mut WindowCtx<'_, Token>, token: Token) {
            assert_eq!(token.node % self.shards, self.shard);
            self.trace
                .push((ctx.now().as_picos(), token.node, token.hops));
            if token.hops >= self.hops_left {
                return;
            }
            let next = (token.node + 1) % self.nodes;
            ctx.send(
                next % self.shards,
                ctx.now() + self.latency,
                token.hops + 1,
                Token {
                    node: next,
                    hops: token.hops + 1,
                },
            );
        }
    }

    struct NoSync {
        lookahead: SimDuration,
    }
    impl SyncHook<Ring> for NoSync {
        fn next_sync(&self) -> SimTime {
            SimTime::MAX
        }
        fn on_sync(&mut self, _: SimTime, _: &mut ShardsView<'_, Ring>) {}
        fn lookahead(&self) -> SimDuration {
            self.lookahead
        }
        fn keep_running(&mut self, _: SimTime, _: &mut ShardsView<'_, Ring>) -> bool {
            true
        }
    }

    fn run_ring(shards: usize, workers: usize) -> Vec<(u64, usize, u64)> {
        let nodes = 5;
        let latency = SimDuration::from_nanos(7);
        let models: Vec<Ring> = (0..shards)
            .map(|shard| Ring {
                shard,
                shards,
                nodes,
                latency,
                hops_left: 200,
                trace: Vec::new(),
            })
            .collect();
        let mut sim = WindowedSim::new(models).with_workers(workers);
        sim.schedule(0, SimTime::ZERO, 0, Token { node: 0, hops: 0 });
        let out = sim.run(SimTime::MAX, &mut NoSync { lookahead: latency });
        assert_eq!(out.outcome, RunOutcome::Drained);
        assert_eq!(out.events, 201);
        let mut trace: Vec<(u64, usize, u64)> = sim
            .into_models()
            .into_iter()
            .flat_map(|m| m.trace)
            .collect();
        trace.sort();
        trace
    }

    /// An instrumented run produces the identical trace, and the profiler
    /// accounts every event, window, and cross-shard envelope.
    #[test]
    fn profiling_does_not_change_the_trace() {
        let baseline = run_ring(3, 2);
        let nodes = 5;
        let latency = SimDuration::from_nanos(7);
        let models: Vec<Ring> = (0..3)
            .map(|shard| Ring {
                shard,
                shards: 3,
                nodes,
                latency,
                hops_left: 200,
                trace: Vec::new(),
            })
            .collect();
        let profiler = Arc::new(WindowProfiler::new(3));
        let mut sim = WindowedSim::new(models)
            .with_workers(2)
            .with_profiler(profiler.clone())
            .with_observer(Observer::enabled());
        sim.schedule(0, SimTime::ZERO, 0, Token { node: 0, hops: 0 });
        let out = sim.run(SimTime::MAX, &mut NoSync { lookahead: latency });
        assert_eq!(out.outcome, RunOutcome::Drained);
        let mut trace: Vec<(u64, usize, u64)> = sim
            .into_models()
            .into_iter()
            .flat_map(|m| m.trace)
            .collect();
        trace.sort();
        assert_eq!(trace, baseline);
        let profile = profiler.snapshot();
        assert_eq!(profile.shard_events().iter().sum::<u64>(), out.events);
        assert_eq!(profile.windows, out.windows);
        // The ring crosses shards, so envelopes flowed through the mailbox.
        assert!(profile.shards.iter().map(|s| s.mailbox_in).sum::<u64>() > 0);
        // Two workers both waited at barriers.
        assert!(profile.workers[0].barrier_waits > 0);
        assert!(profile.workers[1].barrier_waits > 0);
        assert_eq!(profile.events_per_window.sum, out.events);
    }

    #[test]
    fn shard_count_does_not_change_the_trace() {
        let one = run_ring(1, 1);
        assert_eq!(one.len(), 201);
        assert_eq!(one, run_ring(2, 1));
        assert_eq!(one, run_ring(5, 2));
        assert_eq!(one, run_ring(3, 3));
    }

    #[test]
    fn event_budget_stops_the_run() {
        let models: Vec<Ring> = (0..2)
            .map(|shard| Ring {
                shard,
                shards: 2,
                nodes: 2,
                latency: SimDuration::from_nanos(1),
                hops_left: u64::MAX,
                trace: Vec::new(),
            })
            .collect();
        let mut sim = WindowedSim::new(models)
            .with_event_budget(100)
            .with_workers(1);
        sim.schedule(0, SimTime::ZERO, 0, Token { node: 0, hops: 0 });
        let out = sim.run(
            SimTime::MAX,
            &mut NoSync {
                lookahead: SimDuration::from_nanos(1),
            },
        );
        assert_eq!(out.outcome, RunOutcome::EventBudgetExhausted);
        assert!(out.events >= 100);
    }

    #[test]
    fn horizon_bounds_the_run() {
        let models: Vec<Ring> = vec![Ring {
            shard: 0,
            shards: 1,
            nodes: 1,
            latency: SimDuration::from_nanos(10),
            hops_left: u64::MAX,
            trace: Vec::new(),
        }];
        let mut sim = WindowedSim::new(models).with_workers(1);
        sim.schedule(0, SimTime::ZERO, 0, Token { node: 0, hops: 0 });
        let out = sim.run(
            SimTime::from_nanos(100),
            &mut NoSync {
                lookahead: SimDuration::from_nanos(10),
            },
        );
        assert_eq!(out.outcome, RunOutcome::HorizonReached);
        // Tokens at 0, 10, ..., 100 ns inclusive.
        assert_eq!(out.events, 11);
        assert_eq!(out.now, SimTime::from_nanos(100));
    }

    /// Sync points interleave deterministically with events: everything
    /// strictly before the sync instant is processed first.
    #[test]
    fn sync_points_observe_a_consistent_cut() {
        struct EpochHook {
            next: SimTime,
            period: SimDuration,
            cuts: Vec<(u64, usize)>,
        }
        impl SyncHook<Ring> for EpochHook {
            fn next_sync(&self) -> SimTime {
                self.next
            }
            fn on_sync(&mut self, at: SimTime, shards: &mut ShardsView<'_, Ring>) {
                let seen: usize = (0..shards.len()).map(|i| shards.model(i).trace.len()).sum();
                self.cuts.push((at.as_picos(), seen));
                self.next = at + self.period;
            }
            fn lookahead(&self) -> SimDuration {
                SimDuration::from_nanos(7)
            }
            fn keep_running(&mut self, _: SimTime, _: &mut ShardsView<'_, Ring>) -> bool {
                true
            }
        }
        let run = |shards: usize| {
            let models: Vec<Ring> = (0..shards)
                .map(|shard| Ring {
                    shard,
                    shards,
                    nodes: 4,
                    latency: SimDuration::from_nanos(7),
                    hops_left: 50,
                    trace: Vec::new(),
                })
                .collect();
            let mut sim = WindowedSim::new(models).with_workers(1);
            sim.schedule(0, SimTime::ZERO, 0, Token { node: 0, hops: 0 });
            let mut hook = EpochHook {
                next: SimTime::from_nanos(20),
                period: SimDuration::from_nanos(20),
                cuts: Vec::new(),
            };
            let out = sim.run(SimTime::from_nanos(400), &mut hook);
            assert_eq!(out.outcome, RunOutcome::Drained);
            assert!(out.syncs > 0);
            hook.cuts
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    #[should_panic(expected = "lookahead bound violated")]
    fn cross_shard_sends_below_the_window_edge_panic() {
        struct Bad {
            shard: usize,
        }
        impl ShardModel for Bad {
            type Event = ();
            fn handle(&mut self, ctx: &mut WindowCtx<'_, ()>, _: ()) {
                // Claims a 100 ns lookahead but sends 1 ns ahead.
                let to = 1 - self.shard;
                ctx.send(to, ctx.now() + SimDuration::from_nanos(1), 1, ());
            }
        }
        struct Hook;
        impl SyncHook<Bad> for Hook {
            fn next_sync(&self) -> SimTime {
                SimTime::MAX
            }
            fn on_sync(&mut self, _: SimTime, _: &mut ShardsView<'_, Bad>) {}
            fn lookahead(&self) -> SimDuration {
                SimDuration::from_nanos(100)
            }
            fn keep_running(&mut self, _: SimTime, _: &mut ShardsView<'_, Bad>) -> bool {
                true
            }
        }
        let mut sim = WindowedSim::new(vec![Bad { shard: 0 }, Bad { shard: 1 }]).with_workers(1);
        sim.schedule(0, SimTime::from_nanos(50), 0, ());
        sim.run(SimTime::MAX, &mut Hook);
    }
}
