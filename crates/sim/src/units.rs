//! Physical units used throughout the fabric model.
//!
//! The physical layer deals in lane rates (25/50 Gb/s), cable lengths
//! (centimetres to tens of metres inside a rack), and power (milliwatts per
//! SerDes, a handful of kilowatts per rack). Keeping these as dedicated
//! newtypes prevents the classic unit mix-ups (bits vs. bytes, Gb/s vs. GB/s)
//! and centralises the conversions into [`SimDuration`]s.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Speed of light in vacuum, metres per second.
pub const SPEED_OF_LIGHT_M_PER_S: f64 = 299_792_458.0;

/// A data size in bytes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a size from a byte count.
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }
    /// Creates a size from kibibytes (1024 B).
    pub const fn from_kib(kib: u64) -> Self {
        Bytes(kib * 1024)
    }
    /// Creates a size from mebibytes (1024 KiB).
    pub const fn from_mib(mib: u64) -> Self {
        Bytes(mib * 1024 * 1024)
    }
    /// Creates a size from gibibytes (1024 MiB).
    pub const fn from_gib(gib: u64) -> Self {
        Bytes(gib * 1024 * 1024 * 1024)
    }
    /// The raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
    /// The size in bits.
    pub const fn bits(self) -> u64 {
        self.0 * 8
    }
    /// The size as a float byte count.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(other.0))
    }
    /// True if zero bytes.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}
impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}
impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}
impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}
impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}
impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1 << 30 {
            write!(f, "{:.2}GiB", b as f64 / (1u64 << 30) as f64)
        } else if b >= 1 << 20 {
            write!(f, "{:.2}MiB", b as f64 / (1u64 << 20) as f64)
        } else if b >= 1 << 10 {
            write!(f, "{:.2}KiB", b as f64 / 1024.0)
        } else {
            write!(f, "{b}B")
        }
    }
}

/// A data rate in bits per second.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct BitRate(u64);

impl BitRate {
    /// Zero bit rate (a disabled link).
    pub const ZERO: BitRate = BitRate(0);

    /// Creates a rate from bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        BitRate(bps)
    }
    /// Creates a rate from gigabits per second (decimal, as link rates are
    /// always quoted: 25 Gb/s, 100 Gb/s).
    pub const fn from_gbps(gbps: u64) -> Self {
        BitRate(gbps * 1_000_000_000)
    }
    /// Creates a rate from megabits per second.
    pub const fn from_mbps(mbps: u64) -> Self {
        BitRate(mbps * 1_000_000)
    }
    /// The raw bits-per-second value.
    pub const fn as_bps(self) -> u64 {
        self.0
    }
    /// The rate in gigabits per second.
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// True if the rate is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Time to serialize `size` at this rate. A zero rate yields
    /// [`SimDuration::MAX`] (the data never finishes transmitting).
    pub fn serialization_delay(self, size: Bytes) -> SimDuration {
        if self.0 == 0 {
            return SimDuration::MAX;
        }
        // bits * 1e12 / bps, computed in u128 to avoid overflow.
        let ps = (size.bits() as u128 * 1_000_000_000_000u128) / self.0 as u128;
        SimDuration::from_picos(ps.min(u64::MAX as u128) as u64)
    }

    /// How many bytes can be carried in `window` at this rate.
    pub fn bytes_in(self, window: SimDuration) -> Bytes {
        let bits = (self.0 as u128 * window.as_picos() as u128) / 1_000_000_000_000u128;
        Bytes::new((bits / 8).min(u64::MAX as u128) as u64)
    }

    /// Scales the rate by a factor in [0, +inf), saturating.
    pub fn scale(self, factor: f64) -> BitRate {
        if !factor.is_finite() || factor <= 0.0 {
            return BitRate::ZERO;
        }
        let v = self.0 as f64 * factor;
        BitRate(if v >= u64::MAX as f64 {
            u64::MAX
        } else {
            v as u64
        })
    }
}

impl Add for BitRate {
    type Output = BitRate;
    fn add(self, rhs: BitRate) -> BitRate {
        BitRate(self.0 + rhs.0)
    }
}
impl AddAssign for BitRate {
    fn add_assign(&mut self, rhs: BitRate) {
        self.0 += rhs.0;
    }
}
impl Sub for BitRate {
    type Output = BitRate;
    fn sub(self, rhs: BitRate) -> BitRate {
        BitRate(self.0.saturating_sub(rhs.0))
    }
}
impl Mul<u64> for BitRate {
    type Output = BitRate;
    fn mul(self, rhs: u64) -> BitRate {
        BitRate(self.0 * rhs)
    }
}
impl Div<u64> for BitRate {
    type Output = BitRate;
    fn div(self, rhs: u64) -> BitRate {
        BitRate(self.0 / rhs)
    }
}
impl Sum for BitRate {
    fn sum<I: Iterator<Item = BitRate>>(iter: I) -> BitRate {
        BitRate(iter.map(|b| b.0).sum())
    }
}

impl fmt::Debug for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}
impl fmt::Display for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{}Gbps", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{}Mbps", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}bps", self.0)
        }
    }
}

/// A physical length, stored in millimetres.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Length(u64);

impl Length {
    /// Zero length.
    pub const ZERO: Length = Length(0);

    /// Creates a length from millimetres.
    pub const fn from_mm(mm: u64) -> Self {
        Length(mm)
    }
    /// Creates a length from centimetres.
    pub const fn from_cm(cm: u64) -> Self {
        Length(cm * 10)
    }
    /// Creates a length from metres.
    pub const fn from_m(m: u64) -> Self {
        Length(m * 1000)
    }
    /// The length in millimetres.
    pub const fn as_mm(self) -> u64 {
        self.0
    }
    /// The length in metres as a float.
    pub fn as_m_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Propagation delay over this length given a velocity factor
    /// (fraction of c; ~0.66 for fibre, ~0.7 for copper).
    pub fn propagation_delay(self, velocity_factor: f64) -> SimDuration {
        let vf = velocity_factor.clamp(0.01, 1.0);
        let seconds = self.as_m_f64() / (SPEED_OF_LIGHT_M_PER_S * vf);
        SimDuration::from_secs_f64(seconds)
    }
}

impl Add for Length {
    type Output = Length;
    fn add(self, rhs: Length) -> Length {
        Length(self.0 + rhs.0)
    }
}
impl Mul<u64> for Length {
    type Output = Length;
    fn mul(self, rhs: u64) -> Length {
        Length(self.0 * rhs)
    }
}
impl Sum for Length {
    fn sum<I: Iterator<Item = Length>>(iter: I) -> Length {
        Length(iter.map(|l| l.0).sum())
    }
}

impl fmt::Debug for Length {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}
impl fmt::Display for Length {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1000 {
            write!(f, "{}m", self.0 as f64 / 1000.0)
        } else {
            write!(f, "{}mm", self.0)
        }
    }
}

/// Electrical power, stored in milliwatts.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Power(u64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0);

    /// Creates power from milliwatts.
    pub const fn from_milliwatts(mw: u64) -> Self {
        Power(mw)
    }
    /// Creates power from watts.
    pub const fn from_watts(w: u64) -> Self {
        Power(w * 1000)
    }
    /// Creates power from kilowatts.
    pub const fn from_kilowatts(kw: u64) -> Self {
        Power(kw * 1_000_000)
    }
    /// The power in milliwatts.
    pub const fn as_milliwatts(self) -> u64 {
        self.0
    }
    /// The power in watts as a float.
    pub fn as_watts_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }
    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Power) -> Power {
        Power(self.0.saturating_sub(other.0))
    }
    /// Energy consumed over `d` at this power.
    pub fn energy_over(self, d: SimDuration) -> Energy {
        // mW * ps = 1e-15 J; accumulate in picojoules: mW * ps / 1000.
        let pj = (self.0 as u128 * d.as_picos() as u128) / 1000;
        Energy::from_picojoules(pj.min(u64::MAX as u128) as u64)
    }
    /// Scales power by a non-negative factor.
    pub fn scale(self, factor: f64) -> Power {
        if !factor.is_finite() || factor <= 0.0 {
            return Power::ZERO;
        }
        let v = self.0 as f64 * factor;
        Power(if v >= u64::MAX as f64 {
            u64::MAX
        } else {
            v as u64
        })
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}
impl AddAssign for Power {
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}
impl Sub for Power {
    type Output = Power;
    fn sub(self, rhs: Power) -> Power {
        Power(self.0.saturating_sub(rhs.0))
    }
}
impl Mul<u64> for Power {
    type Output = Power;
    fn mul(self, rhs: u64) -> Power {
        Power(self.0 * rhs)
    }
}
impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        Power(iter.map(|p| p.0).sum())
    }
}

impl fmt::Debug for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}
impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.2}kW", self.0 as f64 / 1e6)
        } else if self.0 >= 1000 {
            write!(f, "{:.2}W", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}mW", self.0)
        }
    }
}

/// Electrical energy, stored in picojoules.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Energy(u64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0);

    /// Creates energy from picojoules.
    pub const fn from_picojoules(pj: u64) -> Self {
        Energy(pj)
    }
    /// Creates energy from microjoules.
    pub const fn from_microjoules(uj: u64) -> Self {
        Energy(uj * 1_000_000)
    }
    /// Creates energy from joules.
    pub const fn from_joules(j: u64) -> Self {
        Energy(j * 1_000_000_000_000)
    }
    /// The energy in picojoules.
    pub const fn as_picojoules(self) -> u64 {
        self.0
    }
    /// The energy in joules as a float.
    pub fn as_joules_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }
    /// Saturating addition.
    pub fn saturating_add(self, other: Energy) -> Energy {
        Energy(self.0.saturating_add(other.0))
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}
impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}
impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        Energy(iter.map(|e| e.0).sum())
    }
}

impl fmt::Debug for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}
impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000_000 {
            write!(f, "{:.3}J", self.as_joules_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}uJ", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}pJ", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_constructors_and_bits() {
        assert_eq!(Bytes::from_kib(1).as_u64(), 1024);
        assert_eq!(Bytes::from_mib(1).as_u64(), 1024 * 1024);
        assert_eq!(Bytes::from_gib(2).as_u64(), 2 * 1024 * 1024 * 1024);
        assert_eq!(Bytes::new(10).bits(), 80);
        assert_eq!(Bytes::new(3) + Bytes::new(4), Bytes::new(7));
    }

    #[test]
    fn serialization_delay_at_100g() {
        // One byte at 100 Gb/s is 80 ps.
        let rate = BitRate::from_gbps(100);
        assert_eq!(rate.serialization_delay(Bytes::new(1)).as_picos(), 80);
        // A 1500-byte frame at 100 Gb/s is 120 ns.
        assert_eq!(
            rate.serialization_delay(Bytes::new(1500)).as_picos(),
            120_000
        );
        // A 1500-byte frame at 10 Gb/s is 1.2 us.
        assert_eq!(
            BitRate::from_gbps(10)
                .serialization_delay(Bytes::new(1500))
                .as_picos(),
            1_200_000
        );
    }

    #[test]
    fn serialization_delay_zero_rate_is_never() {
        assert_eq!(
            BitRate::ZERO.serialization_delay(Bytes::new(1)),
            SimDuration::MAX
        );
    }

    #[test]
    fn bytes_in_window_inverts_serialization() {
        let rate = BitRate::from_gbps(100);
        let window = SimDuration::from_micros(1);
        // 100 Gb/s for 1 us = 100 kb = 12.5 kB.
        assert_eq!(rate.bytes_in(window).as_u64(), 12_500);
    }

    #[test]
    fn propagation_delay_in_fibre() {
        // 2 m of fibre at 0.66c is ~10.1 ns (the paper assumes a switch every 2 m).
        let d = Length::from_m(2).propagation_delay(0.66);
        let ns = d.as_nanos_f64();
        assert!((9.5..11.0).contains(&ns), "2 m fibre hop was {ns} ns");
        // Propagation is monotone in length.
        assert!(Length::from_m(4).propagation_delay(0.66) > d);
    }

    #[test]
    fn rate_scaling_and_division() {
        let lane = BitRate::from_gbps(25);
        assert_eq!(lane * 4, BitRate::from_gbps(100));
        assert_eq!(BitRate::from_gbps(100) / 4, lane);
        assert_eq!(lane.scale(2.0), BitRate::from_gbps(50));
        assert_eq!(lane.scale(-1.0), BitRate::ZERO);
    }

    #[test]
    fn power_and_energy() {
        let serdes = Power::from_milliwatts(750);
        assert_eq!(serdes * 4, Power::from_milliwatts(3000));
        // 1 W for 1 s is 1 J.
        let e = Power::from_watts(1).energy_over(SimDuration::from_secs(1));
        assert_eq!(e.as_picojoules(), 1_000_000_000_000);
        assert!((e.as_joules_f64() - 1.0).abs() < 1e-9);
        // 750 mW for 1 us is 750 nJ.
        let e2 = serdes.energy_over(SimDuration::from_micros(1));
        assert_eq!(e2.as_picojoules(), 750_000);
    }

    #[test]
    fn display_formatting() {
        assert_eq!(format!("{}", BitRate::from_gbps(100)), "100Gbps");
        assert_eq!(format!("{}", Bytes::from_kib(2)), "2.00KiB");
        assert_eq!(format!("{}", Power::from_kilowatts(12)), "12.00kW");
        assert_eq!(format!("{}", Length::from_m(3)), "3m");
        assert_eq!(format!("{}", Energy::from_joules(2)), "2.000J");
    }

    #[test]
    fn sums_over_iterators() {
        let total: BitRate = (0..4).map(|_| BitRate::from_gbps(25)).sum();
        assert_eq!(total, BitRate::from_gbps(100));
        let p: Power = vec![Power::from_watts(1), Power::from_watts(2)]
            .into_iter()
            .sum();
        assert_eq!(p, Power::from_watts(3));
    }
}
