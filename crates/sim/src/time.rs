//! Simulated time.
//!
//! The fabric models effects that span nine orders of magnitude: serializing
//! one byte at 100 Gb/s takes 80 ps, light in fibre covers a 2 m hop in about
//! 10 ns, a cut-through switch adds hundreds of nanoseconds, and a MapReduce
//! shuffle runs for milliseconds. All timestamps are therefore kept as
//! integer **picoseconds** in a `u64`, which still allows ~213 days of
//! simulated time before overflow — far beyond any experiment in the paper.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of picoseconds in a nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Number of picoseconds in a microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Number of picoseconds in a millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Number of picoseconds in a second.
pub const PS_PER_S: u64 = 1_000_000_000_000;

/// An absolute point in simulated time, measured in picoseconds since the
/// start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, measured in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw picoseconds.
    pub const fn from_picos(ps: u64) -> Self {
        SimTime(ps)
    }
    /// Creates a time from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }
    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }
    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * PS_PER_MS)
    }
    /// Creates a time from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * PS_PER_S)
    }

    /// Raw picosecond count.
    pub const fn as_picos(self) -> u64 {
        self.0
    }
    /// This instant expressed in (possibly fractional) nanoseconds.
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }
    /// This instant expressed in (possibly fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    /// This instant expressed in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }
    /// This instant expressed in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Duration until `later`, saturating at zero.
    pub fn saturating_until(self, later: SimTime) -> SimDuration {
        SimDuration(later.0.saturating_sub(self.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw picoseconds.
    pub const fn from_picos(ps: u64) -> Self {
        SimDuration(ps)
    }
    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns * PS_PER_NS)
    }
    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * PS_PER_US)
    }
    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * PS_PER_MS)
    }
    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * PS_PER_S)
    }
    /// Creates a duration from fractional nanoseconds, rounding to the
    /// nearest picosecond. Negative and non-finite inputs clamp to zero.
    pub fn from_nanos_f64(ns: f64) -> Self {
        if !ns.is_finite() || ns <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((ns * PS_PER_NS as f64).round() as u64)
    }
    /// Creates a duration from fractional seconds, rounding to the nearest
    /// picosecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * PS_PER_S as f64).round() as u64)
    }

    /// Raw picosecond count.
    pub const fn as_picos(self) -> u64 {
        self.0
    }
    /// This duration expressed in (possibly fractional) nanoseconds.
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }
    /// This duration expressed in (possibly fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    /// This duration expressed in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }
    /// This duration expressed in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
    /// Checked multiplication by an integer factor.
    pub fn checked_mul(self, factor: u64) -> Option<SimDuration> {
        self.0.checked_mul(factor).map(SimDuration)
    }
    /// Multiplies by a non-negative float factor, rounding to the nearest
    /// picosecond and saturating.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        if factor.is_nan() || factor <= 0.0 {
            return SimDuration::ZERO;
        }
        let v = self.0 as f64 * factor;
        if v >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(v.round() as u64)
        }
    }
    /// Ratio of this duration to another (self / other). Returns infinity if
    /// `other` is zero and self is non-zero, and 0.0 when both are zero.
    pub fn ratio(self, other: SimDuration) -> f64 {
        if other.0 == 0 {
            if self.0 == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: instant + duration exceeded u64 picoseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflow: duration larger than instant"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow: rhs is later than lhs"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("SimDuration overflow in addition"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration underflow in subtraction"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(
            self.0
                .checked_mul(rhs)
                .expect("SimDuration overflow in multiplication"),
        )
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ps(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ps(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ps(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ps(self.0))
    }
}

/// Formats a picosecond count using the most natural unit.
fn format_ps(ps: u64) -> String {
    if ps == 0 {
        "0ps".to_string()
    } else if ps.is_multiple_of(PS_PER_S) {
        format!("{}s", ps / PS_PER_S)
    } else if ps >= PS_PER_S {
        format!("{:.3}s", ps as f64 / PS_PER_S as f64)
    } else if ps >= PS_PER_MS {
        format!("{:.3}ms", ps as f64 / PS_PER_MS as f64)
    } else if ps >= PS_PER_US {
        format!("{:.3}us", ps as f64 / PS_PER_US as f64)
    } else if ps >= PS_PER_NS {
        format!("{:.3}ns", ps as f64 / PS_PER_NS as f64)
    } else {
        format!("{ps}ps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion_round_trip() {
        assert_eq!(SimTime::from_nanos(1).as_picos(), 1_000);
        assert_eq!(SimTime::from_micros(1).as_picos(), 1_000_000);
        assert_eq!(SimTime::from_millis(1).as_picos(), 1_000_000_000);
        assert_eq!(SimTime::from_secs(1).as_picos(), 1_000_000_000_000);
        assert_eq!(SimDuration::from_nanos(5).as_nanos_f64(), 5.0);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn arithmetic_between_time_and_duration() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(40);
        assert_eq!((t + d).as_picos(), 140_000);
        assert_eq!((t - d).as_picos(), 60_000);
        assert_eq!(((t + d) - t), d);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_nanos(10);
        let b = SimDuration::from_nanos(3);
        assert_eq!((a + b).as_picos(), 13_000);
        assert_eq!((a - b).as_picos(), 7_000);
        assert_eq!((a * 4).as_picos(), 40_000);
        assert_eq!((a / 4).as_picos(), 2_500);
    }

    #[test]
    fn saturating_operations_do_not_panic() {
        let early = SimTime::from_nanos(1);
        let late = SimTime::from_nanos(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_nanos(1));
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_nanos(1).saturating_sub(SimDuration::from_nanos(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtracting_later_from_earlier_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn float_constructors_clamp_bad_input() {
        assert_eq!(SimDuration::from_nanos_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_nanos_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_nanos_f64(1.5).as_picos(), 1_500);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_picos(), 250 * PS_PER_MS);
    }

    #[test]
    fn mul_f64_and_ratio() {
        let d = SimDuration::from_nanos(100);
        assert_eq!(d.mul_f64(2.5).as_picos(), 250_000);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(f64::INFINITY), SimDuration::MAX);
        assert!((d.ratio(SimDuration::from_nanos(50)) - 2.0).abs() < 1e-12);
        assert_eq!(SimDuration::ZERO.ratio(SimDuration::ZERO), 0.0);
        assert!(d.ratio(SimDuration::ZERO).is_infinite());
    }

    #[test]
    fn ordering_is_by_instant() {
        let mut v = vec![
            SimTime::from_nanos(5),
            SimTime::from_picos(1),
            SimTime::from_micros(1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::from_picos(1),
                SimTime::from_nanos(5),
                SimTime::from_micros(1)
            ]
        );
    }

    #[test]
    fn display_uses_natural_units() {
        assert_eq!(format!("{}", SimTime::from_secs(3)), "3s");
        assert_eq!(format!("{}", SimDuration::from_picos(5)), "5ps");
        assert_eq!(format!("{}", SimDuration::from_nanos(1500)), "1.500us");
        assert_eq!(format!("{}", SimDuration::ZERO), "0ps");
    }
}
