//! The pending-event set.
//!
//! Two interchangeable implementations sit behind the [`Scheduler`] trait:
//!
//! * [`EventQueue`] — a binary heap keyed on `(timestamp, sequence number)`,
//!   the reference implementation. Simple, allocation-light, `O(log n)` per
//!   operation.
//! * [`CalendarQueue`](crate::calendar::CalendarQueue) — a two-level
//!   calendar/timing-wheel scheduler with amortised `O(1)` scheduling for the
//!   near future, the default engine since the hot-path refactor.
//!
//! Both deliver events in strictly increasing `(time, EventId)` order. The
//! sequence number makes delivery of same-timestamp events FIFO with respect
//! to scheduling order, which is what keeps simulations deterministic when
//! many components react at the same instant (e.g. all mappers of a shuffle
//! start at t=0). The property test in `tests/scheduler_equivalence.rs`
//! checks the two implementations agree on arbitrary schedule/cancel
//! sequences.
//!
//! Cancellation is lazy: cancelled ids are kept in a set and skipped when
//! popped, which is O(1) per cancellation and avoids a heap rebuild. A
//! second set tracks the ids that are actually pending, so cancelling an id
//! that was already delivered (or never scheduled) is a detectable no-op
//! instead of silently corrupting the live count.

use crate::event::EventId;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// One scheduled entry. Shared with the calendar scheduler.
pub(crate) struct Entry<E> {
    pub(crate) at: SimTime,
    pub(crate) id: EventId,
    pub(crate) event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, id) pops first.
        other.at.cmp(&self.at).then_with(|| other.id.cmp(&self.id))
    }
}

/// A fast multiply-mix hasher for [`EventId`] sets. Event ids are dense
/// sequence numbers, so SipHash's DoS resistance buys nothing on this hot
/// path; a single splitmix round distributes them well.
#[derive(Default, Clone)]
pub(crate) struct IdHasher(u64);

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0100_0000_01b3);
        }
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = crate::rng::mix64(n.wrapping_add(0x9E37_79B9_7F4A_7C15));
    }
}

/// A hash set of event ids using the fast id hasher.
pub(crate) type IdSet = HashSet<EventId, BuildHasherDefault<IdHasher>>;

/// The pending-event set interface the [`Simulator`](crate::engine::Simulator)
/// drives. Implementations must deliver events in strictly increasing
/// `(time, EventId)` order; ids pushed must be unique over the lifetime of
/// the scheduler (the engine's monotone sequence counter guarantees this).
pub trait Scheduler<E> {
    /// Inserts an event at `at` with identity `id`.
    fn push(&mut self, at: SimTime, id: EventId, event: E);
    /// Marks a pending event as cancelled. Returns true only if the id was
    /// actually pending (not yet delivered, not already cancelled).
    fn cancel(&mut self, id: EventId) -> bool;
    /// Removes and returns the earliest live event, skipping cancelled ones.
    fn pop(&mut self) -> Option<(SimTime, EventId, E)>;
    /// Timestamp of the earliest live event without removing it. Takes
    /// `&mut self` so implementations may prune cancelled entries.
    fn peek_time(&mut self) -> Option<SimTime>;
    /// Number of live (non-cancelled) pending events.
    fn len(&self) -> usize;
    /// True if there are no live pending events.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Discards every pending event.
    fn clear(&mut self);
}

/// A timestamp-ordered binary-heap queue of pending events with lazy
/// cancellation — the reference [`Scheduler`] implementation.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Ids cancelled while still sitting in the heap; skipped on pop.
    cancelled: IdSet,
    /// Ids scheduled and not yet delivered or cancelled.
    pending: IdSet,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: IdSet::default(),
            pending: IdSet::default(),
        }
    }

    /// Inserts an event at `at` with identity `id`.
    pub fn push(&mut self, at: SimTime, id: EventId, event: E) {
        self.heap.push(Entry { at, id, event });
        self.pending.insert(id);
    }

    /// Marks an event as cancelled. Returns true only if the id was still
    /// pending; cancelling a delivered, unknown or already-cancelled id is a
    /// no-op that returns false.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.pending.remove(&id) {
            self.cancelled.insert(id);
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest live event, skipping cancelled ones.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            self.pending.remove(&entry.id);
            return Some((entry.at, entry.id, entry.event));
        }
        None
    }

    /// Timestamp of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled heads so the peek is accurate.
        while let Some(head) = self.heap.peek() {
            if self.cancelled.contains(&head.id) {
                let popped = self.heap.pop().expect("peeked entry must pop");
                self.cancelled.remove(&popped.id);
            } else {
                return Some(head.at);
            }
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if there are no live pending events.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Discards every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
        self.pending.clear();
    }
}

impl<E> Scheduler<E> for EventQueue<E> {
    fn push(&mut self, at: SimTime, id: EventId, event: E) {
        EventQueue::push(self, at, id, event)
    }
    fn cancel(&mut self, id: EventId) -> bool {
        EventQueue::cancel(self, id)
    }
    fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        EventQueue::pop(self)
    }
    fn peek_time(&mut self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }
    fn len(&self) -> usize {
        EventQueue::len(self)
    }
    fn clear(&mut self) {
        EventQueue::clear(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), EventId(2), "c");
        q.push(t(10), EventId(0), "a");
        q.push(t(20), EventId(1), "b");
        assert_eq!(q.pop().unwrap().2, "a");
        assert_eq!(q.pop().unwrap().2, "b");
        assert_eq!(q.pop().unwrap().2, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_timestamps_are_fifo_by_id() {
        let mut q = EventQueue::new();
        q.push(t(5), EventId(7), "second");
        q.push(t(5), EventId(3), "first");
        q.push(t(5), EventId(9), "third");
        assert_eq!(q.pop().unwrap().2, "first");
        assert_eq!(q.pop().unwrap().2, "second");
        assert_eq!(q.pop().unwrap().2, "third");
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        q.push(t(1), EventId(0), "keep");
        q.push(t(2), EventId(1), "drop");
        q.push(t(3), EventId(2), "keep2");
        assert!(q.cancel(EventId(1)));
        assert!(!q.cancel(EventId(1)), "double cancel reports false");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().2, "keep");
        assert_eq!(q.pop().unwrap().2, "keep2");
        assert!(q.pop().is_none());
    }

    /// Regression test: cancelling an id that was already delivered used to
    /// report success, permanently leak the id into the cancelled set, and
    /// undercount the live total (making `is_empty` lie and stopping
    /// simulations early).
    #[test]
    fn cancelling_a_delivered_id_is_a_no_op() {
        let mut q = EventQueue::new();
        q.push(t(1), EventId(0), "a");
        q.push(t(2), EventId(1), "b");
        assert_eq!(q.pop().unwrap().2, "a");
        // Id 0 has been delivered: cancelling it must fail and must not
        // affect the still-pending id 1.
        assert!(!q.cancel(EventId(0)), "delivered ids cannot be cancelled");
        assert_eq!(q.len(), 1, "live count must not be corrupted");
        assert!(!q.is_empty());
        assert_eq!(q.pop().unwrap().2, "b", "pending event must still deliver");
        assert!(q.pop().is_none());
        // Cancelling an id that was never scheduled is also a no-op.
        assert!(!q.cancel(EventId(99)));
        assert_eq!(q.len(), 0);
    }

    /// The delivered-id leak also corrupted a later push/pop cycle when the
    /// cancelled set was consulted; pushing fresh events after a bogus cancel
    /// must still deliver all of them.
    #[test]
    fn bogus_cancels_do_not_leak_into_later_cycles() {
        let mut q = EventQueue::new();
        q.push(t(1), EventId(0), 0u32);
        assert!(q.pop().is_some());
        assert!(!q.cancel(EventId(0)));
        q.push(t(2), EventId(1), 1u32);
        q.push(t(3), EventId(2), 2u32);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().2, 1);
        assert_eq!(q.pop().unwrap().2, 2);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_ignores_cancelled_head() {
        let mut q = EventQueue::new();
        q.push(t(1), EventId(0), 1u32);
        q.push(t(2), EventId(1), 2u32);
        q.cancel(EventId(0));
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop().unwrap().2, 2);
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        for i in 0..10u64 {
            q.push(t(i), EventId(i), i);
        }
        assert_eq!(q.len(), 10);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn large_interleaved_workload_stays_ordered() {
        let mut q = EventQueue::new();
        // Insert in a scrambled but deterministic order.
        let mut id = 0u64;
        for round in 0..100u64 {
            for k in [7u64, 3, 9, 1, 5] {
                q.push(t(round * 10 + k), EventId(id), round * 10 + k);
                id += 1;
            }
        }
        let mut last = 0u64;
        let mut count = 0;
        while let Some((at, _, v)) = q.pop() {
            assert_eq!(at, t(v));
            assert!(v >= last, "events must pop in non-decreasing time order");
            last = v;
            count += 1;
        }
        assert_eq!(count, 500);
    }
}
