//! The pending-event set.
//!
//! A binary heap keyed on `(timestamp, sequence number)`. The sequence number
//! makes delivery of same-timestamp events FIFO with respect to scheduling
//! order, which is what keeps simulations deterministic when many components
//! react at the same instant (e.g. all mappers of a shuffle start at t=0).
//!
//! Cancellation is lazy: cancelled ids are kept in a set and skipped when
//! popped, which is O(1) per cancellation and avoids a heap rebuild.

use crate::event::EventId;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// One scheduled entry.
struct Entry<E> {
    at: SimTime,
    id: EventId,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, id) pops first.
        other.at.cmp(&self.at).then_with(|| other.id.cmp(&self.id))
    }
}

/// A timestamp-ordered queue of pending events with lazy cancellation.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<EventId>,
    /// Number of live (non-cancelled) entries.
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            live: 0,
        }
    }

    /// Inserts an event at `at` with identity `id`.
    pub fn push(&mut self, at: SimTime, id: EventId, event: E) {
        self.heap.push(Entry { at, id, event });
        self.live += 1;
    }

    /// Marks an event as cancelled. Returns true if the id was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        // We cannot cheaply check membership in the heap; optimistically mark
        // and let `pop` discard. `live` is only decremented when we are sure
        // the id was pending, which we approximate by always decrementing and
        // clamping at zero: the engine only hands out ids it created, so
        // cancelling a never-scheduled id is a programming error upstream but
        // must not corrupt the count here.
        if self.cancelled.insert(id) {
            self.live = self.live.saturating_sub(1);
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest live event, skipping cancelled ones.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            self.live = self.live.saturating_sub(1);
            return Some((entry.at, entry.id, entry.event));
        }
        None
    }

    /// Timestamp of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled heads so the peek is accurate.
        while let Some(head) = self.heap.peek() {
            if self.cancelled.contains(&head.id) {
                let popped = self.heap.pop().expect("peeked entry must pop");
                self.cancelled.remove(&popped.id);
            } else {
                return Some(head.at);
            }
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if there are no live pending events.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Discards every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), EventId(2), "c");
        q.push(t(10), EventId(0), "a");
        q.push(t(20), EventId(1), "b");
        assert_eq!(q.pop().unwrap().2, "a");
        assert_eq!(q.pop().unwrap().2, "b");
        assert_eq!(q.pop().unwrap().2, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_timestamps_are_fifo_by_id() {
        let mut q = EventQueue::new();
        q.push(t(5), EventId(7), "second");
        q.push(t(5), EventId(3), "first");
        q.push(t(5), EventId(9), "third");
        assert_eq!(q.pop().unwrap().2, "first");
        assert_eq!(q.pop().unwrap().2, "second");
        assert_eq!(q.pop().unwrap().2, "third");
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        q.push(t(1), EventId(0), "keep");
        q.push(t(2), EventId(1), "drop");
        q.push(t(3), EventId(2), "keep2");
        assert!(q.cancel(EventId(1)));
        assert!(!q.cancel(EventId(1)), "double cancel reports false");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().2, "keep");
        assert_eq!(q.pop().unwrap().2, "keep2");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_ignores_cancelled_head() {
        let mut q = EventQueue::new();
        q.push(t(1), EventId(0), 1u32);
        q.push(t(2), EventId(1), 2u32);
        q.cancel(EventId(0));
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop().unwrap().2, 2);
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        for i in 0..10u64 {
            q.push(t(i), EventId(i), i);
        }
        assert_eq!(q.len(), 10);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn large_interleaved_workload_stays_ordered() {
        let mut q = EventQueue::new();
        // Insert in a scrambled but deterministic order.
        let mut id = 0u64;
        for round in 0..100u64 {
            for k in [7u64, 3, 9, 1, 5] {
                q.push(t(round * 10 + k), EventId(id), round * 10 + k);
                id += 1;
            }
        }
        let mut last = 0u64;
        let mut count = 0;
        while let Some((at, _, v)) = q.pop() {
            assert_eq!(at, t(v));
            assert!(v >= last, "events must pop in non-decreasing time order");
            last = v;
            count += 1;
        }
        assert_eq!(count, 500);
    }
}
