//! The simulation main loop.
//!
//! [`Simulator`] owns the clock, the pending-event set and the model, and
//! advances the model by repeatedly popping the earliest event and calling
//! [`Model::handle`]. Directives issued through
//! the [`Context`] are applied after each callback.
//!
//! The pending-event set is pluggable through the
//! [`Scheduler`] trait: [`Simulator::new`] uses the
//! [`CalendarQueue`] (the fast default),
//! while [`Simulator::with_scheduler`] accepts any implementation — the
//! binary-heap [`EventQueue`] is kept as a
//! reference for cross-checking, see [`HeapSimulator`]. Every scheduler
//! delivers events in the same `(time, EventId)` order, so the choice never
//! changes simulation results, only wall-clock speed.

use crate::calendar::CalendarQueue;
use crate::event::{Context, Directive, EventId, Model};
use crate::queue::{EventQueue, Scheduler};
use crate::rng::DetRng;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Which pending-event-set implementation an engine run uses. All kinds
/// deliver identical event orders; the choice only affects wall-clock speed.
/// Declarative configs (scenario specs) carry this so sweeps can cross-check
/// the schedulers against each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize, Hash)]
pub enum SchedulerKind {
    /// The reference binary-heap [`EventQueue`].
    Heap,
    /// The two-level [`CalendarQueue`] (default).
    #[default]
    Calendar,
}

impl SchedulerKind {
    /// Short name for labels and exports.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::Heap => "heap",
            SchedulerKind::Calendar => "calendar",
        }
    }
}

/// Why a call to [`Simulator::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The pending-event set became empty before the horizon.
    Drained,
    /// The horizon was reached; later events are still pending.
    HorizonReached,
    /// The model requested a stop via [`Context::stop`](crate::event::Context::stop).
    Stopped,
    /// The configured event budget was exhausted (guards against livelock).
    EventBudgetExhausted,
}

/// A deterministic discrete-event simulator driving a single [`Model`].
///
/// The second type parameter selects the pending-event set; it defaults to
/// the calendar-queue scheduler. All schedulers deliver identical event
/// orders, so results never depend on this choice.
pub struct Simulator<M: Model, S: Scheduler<M::Event> = CalendarQueue<<M as Model>::Event>> {
    model: M,
    queue: S,
    now: SimTime,
    next_id: u64,
    rng: DetRng,
    stop_requested: bool,
    events_processed: u64,
    event_budget: u64,
    initialized: bool,
}

/// A simulator running on the reference binary-heap scheduler, used to
/// cross-check the calendar queue.
pub type HeapSimulator<M> = Simulator<M, EventQueue<<M as Model>::Event>>;

impl<M: Model> Simulator<M, CalendarQueue<M::Event>> {
    /// Creates a simulator over `model`, seeding all randomness from `seed`,
    /// on the default calendar-queue scheduler.
    pub fn new(model: M, seed: u64) -> Self {
        Simulator::with_scheduler(model, seed, CalendarQueue::new())
    }
}

impl<M: Model> HeapSimulator<M> {
    /// Creates a simulator on the reference binary-heap scheduler.
    pub fn new_heap(model: M, seed: u64) -> Self {
        Simulator::with_scheduler(model, seed, EventQueue::new())
    }
}

impl<M: Model, S: Scheduler<M::Event>> Simulator<M, S> {
    /// Creates a simulator over `model` driving events through an explicit
    /// scheduler implementation.
    pub fn with_scheduler(model: M, seed: u64, scheduler: S) -> Self {
        Simulator {
            model,
            queue: scheduler,
            now: SimTime::ZERO,
            next_id: 0,
            rng: DetRng::new(seed),
            stop_requested: false,
            events_processed: 0,
            event_budget: u64::MAX,
            initialized: false,
        }
    }

    /// Caps the total number of events that will ever be processed. Useful as
    /// a guard against accidental event storms in tests; the default is
    /// unlimited.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events still pending.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Immutable access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (e.g. to extract statistics between runs).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the simulator, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Schedules an event from outside the model (before or between runs).
    pub fn schedule_at(&mut self, at: SimTime, event: M::Event) -> EventId {
        assert!(at >= self.now, "cannot schedule in the past");
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.queue.push(at, id, event);
        id
    }

    /// Runs until the event queue drains, the model stops, or the event
    /// budget is exhausted.
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    /// Runs until `horizon` (inclusive of events scheduled exactly at it),
    /// the queue drains, the model stops, or the event budget is exhausted.
    ///
    /// The clock is left at the timestamp of the last processed event, or at
    /// `horizon` if the horizon was reached with events still pending (so a
    /// subsequent call resumes cleanly).
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        let mut directives: Vec<(EventId, Directive<M::Event>)> = Vec::new();

        if !self.initialized {
            self.initialized = true;
            let mut ctx = Context {
                now: self.now,
                next_id: &mut self.next_id,
                directives: &mut directives,
                rng: &mut self.rng,
            };
            self.model.init(&mut ctx);
            Self::apply_directives(&mut self.queue, &mut self.stop_requested, &mut directives);
        }

        let outcome = loop {
            if self.stop_requested {
                break RunOutcome::Stopped;
            }
            if self.events_processed >= self.event_budget {
                break RunOutcome::EventBudgetExhausted;
            }
            let next_time = match self.queue.peek_time() {
                None => break RunOutcome::Drained,
                Some(t) => t,
            };
            if next_time > horizon {
                self.now = horizon;
                break RunOutcome::HorizonReached;
            }
            let (at, _id, event) = self.queue.pop().expect("peeked event must pop");
            debug_assert!(at >= self.now, "event queue returned an event in the past");
            self.now = at;
            self.events_processed += 1;

            let mut ctx = Context {
                now: self.now,
                next_id: &mut self.next_id,
                directives: &mut directives,
                rng: &mut self.rng,
            };
            self.model.handle(&mut ctx, event);
            Self::apply_directives(&mut self.queue, &mut self.stop_requested, &mut directives);
        };

        // Give the model a chance to flush statistics.
        let mut ctx = Context {
            now: self.now,
            next_id: &mut self.next_id,
            directives: &mut directives,
            rng: &mut self.rng,
        };
        self.model.finish(&mut ctx);
        Self::apply_directives(&mut self.queue, &mut self.stop_requested, &mut directives);

        outcome
    }

    fn apply_directives(
        queue: &mut S,
        stop: &mut bool,
        directives: &mut Vec<(EventId, Directive<M::Event>)>,
    ) {
        for (id, directive) in directives.drain(..) {
            match directive {
                Directive::Schedule { at, event } => queue.push(at, id, event),
                Directive::Cancel(target) => {
                    queue.cancel(target);
                }
                Directive::Stop => *stop = true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// Records the order in which events were delivered.
    struct Recorder {
        seen: Vec<(SimTime, u32)>,
        stop_after: Option<usize>,
        finished: bool,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Context<u32>, event: u32) {
            self.seen.push((ctx.now(), event));
            if let Some(n) = self.stop_after {
                if self.seen.len() >= n {
                    ctx.stop();
                }
            }
        }
        fn finish(&mut self, _ctx: &mut Context<u32>) {
            self.finished = true;
        }
    }

    fn recorder() -> Recorder {
        Recorder {
            seen: Vec::new(),
            stop_after: None,
            finished: false,
        }
    }

    #[test]
    fn delivers_events_in_time_order() {
        let mut sim = Simulator::new(recorder(), 0);
        sim.schedule_at(SimTime::from_nanos(30), 3);
        sim.schedule_at(SimTime::from_nanos(10), 1);
        sim.schedule_at(SimTime::from_nanos(20), 2);
        let outcome = sim.run();
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(
            sim.model().seen,
            vec![
                (SimTime::from_nanos(10), 1),
                (SimTime::from_nanos(20), 2),
                (SimTime::from_nanos(30), 3)
            ]
        );
        assert!(sim.model().finished);
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn horizon_stops_and_resumes() {
        let mut sim = Simulator::new(recorder(), 0);
        sim.schedule_at(SimTime::from_nanos(10), 1);
        sim.schedule_at(SimTime::from_nanos(50), 2);
        let outcome = sim.run_until(SimTime::from_nanos(20));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(sim.model().seen.len(), 1);
        assert_eq!(sim.now(), SimTime::from_nanos(20));
        // Resume and drain.
        let outcome = sim.run();
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(sim.model().seen.len(), 2);
        assert_eq!(sim.now(), SimTime::from_nanos(50));
    }

    #[test]
    fn stop_request_is_honoured() {
        let mut sim = Simulator::new(
            Recorder {
                seen: Vec::new(),
                stop_after: Some(2),
                finished: false,
            },
            0,
        );
        for i in 0..10 {
            sim.schedule_at(SimTime::from_nanos(i), i as u32);
        }
        let outcome = sim.run();
        assert_eq!(outcome, RunOutcome::Stopped);
        assert_eq!(sim.model().seen.len(), 2);
        assert_eq!(sim.pending_events(), 8);
    }

    #[test]
    fn event_budget_prevents_livelock() {
        /// A model that perpetually schedules itself at the same instant.
        struct Livelock;
        impl Model for Livelock {
            type Event = ();
            fn init(&mut self, ctx: &mut Context<()>) {
                ctx.schedule_now(());
            }
            fn handle(&mut self, ctx: &mut Context<()>, _: ()) {
                ctx.schedule_now(());
            }
        }
        let mut sim = Simulator::new(Livelock, 0).with_event_budget(1000);
        let outcome = sim.run();
        assert_eq!(outcome, RunOutcomeBudget());
        assert_eq!(sim.events_processed(), 1000);
    }

    // Small helper so the assert above reads naturally.
    #[allow(non_snake_case)]
    fn RunOutcomeBudget() -> RunOutcome {
        RunOutcome::EventBudgetExhausted
    }

    #[test]
    fn init_runs_exactly_once() {
        struct CountInit {
            inits: u32,
        }
        impl Model for CountInit {
            type Event = ();
            fn init(&mut self, ctx: &mut Context<()>) {
                self.inits += 1;
                ctx.schedule_in(SimDuration::from_nanos(1), ());
            }
            fn handle(&mut self, _ctx: &mut Context<()>, _: ()) {}
        }
        let mut sim = Simulator::new(CountInit { inits: 0 }, 0);
        sim.run_until(SimTime::from_nanos(10));
        sim.run_until(SimTime::from_nanos(20));
        sim.run();
        assert_eq!(sim.model().inits, 1);
    }

    #[test]
    fn same_seed_same_trace() {
        /// Schedules events at random offsets and records the delivery order.
        struct RandomWalk {
            remaining: u32,
            trace: Vec<u64>,
        }
        impl Model for RandomWalk {
            type Event = u64;
            fn init(&mut self, ctx: &mut Context<u64>) {
                let d = ctx.rng().range_u64(1..1000);
                ctx.schedule_in(SimDuration::from_nanos(d), d);
            }
            fn handle(&mut self, ctx: &mut Context<u64>, ev: u64) {
                self.trace.push(ev);
                if self.remaining > 0 {
                    self.remaining -= 1;
                    let d = ctx.rng().range_u64(1..1000);
                    ctx.schedule_in(SimDuration::from_nanos(d), d);
                }
            }
        }
        let run = |seed| {
            let mut sim = Simulator::new(
                RandomWalk {
                    remaining: 200,
                    trace: Vec::new(),
                },
                seed,
            );
            sim.run();
            sim.into_model().trace
        };
        assert_eq!(run(7), run(7), "identical seeds must give identical traces");
        assert_ne!(run(7), run(8), "different seeds should diverge");
    }

    #[test]
    fn heap_and_calendar_schedulers_produce_identical_traces() {
        /// Schedules bursts of events at random offsets; the delivery trace
        /// must be scheduler-independent.
        struct Burst {
            remaining: u32,
            trace: Vec<(u64, u64)>,
        }
        impl Model for Burst {
            type Event = u64;
            fn init(&mut self, ctx: &mut Context<u64>) {
                for k in 0..8 {
                    ctx.schedule_in(SimDuration::from_nanos(10 * k + 1), k);
                }
            }
            fn handle(&mut self, ctx: &mut Context<u64>, ev: u64) {
                self.trace.push((ctx.now().as_picos(), ev));
                if self.remaining > 0 {
                    self.remaining -= 1;
                    let d = ctx.rng().range_u64(1..2_000_000);
                    ctx.schedule_in(SimDuration::from_picos(d), d);
                    // Occasionally schedule-and-cancel to exercise that path.
                    if self.remaining.is_multiple_of(17) {
                        let id = ctx.schedule_in(SimDuration::from_nanos(5), 999);
                        ctx.cancel(id);
                    }
                }
            }
        }
        let model = || Burst {
            remaining: 500,
            trace: Vec::new(),
        };
        let mut heap_sim = Simulator::new_heap(model(), 11);
        heap_sim.run();
        let mut cal_sim = Simulator::new(model(), 11);
        cal_sim.run();
        assert_eq!(heap_sim.events_processed(), cal_sim.events_processed());
        assert_eq!(heap_sim.model().trace, cal_sim.model().trace);
    }

    #[test]
    fn cancellation_through_context() {
        struct Canceller {
            fired: Vec<&'static str>,
        }
        #[derive(Debug)]
        enum Ev {
            Arm,
            Bomb,
        }
        impl Model for Canceller {
            type Event = Ev;
            fn init(&mut self, ctx: &mut Context<Ev>) {
                ctx.schedule_in(SimDuration::from_nanos(10), Ev::Arm);
            }
            fn handle(&mut self, ctx: &mut Context<Ev>, ev: Ev) {
                match ev {
                    Ev::Arm => {
                        self.fired.push("arm");
                        let bomb = ctx.schedule_in(SimDuration::from_nanos(10), Ev::Bomb);
                        // Defuse immediately.
                        ctx.cancel(bomb);
                    }
                    Ev::Bomb => self.fired.push("bomb"),
                }
            }
        }
        let mut sim = Simulator::new(Canceller { fired: Vec::new() }, 0);
        sim.run();
        assert_eq!(sim.model().fired, vec!["arm"]);
    }
}
