//! The model/event abstraction driven by the [`Simulator`](crate::engine::Simulator).
//!
//! A simulation is a single [`Model`] (usually a struct owning every switch,
//! link and controller in the rack) plus a typed event payload. The engine
//! owns the clock and the pending-event set; the model is handed a
//! [`Context`] through which it schedules future events, draws random
//! numbers, and requests an early stop.
//!
//! Keeping the model monolithic (instead of giving every component its own
//! mailbox) is a deliberate choice: it keeps the borrow structure simple,
//! keeps event delivery deterministic, and matches how the omnet++ model in
//! the paper was organised (modules compiled into one simulation image).

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// Identifier of a scheduled event, usable for cancellation.
///
/// The engine allocates ids from a monotone sequence counter; the raw value
/// is public so standalone scheduler harnesses (benchmarks, the
/// cross-scheduler property tests) can drive the queues directly. Models
/// should treat ids as opaque.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

impl EventId {
    /// The raw sequence number of this event.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// A simulation model: the state machine the engine drives.
pub trait Model {
    /// The event payload type delivered to [`Model::handle`].
    type Event;

    /// Called once before the first event is processed. The default does
    /// nothing; models typically seed their initial events here.
    fn init(&mut self, ctx: &mut Context<Self::Event>) {
        let _ = ctx;
    }

    /// Called for every event, in non-decreasing timestamp order. Events with
    /// equal timestamps are delivered in the order they were scheduled.
    fn handle(&mut self, ctx: &mut Context<Self::Event>, event: Self::Event);

    /// Called after the run finishes (horizon reached, queue drained, or
    /// stop requested). The default does nothing.
    fn finish(&mut self, ctx: &mut Context<Self::Event>) {
        let _ = ctx;
    }
}

/// A scheduling request produced by the model during one `handle` call.
#[derive(Debug)]
pub(crate) enum Directive<E> {
    /// Schedule `event` at the absolute time given.
    Schedule { at: SimTime, event: E },
    /// Cancel a previously scheduled event.
    Cancel(EventId),
    /// Stop the simulation after the current event completes.
    Stop,
}

/// The interface a [`Model`] uses to interact with the engine.
///
/// A `Context` is only valid for the duration of one callback; directives are
/// applied by the engine when the callback returns.
pub struct Context<'a, E> {
    pub(crate) now: SimTime,
    pub(crate) next_id: &'a mut u64,
    pub(crate) directives: &'a mut Vec<(EventId, Directive<E>)>,
    pub(crate) rng: &'a mut DetRng,
}

impl<'a, E> Context<'a, E> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Access to the deterministic random number generator.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Schedules `event` to be delivered at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time: delivering events in
    /// the past would silently reorder causality.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past (now={}, requested={})",
            self.now,
            at
        );
        let id = EventId(*self.next_id);
        *self.next_id += 1;
        self.directives
            .push((id, Directive::Schedule { at, event }));
        id
    }

    /// Schedules `event` to be delivered `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        let at = self.now + delay;
        self.schedule_at(at, event)
    }

    /// Schedules `event` for immediate delivery (same timestamp, after any
    /// events already pending at this timestamp).
    pub fn schedule_now(&mut self, event: E) -> EventId {
        self.schedule_at(self.now, event)
    }

    /// Cancels a previously scheduled event. Cancelling an event that has
    /// already fired (or was already cancelled) is a harmless no-op.
    pub fn cancel(&mut self, id: EventId) {
        let marker = EventId(u64::MAX);
        self.directives.push((marker, Directive::Cancel(id)));
    }

    /// Requests that the simulation stop once the current callback returns.
    pub fn stop(&mut self) {
        let marker = EventId(u64::MAX);
        self.directives.push((marker, Directive::Stop));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_ctx<'a>(
        now: SimTime,
        next_id: &'a mut u64,
        directives: &'a mut Vec<(EventId, Directive<u32>)>,
        rng: &'a mut DetRng,
    ) -> Context<'a, u32> {
        Context {
            now,
            next_id,
            directives,
            rng,
        }
    }

    #[test]
    fn schedule_produces_monotonic_ids() {
        let mut next = 0;
        let mut dirs = Vec::new();
        let mut rng = DetRng::new(1);
        let mut ctx = make_ctx(SimTime::from_nanos(5), &mut next, &mut dirs, &mut rng);
        let a = ctx.schedule_in(SimDuration::from_nanos(1), 1);
        let b = ctx.schedule_now(2);
        let c = ctx.schedule_at(SimTime::from_nanos(100), 3);
        assert!(a < b && b < c);
        assert_eq!(dirs.len(), 3);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut next = 0;
        let mut dirs = Vec::new();
        let mut rng = DetRng::new(1);
        let mut ctx = make_ctx(SimTime::from_nanos(5), &mut next, &mut dirs, &mut rng);
        ctx.schedule_at(SimTime::from_nanos(4), 9);
    }

    #[test]
    fn cancel_and_stop_are_recorded() {
        let mut next = 0;
        let mut dirs = Vec::new();
        let mut rng = DetRng::new(1);
        let mut ctx = make_ctx(SimTime::ZERO, &mut next, &mut dirs, &mut rng);
        let id = ctx.schedule_now(7);
        ctx.cancel(id);
        ctx.stop();
        assert_eq!(dirs.len(), 3);
        assert!(matches!(dirs[1].1, Directive::Cancel(x) if x == id));
        assert!(matches!(dirs[2].1, Directive::Stop));
    }

    #[test]
    fn rng_is_reachable_through_context() {
        let mut next = 0;
        let mut dirs: Vec<(EventId, Directive<u32>)> = Vec::new();
        let mut rng = DetRng::new(42);
        let mut ctx = make_ctx(SimTime::ZERO, &mut next, &mut dirs, &mut rng);
        let x = ctx.rng().next_u64();
        let y = ctx.rng().next_u64();
        assert_ne!(x, y);
    }
}
